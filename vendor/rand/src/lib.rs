//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the real crates-io `rand`
//! cannot be resolved. This vendored replacement implements the *subset* of
//! the rand 0.8 surface the workspace actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods `gen`,
//! `gen_range`, `gen_bool` and `fill` — on top of a deterministic
//! xoshiro256** core seeded through SplitMix64.
//!
//! Determinism is the point: workload generation and the fault-injection
//! harness both key everything off a `u64` seed, and this generator gives
//! identical streams on every platform. It makes no attempt at statistical
//! perfection (`gen_range` uses a simple widening-modulus reduction) and
//! must never be used for anything security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the rand `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as [`Rng::gen_range`] endpoints.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The value immediately below `hi` (used to close half-open ranges).
    fn dec(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
            fn dec(hi: Self) -> Self {
                hi.checked_sub(1).expect("gen_range: empty half-open range")
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::dec(self.end))
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256** (Blackman &
    /// Vigna), state-seeded via SplitMix64 so nearby seeds give unrelated
    /// streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..=5usize);
            assert!(w <= 5);
            let s = r.gen_range(-4..4i32);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        assert!(
            buf.iter().any(|&b| b != 0),
            "13 random bytes all zero is ~impossible"
        );
    }

    #[test]
    fn gen_various_types() {
        let mut r = StdRng::seed_from_u64(5);
        let _: u64 = r.gen();
        let _: u32 = r.gen();
        let _: bool = r.gen();
        let f: f64 = super::Standard::sample(&mut r);
        assert!((0.0..1.0).contains(&f));
    }
}
