//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real crates-io
//! `proptest` cannot be resolved. This vendored replacement keeps the same
//! *testing model* — strategies generate random inputs, `proptest!` runs a
//! test body over `cases` generated inputs, `prop_assert*` reports
//! failures — for the subset of the proptest 1.x surface the workspace
//! uses: `Strategy`/`prop_map`/`boxed`, integer-range and tuple strategies,
//! `any::<T>()`, `prop_oneof!`, `collection::vec`, `ProptestConfig` and the
//! assertion macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failure reports the test name and case index, and the
//!   per-test RNG seed is a pure function of the test name, so failures
//!   replay deterministically;
//! - assertions panic (like `assert!`) instead of returning `Err`, which is
//!   equivalent under `cargo test`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Object-safe: the combinators are gated on `Self: Sized` so that
    /// `dyn Strategy<Value = V>` works (needed by [`BoxedStrategy`]).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A reference-counted type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + PartialOrd + Copy + 'static,
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// Weighted choice between type-erased strategies ([`prop_oneof!`]).
    #[derive(Clone)]
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// A union of `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized {
        /// Sample one unconstrained value.
        fn arb(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arb(rng: &mut TestRng) -> bool {
            rng.rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb(rng: &mut TestRng) -> $t {
                    rng.rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test deterministic RNG: the seed is a hash of the test name, so
    /// every `cargo test` run generates the identical case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// The underlying generator (strategies sample through this).
        pub rng: StdRng,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }

    /// Runner configuration (re-exported as `ProptestConfig`).
    ///
    /// All fields are public so `ProptestConfig { cases: N, ..Default }`
    /// functional-update syntax works outside this crate.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Drop guard armed for the duration of one generated case: if the test
    /// body panics, reports which case failed (the deterministic per-test
    /// RNG makes the case reproducible by rerunning the test).
    pub struct CaseGuard {
        case: u32,
        name: &'static str,
    }

    impl CaseGuard {
        /// Arm a guard for `case` of test `name`.
        pub fn new(case: u32, name: &'static str) -> CaseGuard {
            CaseGuard { case, name }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: test `{}` failed at generated case {} \
                     (cases are deterministic per test name; rerun to reproduce)",
                    self.name, self.case
                );
            }
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted (or unweighted) choice between strategies of a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::Config as Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut __proptest_rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for __proptest_case in 0..cfg.cases {
                let __proptest_guard = $crate::test_runner::CaseGuard::new(
                    __proptest_case,
                    stringify!($name),
                );
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                { $body }
                drop(__proptest_guard);
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, bool)> {
        (0u64..100, any::<bool>()).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 5u64..50, y in 0usize..4) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y < 4, "y was {}", y);
        }

        #[test]
        fn maps_apply(pair in arb_pair()) {
            prop_assert_eq!(pair.0 % 2, 0);
        }

        #[test]
        fn oneof_and_vec(v in crate::collection::vec(prop_oneof![
            3 => (0u64..10).prop_map(|x| x),
            1 => (100u64..110).prop_map(|x| x),
        ], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10 || (100..110).contains(&x)));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = (0u64..1000, 0u64..1000);
        use crate::strategy::Strategy;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
