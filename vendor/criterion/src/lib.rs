//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real crates-io
//! `criterion` cannot be resolved. This vendored replacement implements the
//! subset of the criterion 0.5 surface the workspace's micro-benchmarks
//! use — `Criterion`, `benchmark_group`/`bench_with_input`,
//! `bench_function`, `Bencher::iter`, `BenchmarkId::from_parameter`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple mean-of-samples wall-clock measurement instead of criterion's
//! statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by its parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Identify a benchmark by a function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one routine invocation, filled in by [`iter`].
    ///
    /// [`iter`]: Bencher::iter
    mean: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples: samples.max(1),
            mean: Duration::ZERO,
        }
    }

    /// Time `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn report(group: Option<&str>, id: &str, mean: Duration) {
    match group {
        Some(g) => println!("bench {g}/{id}: {mean:?}/iter"),
        None => println!("bench {id}: {mean:?}/iter"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `routine` with `input` under `id`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size.min(self.criterion.sample_size));
        routine(&mut b, input);
        report(Some(&self.name), &id.id, b.mean);
        self
    }

    /// Benchmark `routine` under `id` without an explicit input.
    pub fn bench_function<R>(&mut self, id: BenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size.min(self.criterion.sample_size));
        routine(&mut b);
        report(Some(&self.name), &id.id, b.mean);
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        report(None, id, b.mean);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("count_calls", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("seven"), &7u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert_eq!(total, 21, "1 warm-up + 2 samples of +7");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::new("f", "x").id, "f/x");
    }
}
