//! Quickstart: assemble a small program, run it on the insecure
//! out-of-order baseline, an NDA policy and the in-order baseline, and
//! compare timing — while the architectural result stays identical.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nda::{run_variant, Asm, Reg, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little pointer-free kernel: sum of squares with a data-dependent
    // branch, plus one memory round trip.
    let mut asm = Asm::new();
    let done = asm.new_label();
    let odd = asm.new_label();
    let join = asm.new_label();
    asm.li(Reg::X2, 100); // n
    asm.li(Reg::X3, 0); // sum
    asm.li(Reg::X8, 0x1_0000); // scratch pointer
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.mul(Reg::X4, Reg::X2, Reg::X2);
    asm.andi(Reg::X5, Reg::X4, 1);
    asm.bne(Reg::X5, Reg::X0, odd);
    asm.add(Reg::X3, Reg::X3, Reg::X4);
    asm.jmp(join);
    asm.bind(odd);
    asm.sub(Reg::X3, Reg::X3, Reg::X4);
    asm.bind(join);
    asm.st8(Reg::X3, Reg::X8, 0);
    asm.ld8(Reg::X6, Reg::X8, 0);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let program = asm.assemble()?;

    println!("running the same program on three machines:\n");
    println!(
        "{:<22}{:>10}{:>10}{:>14}{:>16}",
        "variant", "cycles", "CPI", "result (x3)", "vs OoO"
    );
    let mut base = None;
    for v in [Variant::Ooo, Variant::FullProtection, Variant::InOrder] {
        let r = run_variant(v, &program, 10_000_000)?;
        let base_cycles = *base.get_or_insert(r.stats.cycles);
        println!(
            "{:<22}{:>10}{:>10.3}{:>14}{:>15.2}x",
            v.name(),
            r.stats.cycles,
            r.cpi(),
            r.regs[3] as i64,
            r.stats.cycles as f64 / base_cycles as f64
        );
    }
    println!("\nSame architectural answer everywhere — NDA and in-order change only *time*.");
    Ok(())
}
