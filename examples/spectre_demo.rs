//! Spectre v1 end to end: leak a secret byte through the d-cache on the
//! insecure out-of-order core, then watch every NDA policy close the leak.
//!
//! ```sh
//! cargo run --release --example spectre_demo
//! ```

use nda::attacks::{run_attack, AttackKind};
use nda::Variant;

fn main() {
    let secret = 0xA5u8;
    println!("Spectre v1 (bounds-check bypass, cache covert channel)");
    println!("secret byte planted in victim memory: {secret:#04x}\n");

    println!(
        "{:<22}{:>10}{:>16}{:>12}{:>10}",
        "variant", "leaked?", "recovered", "separation", "verdict"
    );
    for v in Variant::all() {
        let o = run_attack(AttackKind::SpectreV1Cache, v, secret);
        let rec = o
            .recovered
            .map(|b| format!("{b:#04x}"))
            .unwrap_or_else(|| "-".to_string());
        let verdict = if o.leaked { "LEAKED" } else { "safe" };
        println!(
            "{:<22}{:>10}{:>16}{:>11}c{:>10}",
            v.name(),
            o.leaked,
            rec,
            o.separation,
            verdict
        );
    }

    println!("\nHow to read this:");
    println!(" * OoO: the wrong path loads the secret and touches probe[secret*512];");
    println!("   the recover loop sees one fast (cached) probe slot -> full byte leak.");
    println!(" * NDA policies: the secret-carrying load never wakes its dependents,");
    println!("   so the probe access never happens -- the timing is flat.");
    println!(" * InvisiSpec: speculative loads don't fill the cache -> also safe here");
    println!("   (but see the btb_channel example for the channel it cannot close).");
}
