//! The paper's §8 / Listing 4 software defense:
//! `stop_speculative_exec()` / `resume_speculative_exec()` around the
//! window where a secret lives in a general-purpose register.
//!
//! The attack is Spectre v2 against a GPR secret — the class that slips
//! past permissive propagation and load restriction (the transmit gadget
//! is pure arithmetic on an already-visible register). The hardened
//! victim disables speculation inside its secret window; the
//! BTB-injected gadget can then never execute, on *any* core.
//!
//! ```sh
//! cargo run --release --example listing4_defense
//! ```

use nda::attacks::{analyze, spectre_v2_gpr, AttackKind, RESULTS_BASE};
use nda::core::config::SimConfig;
use nda::core::{OooCore, Variant};

fn run(program: &nda::Program, v: Variant) -> (bool, u64) {
    let mut c = OooCore::new(SimConfig::for_variant(v), program);
    c.run(nda::attacks::ATTACK_MAX_CYCLES).expect("halts");
    let t: Vec<u64> = (0..256)
        .map(|g| c.mem.read(RESULTS_BASE + 8 * g, 8))
        .collect();
    let o = analyze(&t, 0x42, AttackKind::SpectreV2Gpr.margin(), &[200]);
    (o.leaked, c.cycle())
}

fn main() {
    let plain = spectre_v2_gpr::program(0x42);
    let hardened = spectre_v2_gpr::hardened_program(0x42);

    println!("Spectre v2 against a GPR-resident secret (paper §4.2),");
    println!("with and without the Listing-4 no-speculation window:\n");
    println!(
        "{:<22}{:>16}{:>18}{:>14}",
        "variant", "plain victim", "hardened victim", "window cost"
    );
    for v in [
        Variant::Ooo,
        Variant::Permissive,
        Variant::RestrictedLoads,
        Variant::Strict,
    ] {
        let (leak_p, cyc_p) = run(&plain, v);
        let (leak_h, cyc_h) = run(&hardened, v);
        println!(
            "{:<22}{:>16}{:>18}{:>13.1}%",
            v.name(),
            if leak_p { "LEAKED" } else { "safe" },
            if leak_h { "LEAKED" } else { "safe" },
            (cyc_h as f64 / cyc_p as f64 - 1.0) * 100.0
        );
    }

    println!("\nWhat this shows (paper §8):");
    println!(" * permissive propagation and load restriction do not protect GPR");
    println!("   secrets — the gadget is arithmetic, not a load;");
    println!(" * strict propagation blocks it in hardware;");
    println!(" * alternatively the *victim* can wrap its secret window in");
    println!("   SpecOff/SpecOn (Listing 4) and be safe even on an insecure core;");
    println!(" * the paper notes the instruction only helps architectural code —");
    println!("   a wrong-path SpecOff never commits, so the defense must be");
    println!("   combined with NDA to stop attackers steering *around* it.");
}
