//! Visualize NDA at the micro-architectural level: a gem5-"pipeview"-style
//! trace of the same Spectre-v1 window under the insecure baseline and
//! under strict propagation. The gap between `C` (complete) and `B`
//! (broadcast) is NDA's deferred wake-up; `x` marks the squash.
//!
//! ```sh
//! cargo run --release --example pipeline_trace
//! ```

use nda::core::config::SimConfig;
use nda::core::{render_pipeline, NdaPolicy, OooCore, Variant};
use nda::{Asm, Reg};

fn listing1_like() -> nda::Program {
    let mut asm = Asm::new();
    let skip = asm.new_label();
    asm.data_u64s(0x51_0000, &[16]);
    asm.data(0x52_0000, &[7u8; 16]);
    asm.li(Reg::X2, 4);
    asm.li(Reg::X3, 0x51_0000);
    asm.clflush(Reg::X3, 0);
    asm.ld8(Reg::X4, Reg::X3, 0); // array_size: flushed -> the window
    asm.bgeu(Reg::X2, Reg::X4, skip); // bounds check
    asm.li(Reg::X5, 0x52_0000);
    asm.add(Reg::X5, Reg::X5, Reg::X2);
    asm.ld1(Reg::X6, Reg::X5, 0); // access
    asm.shli(Reg::X6, Reg::X6, 9); // preprocess
    asm.li(Reg::X7, 0x200_0000);
    asm.add(Reg::X7, Reg::X7, Reg::X6);
    asm.ld1(Reg::X8, Reg::X7, 0); // transmit
    asm.bind(skip);
    asm.halt();
    asm.assemble().expect("assembles")
}

fn show(name: &str, policy: NdaPolicy) {
    let program = listing1_like();
    let mut cfg = SimConfig::for_variant(Variant::Ooo);
    cfg.policy = policy;
    let mut core = OooCore::new(cfg, &program);
    core.enable_trace();
    for _ in 0..3_000 {
        core.step_cycle();
        if core.halted() {
            break;
        }
    }
    println!("=== {name} (policy: {policy}) ===");
    // Show the window: from the first dispatch of the bounds load onward.
    let first = core
        .trace_events()
        .iter()
        .find(|e| e.pc == 3)
        .map(|e| e.cycle)
        .unwrap_or(0);
    print!(
        "{}",
        render_pipeline(core.trace_events(), Some((first, first + 200)), 24)
    );
    println!();
}

fn main() {
    println!("D dispatch, I issue, C complete, B broadcast, R retire, x squash\n");
    show("insecure OoO", NdaPolicy::ooo());
    show("NDA strict propagation", NdaPolicy::strict());
    println!("Read it like the paper's Fig 2/Fig 6: under strict, wrong-path");
    println!("entries complete (C) but never broadcast (B) — their dependents'");
    println!("I markers never appear, so the transmit load never executes.");
}
