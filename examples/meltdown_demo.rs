//! Meltdown (chosen-code) end to end: read a kernel-space byte from user
//! code on flawed hardware, and watch NDA's load restriction stop it at
//! the source.
//!
//! ```sh
//! cargo run --release --example meltdown_demo
//! ```

use nda::attacks::{run_attack, AttackKind};
use nda::core::config::SimConfig;
use nda::core::{NdaPolicy, OooCore};
use nda::Variant;

fn main() {
    let secret = 0x37u8;
    println!("Meltdown: user code reading kernel memory via wrong-path forwarding");
    println!("kernel secret byte: {secret:#04x}\n");

    println!("{:<22}{:>10}{:>16}", "variant", "leaked?", "recovered");
    for v in [
        Variant::Ooo,
        Variant::Permissive,
        Variant::StrictBr,
        Variant::RestrictedLoads,
        Variant::FullProtection,
        Variant::InvisiSpecFuture,
        Variant::InOrder,
    ] {
        let o = run_attack(AttackKind::Meltdown, v, secret);
        let rec = o
            .recovered
            .map(|b| format!("{b:#04x}"))
            .unwrap_or_else(|| "-".into());
        println!("{:<22}{:>10}{:>16}", v.name(), o.leaked, rec);
    }

    // The ablation: fix the hardware flaw instead.
    let mut fixed = SimConfig::ooo();
    fixed.core.meltdown_flaw = false;
    let program = AttackKind::Meltdown.program(secret);
    let mut c = OooCore::new(fixed, &program);
    c.run(nda::attacks::ATTACK_MAX_CYCLES).expect("halts");
    let timings: Vec<u64> = (0..256)
        .map(|g| c.mem.read(nda::attacks::RESULTS_BASE + 8 * g, 8))
        .collect();
    let o = nda::attacks::analyze(&timings, secret, AttackKind::Meltdown.margin(), &[]);
    println!("{:<22}{:>10}{:>16}", "OoO, flaw fixed", o.leaked, "-");

    println!("\nNote the contrast the paper draws:");
    println!(" * permissive/strict propagation do NOT stop Meltdown — there is no");
    println!("   mispredicted branch to gate on (it is a chosen-code attack);");
    println!(" * load restriction does: a load wakes dependents only if it is about");
    println!("   to retire, and a faulting load never retires;");
    println!(" * fixing the specific flaw also works — until the next flaw (MDS,");
    println!("   Foreshadow, ...); load restriction is the blanket defense.");
    let _ = NdaPolicy::restricted_loads();
}
