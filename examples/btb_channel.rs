//! The paper's new covert channel: the branch target buffer.
//!
//! InvisiSpec-style defenses make speculative loads invisible to the
//! *cache* — but the wrong path still executes, and an indirect call
//! executed speculatively still updates the BTB. This example leaks a
//! byte through BTB prediction timing on the insecure core AND on both
//! InvisiSpec variants, while NDA (which cuts the dependence chain feeding
//! the indirect call) blocks it.
//!
//! ```sh
//! cargo run --release --example btb_channel
//! ```

use nda::attacks::{run_attack, AttackKind};
use nda::Variant;

fn main() {
    let secret = 0x5Eu8;
    println!("Spectre v1 over the BTB covert channel (paper §3, Listing 3)");
    println!("secret byte: {secret:#04x}\n");

    let interesting = [
        Variant::Ooo,
        Variant::InvisiSpecSpectre,
        Variant::InvisiSpecFuture,
        Variant::Permissive,
        Variant::FullProtection,
        Variant::InOrder,
    ];
    println!(
        "{:<22}{:>10}{:>16}{:>12}",
        "variant", "leaked?", "recovered", "separation"
    );
    for v in interesting {
        let o = run_attack(AttackKind::SpectreV1Btb, v, secret);
        let rec = o
            .recovered
            .map(|b| format!("{b:#04x}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22}{:>10}{:>16}{:>11}c",
            v.name(),
            o.leaked,
            rec,
            o.separation
        );
    }

    println!("\nThe point of the paper in one table: cache-only defenses");
    println!("(InvisiSpec rows) still leak through the BTB; NDA's data-propagation");
    println!("restriction blocks the transmit regardless of the channel.");
}
