//! Sweep every NDA policy over one workload and print the
//! security/performance trade-off — a miniature of the paper's Fig 7 and
//! Table 2 on a single kernel.
//!
//! Usage: `cargo run --release --example policy_sweep [workload] [iters]`
//! where `workload` is one of the ten kernel names (default `gcc`).

use nda::core::{run_variant, Variant};
use nda::workloads::{all, by_name, WorkloadParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gcc");
    let iters: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload {name:?}; available:");
        for w in all() {
            eprintln!("  {:<12}{}", w.name, w.behaviour);
        }
        std::process::exit(1);
    };

    println!(
        "workload: {} ({}), {} iterations\n",
        workload.name, workload.behaviour, iters
    );
    let prog = (workload.build)(&WorkloadParams { seed: 1, iters });

    println!(
        "{:<22}{:>12}{:>9}{:>10}{:>11}{:>11}",
        "variant", "cycles", "CPI", "vs OoO", "mispred", "deferred"
    );
    let mut base = None;
    for v in Variant::all() {
        let r = run_variant(v, &prog, 2_000_000_000).expect("workload halts");
        let base_cycles = *base.get_or_insert(r.stats.cycles);
        println!(
            "{:<22}{:>12}{:>9.3}{:>9.2}x{:>11}{:>11}",
            v.name(),
            r.stats.cycles,
            r.cpi(),
            r.stats.cycles as f64 / base_cycles as f64,
            r.stats.branch_mispredicts,
            r.stats.deferred_broadcasts,
        );
    }
    println!("\n'deferred' counts tag broadcasts NDA delayed — the mechanism's footprint.");
}
