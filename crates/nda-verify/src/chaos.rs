//! Host-level fault injection for the sweep chaos harness.
//!
//! The job-level faults (seeded panics, starved deadlines) live in
//! `nda-bench::fault` next to the machinery they exercise; this module
//! holds the *storage*-level faults — deterministic corruption of
//! on-disk journal records — so the property tests in `tests/chaos.rs`
//! can simulate torn writes and media rot and assert that the journal
//! quarantines the damage and a resumed sweep still converges to the
//! clean-run results.
//!
//! Both corruptions are pure functions of their arguments (no
//! wall-clock, no global RNG), keeping every chaos test replayable from
//! its seed.

use std::fs;
use std::io;
use std::path::Path;

/// SplitMix64: the same tiny seeded mixer the job-level chaos uses.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Truncate the file at `path` to its first `keep` bytes, simulating a
/// torn write (e.g. power loss mid-append). `keep` larger than the file
/// leaves it unchanged.
pub fn corrupt_truncate(path: &Path, keep: u64) -> io::Result<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    if keep < len {
        f.set_len(keep)?;
        f.sync_all()?;
    }
    Ok(())
}

/// Flip one bit of the file at `path`, chosen deterministically from
/// `seed`, simulating silent media corruption. Returns the byte offset
/// that was flipped. Errors with [`io::ErrorKind::InvalidInput`] on an
/// empty file (there is nothing to flip).
pub fn corrupt_bitflip(path: &Path, seed: u64) -> io::Result<u64> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cannot bit-flip an empty file",
        ));
    }
    let h = splitmix64(seed);
    let idx = h % bytes.len() as u64;
    let bit = (h >> 32) % 8;
    bytes[idx as usize] ^= 1 << bit;
    fs::write(path, &bytes)?;
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nda-verify-chaos-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn truncate_keeps_prefix_and_is_idempotent_past_len() {
        let p = tmp("trunc.bin");
        fs::write(&p, b"hello world").unwrap();
        corrupt_truncate(&p, 5).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"hello");
        corrupt_truncate(&p, 100).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"hello");
    }

    #[test]
    fn bitflip_is_deterministic_and_self_inverse() {
        let p = tmp("flip.bin");
        let original = b"the quick brown fox".to_vec();
        fs::write(&p, &original).unwrap();
        let i1 = corrupt_bitflip(&p, 42).unwrap();
        assert_ne!(fs::read(&p).unwrap(), original);
        // Same seed flips the same bit back.
        let i2 = corrupt_bitflip(&p, 42).unwrap();
        assert_eq!(i1, i2);
        assert_eq!(fs::read(&p).unwrap(), original);
    }

    #[test]
    fn bitflip_refuses_empty_file() {
        let p = tmp("empty.bin");
        fs::write(&p, b"").unwrap();
        let err = corrupt_bitflip(&p, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
