//! Fault-injection differential verification harness.
//!
//! The master correctness invariant of the reproduction is that NDA (and
//! every other evaluated configuration) changes *time*, never
//! *architecture*. The plain differential tests check that on undisturbed
//! runs; this crate checks it **under adversity**: seeded random SpecRISC
//! programs run on every [`Variant`] while a seeded [`FaultPlan`] injects
//! timing-only disturbances —
//!
//! * **spurious squashes** (mis-speculation recoveries that were not
//!   asked for),
//! * **extra memory latency** (transient contention),
//! * **predictor-state corruption** (bogus BTB targets, poisoned
//!   direction training, RAS push/pop),
//!
//! — and the final architectural state (registers, scratch memory,
//! retired count) must still be bit-exact against the reference
//! interpreter. The out-of-order runs also enable the cycle-level
//! invariant checker and forward-progress watchdog, so a disturbance that
//! wedges the pipeline or breaks a conservation law is caught and
//! reported, not silently timed out.
//!
//! On a mismatch the harness *shrinks*: it retries progressively simpler
//! generator configurations (shorter programs, no indirection, no fences,
//! no MSRs) that still reproduce the failure, then dumps a self-contained
//! repro — disassembly listing plus the binary encoding — to disk.
//!
//! The [`chaos`] module holds the host-level fault injectors (torn
//! writes, bit rot) behind the sweep fault-tolerance property tests in
//! `tests/chaos.rs`.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod dynamic;
pub mod harden;

pub use dynamic::{
    run_gadget, validate_report, DynamicCheck, GadgetVerdict, TaintObserver, ValidationOutcome,
};
pub use harden::{equivalent_modulo_reloc, gadgets_dead_on, DeadCheck, DeadGadgetVerdict};

use nda_core::config::{CoreModel, SimConfig};
use nda_core::sampled::Checkpoint;
use nda_core::{collect_checkpoints, OooCore, SampledParams, Variant};
use nda_isa::genprog::{generate, GenConfig, SCRATCH_BASE};
use nda_isa::{encode_program, Interp, Program};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::path::{Path, PathBuf};

/// Interpreter step budget per program.
const MAX_STEPS: u64 = 2_000_000;
/// Core cycle budget per program.
const MAX_CYCLES: u64 = 20_000_000;
/// Scratch words digested from `SCRATCH_BASE`.
const SCRATCH_WORDS: u64 = 64;
/// Fast-forward interval for the sampled-path check — small enough that
/// typical generated programs (a few hundred retired instructions) yield
/// at least one warmed checkpoint.
const SAMPLED_FF_EVERY: u64 = 150;

/// One class of injected disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Spurious squash-and-refetch from a random in-flight entry.
    Squash,
    /// Extra data-side memory latency.
    MemLat,
    /// Predictor-state corruption (BTB/direction/RAS).
    Predictor,
}

impl InjectKind {
    /// Parse a comma-separated list, e.g. `"squash,memlat,predictor"`.
    pub fn parse_list(s: &str) -> Result<Vec<InjectKind>, String> {
        s.split(',')
            .filter(|p| !p.is_empty())
            .map(|p| match p.trim() {
                "squash" => Ok(InjectKind::Squash),
                "memlat" => Ok(InjectKind::MemLat),
                "predictor" => Ok(InjectKind::Predictor),
                other => Err(format!(
                    "unknown injection kind `{other}` (expected squash, memlat, predictor)"
                )),
            })
            .collect()
    }
}

impl fmt::Display for InjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectKind::Squash => "squash",
            InjectKind::MemLat => "memlat",
            InjectKind::Predictor => "predictor",
        })
    }
}

/// Per-cycle injection probabilities. All disturbances are timing-only;
/// the differential assertion is what proves they stayed that way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability per cycle of a spurious squash. Squashes are
    /// additionally gated on forward progress (at least one commit since
    /// the previous injected squash) so the plan cannot livelock the
    /// pipeline by construction.
    pub squash_rate: f64,
    /// Probability per cycle of re-drawing the extra data-side latency
    /// (0..48 cycles, occasionally reset to nominal).
    pub memlat_rate: f64,
    /// Probability per cycle of corrupting one predictor structure.
    pub predictor_rate: f64,
}

impl FaultPlan {
    /// No injection at all (plain differential run).
    pub fn none() -> FaultPlan {
        FaultPlan {
            squash_rate: 0.0,
            memlat_rate: 0.0,
            predictor_rate: 0.0,
        }
    }

    /// Default rates for the selected kinds.
    pub fn for_kinds(kinds: &[InjectKind]) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for k in kinds {
            match k {
                InjectKind::Squash => plan.squash_rate = 0.02,
                InjectKind::MemLat => plan.memlat_rate = 0.05,
                InjectKind::Predictor => plan.predictor_rate = 0.05,
            }
        }
        plan
    }

    fn is_none(&self) -> bool {
        self.squash_rate == 0.0 && self.memlat_rate == 0.0 && self.predictor_rate == 0.0
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Base seed: iteration `i` generates its program (and injection
    /// stream) from `seed + i`.
    pub seed: u64,
    /// Programs to run.
    pub iters: u64,
    /// Injection plan applied to every out-of-order variant.
    pub plan: FaultPlan,
    /// Program-generator shape.
    pub gen: GenConfig,
    /// Where to dump shrunk repros (`None` = don't write).
    pub repro_dir: Option<PathBuf>,
}

impl VerifyConfig {
    /// `iters` programs from `seed` with the given injections and the
    /// default generator shape, dumping repros into `target/nda-repros`.
    pub fn new(seed: u64, iters: u64, kinds: &[InjectKind]) -> VerifyConfig {
        VerifyConfig {
            seed,
            iters,
            plan: FaultPlan::for_kinds(kinds),
            gen: GenConfig::default(),
            repro_dir: Some(PathBuf::from("target/nda-repros")),
        }
    }
}

/// A confirmed architectural divergence, already shrunk.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Program seed that failed.
    pub seed: u64,
    /// The diverging variant.
    pub variant: Variant,
    /// What diverged (registers, memory, retired count, or a structured
    /// simulator error).
    pub detail: String,
    /// Generator configuration of the *shrunk* reproducer.
    pub gen: GenConfig,
    /// The shrunk program.
    pub program: Program,
    /// Where the repro listing was written, if anywhere.
    pub repro_path: Option<PathBuf>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} on {}: {} ({} insts{})",
            self.seed,
            self.variant,
            self.detail,
            self.program.len(),
            match &self.repro_path {
                Some(p) => format!(", repro at {}", p.display()),
                None => String::new(),
            }
        )
    }
}

/// Outcome of a whole verification run.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Iterations completed.
    pub iters: u64,
    /// Variants exercised per iteration.
    pub variants: usize,
    /// Every confirmed (shrunk) divergence.
    pub mismatches: Vec<Mismatch>,
}

impl VerifyReport {
    /// `true` when every run matched the reference interpreter.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Final architectural state: registers, scratch-memory digest, retired
/// instruction count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ArchState {
    regs: [u64; 32],
    scratch: Vec<u64>,
    retired: u64,
}

fn interp_state(program: &Program) -> Result<ArchState, String> {
    let mut i = Interp::new(program);
    let exit = i
        .run(MAX_STEPS)
        .map_err(|e| format!("reference interpreter: {e}"))?;
    if !exit.halted {
        return Err("reference interpreter did not halt".into());
    }
    let scratch = (0..SCRATCH_WORDS)
        .map(|k| i.mem.read(SCRATCH_BASE + 8 * k, 8))
        .collect();
    Ok(ArchState {
        regs: *i.regs(),
        scratch,
        retired: exit.retired,
    })
}

/// Run `program` on `variant` with `plan` injected (out-of-order cores
/// only; the in-order core has no speculative state to disturb).
fn variant_state(
    variant: Variant,
    program: &Program,
    plan: &FaultPlan,
    inject_seed: u64,
) -> Result<ArchState, String> {
    let mut cfg = SimConfig::for_variant(variant);
    match cfg.model {
        CoreModel::InOrder => {
            let mut c = nda_core::InOrderCore::new(cfg, program);
            let r = c.run(MAX_CYCLES).map_err(|e| e.to_string())?;
            let scratch = (0..SCRATCH_WORDS)
                .map(|k| c.mem.read(SCRATCH_BASE + 8 * k, 8))
                .collect();
            Ok(ArchState {
                regs: r.regs,
                scratch,
                retired: r.stats.committed_insts,
            })
        }
        CoreModel::OutOfOrder => {
            // Every hardening layer on: the commit-time oracle and the
            // conservation-law checker catch divergences at the exact
            // cycle; the watchdog catches injection-induced wedges.
            cfg.check_invariants = true;
            let mut c = OooCore::new(cfg, program);
            let r = run_ooo_injected(&mut c, *plan, inject_seed)?;
            let scratch = (0..SCRATCH_WORDS)
                .map(|k| c.mem.read(SCRATCH_BASE + 8 * k, 8))
                .collect();
            Ok(ArchState {
                regs: r.regs,
                scratch,
                retired: r.stats.committed_insts,
            })
        }
    }
}

/// Drive an out-of-order core to completion with `plan` injected every
/// cycle (shared by the full-detail and the checkpoint-restored sampled
/// paths).
fn run_ooo_injected(
    c: &mut OooCore,
    plan: FaultPlan,
    inject_seed: u64,
) -> Result<nda_core::RunResult, String> {
    let mut rng = StdRng::seed_from_u64(inject_seed);
    let mut commits_at_last_squash = 0u64;
    let run = if plan.is_none() {
        c.run(MAX_CYCLES)
    } else {
        c.run_hooked(MAX_CYCLES, |core| {
            if plan.squash_rate > 0.0 && rng.gen_bool(plan.squash_rate) {
                // Forward-progress gate: never squash twice without
                // an intervening commit.
                if core.stats.committed_insts > commits_at_last_squash
                    && core.inject_spurious_squash(rng.next_u64())
                {
                    commits_at_last_squash = core.stats.committed_insts;
                }
            }
            if plan.memlat_rate > 0.0 && rng.gen_bool(plan.memlat_rate) {
                let extra = if rng.gen_bool(0.25) {
                    0
                } else {
                    rng.gen_range(1u64..48)
                };
                core.hier.set_extra_latency(extra);
            }
            if plan.predictor_rate > 0.0 && rng.gen_bool(plan.predictor_rate) {
                core.inject_predictor_corruption(rng.next_u64(), rng.next_u64());
            }
        })
    };
    run.map_err(|e| e.to_string())
}

/// The sampled path under the same injections: restore `ckpt` (warmed by
/// the functional fast-forward) into a fresh core and run the detailed
/// remainder to completion. `retired` folds the fast-forwarded prefix
/// back in so the result is comparable to the full-program reference.
fn sampled_variant_state(
    variant: Variant,
    program: &Program,
    plan: &FaultPlan,
    inject_seed: u64,
    ckpt: &Checkpoint,
) -> Result<ArchState, String> {
    let mut cfg = SimConfig::for_variant(variant);
    match cfg.model {
        CoreModel::InOrder => {
            let mut c = nda_core::InOrderCore::new(cfg, program);
            c.restore_checkpoint(&ckpt.interp, &ckpt.hier);
            let r = c.run(MAX_CYCLES).map_err(|e| e.to_string())?;
            let scratch = (0..SCRATCH_WORDS)
                .map(|k| c.mem.read(SCRATCH_BASE + 8 * k, 8))
                .collect();
            Ok(ArchState {
                regs: r.regs,
                scratch,
                retired: ckpt.ff_insts + r.stats.committed_insts,
            })
        }
        CoreModel::OutOfOrder => {
            cfg.check_invariants = true;
            let mut c = OooCore::new(cfg, program);
            c.restore_checkpoint(&ckpt.interp, &ckpt.hier, &ckpt.dir, &ckpt.btb, &ckpt.ras);
            let r = run_ooo_injected(&mut c, *plan, inject_seed)?;
            let scratch = (0..SCRATCH_WORDS)
                .map(|k| c.mem.read(SCRATCH_BASE + 8 * k, 8))
                .collect();
            Ok(ArchState {
                regs: r.regs,
                scratch,
                retired: ckpt.ff_insts + r.stats.committed_insts,
            })
        }
    }
}

/// Compare one variant against the reference; `Err` holds a divergence
/// description.
fn check_variant(
    variant: Variant,
    program: &Program,
    oracle: &ArchState,
    plan: &FaultPlan,
    inject_seed: u64,
) -> Result<(), String> {
    let got = variant_state(variant, program, plan, inject_seed)?;
    compare_states(&got, oracle)
}

fn compare_states(got: &ArchState, oracle: &ArchState) -> Result<(), String> {
    if got.regs != oracle.regs {
        let r = (0..32)
            .find(|&i| got.regs[i] != oracle.regs[i])
            .expect("some reg differs");
        return Err(format!(
            "register x{r} = {:#x}, reference {:#x}",
            got.regs[r], oracle.regs[r]
        ));
    }
    if got.scratch != oracle.scratch {
        let k = (0..got.scratch.len())
            .find(|&i| got.scratch[i] != oracle.scratch[i])
            .expect("some word differs");
        return Err(format!(
            "scratch word {k} = {:#x}, reference {:#x}",
            got.scratch[k], oracle.scratch[k]
        ));
    }
    if got.retired != oracle.retired {
        return Err(format!(
            "retired {} instructions, reference {}",
            got.retired, oracle.retired
        ));
    }
    Ok(())
}

/// Verify one program seed across every variant. Returns the (shrunk)
/// mismatch on failure.
pub fn verify_one(cfg: &VerifyConfig, prog_seed: u64) -> Result<(), Box<Mismatch>> {
    verify_seed_with_gen(cfg, prog_seed, cfg.gen)
        .map_err(|(variant, detail)| Box::new(shrink(cfg, prog_seed, variant, detail)))
}

fn verify_seed_with_gen(
    cfg: &VerifyConfig,
    prog_seed: u64,
    gen: GenConfig,
) -> Result<(), (Variant, String)> {
    let program = generate(prog_seed, gen);
    let oracle = match interp_state(&program) {
        Ok(o) => o,
        // A generated program the reference itself cannot finish is a
        // generator artefact, not a core bug: skip it.
        Err(_) => return Ok(()),
    };
    for (vi, variant) in Variant::all().into_iter().enumerate() {
        let inject_seed = prog_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cfg.seed)
            .wrapping_add(vi as u64);
        check_variant(variant, &program, &oracle, &cfg.plan, inject_seed)
            .map_err(|detail| (variant, detail))?;
    }
    // Sampled path: functionally fast-forward past warmed checkpoints,
    // restore the deepest one into every variant, and run the detailed
    // remainder to completion under the same injections. Architecture
    // must still be bit-exact against the full-program reference.
    let params = SampledParams::new(SAMPLED_FF_EVERY, 0, 0);
    let set = match collect_checkpoints(
        &SimConfig::for_variant(Variant::Ooo),
        &program,
        params,
        MAX_STEPS,
    ) {
        Ok(s) => s,
        // The reference already halted above, so a collection failure can
        // only be the step budget; treat like an unfinishable program.
        Err(_) => return Ok(()),
    };
    if let Some(ckpt) = set.checkpoints.last() {
        for (vi, variant) in Variant::all().into_iter().enumerate() {
            let inject_seed = prog_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(cfg.seed)
                .wrapping_add(0x5EED)
                .wrapping_add(vi as u64);
            sampled_variant_state(variant, &program, &cfg.plan, inject_seed, ckpt)
                .and_then(|got| compare_states(&got, &oracle))
                .map_err(|detail| (variant, format!("sampled path: {detail}")))?;
        }
    }
    Ok(())
}

/// Shrink a failing seed to the simplest generator configuration that
/// still diverges, then dump a repro.
fn shrink(cfg: &VerifyConfig, prog_seed: u64, variant: Variant, detail: String) -> Mismatch {
    let mut best_gen = cfg.gen;
    let mut best_detail = detail;
    // Candidate simplifications, tried cumulatively: drop instruction
    // classes first (smaller grammar), then shrink the program.
    let mut candidates: Vec<GenConfig> = Vec::new();
    let mut g = cfg.gen;
    for _ in 0..3 {
        if g.msrs {
            g.msrs = false;
            candidates.push(g);
        }
        if g.fences {
            g.fences = false;
            candidates.push(g);
        }
        if g.indirect {
            g.indirect = false;
            candidates.push(g);
        }
        if g.max_depth > 1 {
            g.max_depth -= 1;
            candidates.push(g);
        }
        if g.target_len > 20 {
            g.target_len /= 2;
            candidates.push(g);
        }
    }
    for cand in candidates {
        if let Err((v, d)) = verify_seed_with_gen(cfg, prog_seed, cand) {
            if v == variant {
                best_gen = cand;
                best_detail = d;
            }
        }
    }
    let program = generate(prog_seed, best_gen);
    let repro_path = cfg
        .repro_dir
        .as_deref()
        .and_then(|dir| write_repro(dir, prog_seed, variant, &best_detail, best_gen, &program));
    Mismatch {
        seed: prog_seed,
        variant,
        detail: best_detail,
        gen: best_gen,
        program,
        repro_path,
    }
}

/// Dump a self-contained repro: metadata + disassembly listing, plus the
/// binary encoding next to it. Returns the listing path on success.
fn write_repro(
    dir: &Path,
    seed: u64,
    variant: Variant,
    detail: &str,
    gen: GenConfig,
    program: &Program,
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let mut listing = String::new();
    listing.push_str(&format!(
        "# nda-verify repro\n# seed: {seed}\n# variant: {variant}\n# divergence: {detail}\n\
         # genconfig: {gen:?}\n# entry: {}\n",
        program.entry
    ));
    if let Some(h) = program.fault_handler {
        listing.push_str(&format!("# fault handler: {h}\n"));
    }
    for (pc, inst) in program.insts.iter().enumerate() {
        listing.push_str(&format!("{pc:5}: {inst}\n"));
    }
    let txt = dir.join(format!("repro-{seed}.txt"));
    std::fs::write(&txt, listing).ok()?;
    let bin = dir.join(format!("repro-{seed}.bin"));
    std::fs::write(&bin, encode_program(program)).ok()?;
    Some(txt)
}

/// Run the whole harness: `cfg.iters` programs, every variant each, with
/// `progress` called after each iteration (for CLI reporting).
pub fn run_verify(cfg: &VerifyConfig, mut progress: impl FnMut(u64, usize)) -> VerifyReport {
    let mut mismatches = Vec::new();
    for i in 0..cfg.iters {
        if let Err(m) = verify_one(cfg, cfg.seed.wrapping_add(i)) {
            mismatches.push(*m);
        }
        progress(i + 1, mismatches.len());
    }
    VerifyReport {
        iters: cfg.iters,
        variants: Variant::all().len(),
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gen() -> GenConfig {
        GenConfig {
            target_len: 120,
            max_depth: 2,
            indirect: true,
            fences: true,
            msrs: true,
        }
    }

    #[test]
    fn parse_inject_list() {
        assert_eq!(
            InjectKind::parse_list("squash,memlat,predictor").unwrap(),
            vec![
                InjectKind::Squash,
                InjectKind::MemLat,
                InjectKind::Predictor
            ]
        );
        assert_eq!(InjectKind::parse_list("").unwrap(), vec![]);
        assert!(InjectKind::parse_list("squish").is_err());
    }

    #[test]
    fn clean_runs_match_reference() {
        let mut cfg = VerifyConfig::new(7, 2, &[]);
        cfg.gen = small_gen();
        let report = run_verify(&cfg, |_, _| {});
        assert!(report.ok(), "mismatches: {:?}", report.mismatches);
        assert_eq!(report.iters, 2);
    }

    /// The sampled path must hold not just end-to-end (covered by
    /// `verify_seed_with_gen`) but for a directly restored deepest
    /// checkpoint under full injection, on several generated programs.
    #[test]
    fn sampled_path_matches_reference_on_generated_programs() {
        let gen = small_gen();
        let plan = FaultPlan::for_kinds(&[
            InjectKind::Squash,
            InjectKind::MemLat,
            InjectKind::Predictor,
        ]);
        let mut checked = 0;
        for seed in 0..40 {
            let program = generate(seed, gen);
            let Ok(oracle) = interp_state(&program) else {
                continue;
            };
            let set = collect_checkpoints(
                &SimConfig::for_variant(Variant::Ooo),
                &program,
                SampledParams::new(SAMPLED_FF_EVERY, 0, 0),
                MAX_STEPS,
            )
            .expect("reference halted, so collection must too");
            let Some(ckpt) = set.checkpoints.last() else {
                continue; // too short to fast-forward
            };
            for variant in [Variant::Ooo, Variant::FullProtection, Variant::InOrder] {
                let got =
                    sampled_variant_state(variant, &program, &plan, seed ^ 0xABCD, ckpt).unwrap();
                if let Err(d) = compare_states(&got, &oracle) {
                    panic!("seed {seed} on {variant}: {d}");
                }
            }
            checked += 1;
            if checked >= 3 {
                break;
            }
        }
        assert!(checked >= 1, "no generated program long enough to sample");
    }

    #[test]
    fn injected_runs_match_reference() {
        let mut cfg = VerifyConfig::new(
            11,
            2,
            &[
                InjectKind::Squash,
                InjectKind::MemLat,
                InjectKind::Predictor,
            ],
        );
        cfg.gen = small_gen();
        let report = run_verify(&cfg, |_, _| {});
        assert!(report.ok(), "mismatches: {:?}", report.mismatches);
    }
}
