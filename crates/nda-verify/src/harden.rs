//! Verification of software-hardened programs.
//!
//! `nda-analyze::harden` rewrites a program to close its speculative
//! leaks. A rewrite that merely *moves* the leak, or that changes what
//! the program computes, is worse than no rewrite at all — so every
//! hardened program has to clear two bars beyond re-analysis:
//!
//! 1. **Architectural equivalence modulo relocation**
//!    ([`equivalent_modulo_reloc`]): on the reference interpreter the
//!    hardened program must halt the same way, fault the same number of
//!    times, and leave the same registers and memory as the original.
//!    The one permitted difference is *code-pointer relocation*:
//!    instruction indices are the ISA's only form of code address, and
//!    inserting instructions shifts them, so a value is also accepted
//!    when the original holds an old pc and the rewrite holds exactly
//!    where [`PcMap::target`] relocated it. Both sides run with
//!    [`neutralize_rdcycle`] applied — inserted instructions perturb the
//!    retired-instruction clock, and timing is precisely what hardening
//!    is allowed to change.
//! 2. **Dynamic gadget death** ([`gadgets_dead_on`]): every gadget the
//!    analyzer reported against the *original* program is re-checked on
//!    an unprotected Base OoO core, with the check matched to how the
//!    gadget was repaired. Fence and thunk fixes kill the *transient
//!    execution* of the chain, so the taint observer re-runs at the
//!    relocated `(source, sink)` pcs under a budget calibrated from the
//!    original confirmation cycle and must stay silent. A mask fix kills
//!    the *secret access itself* — the clamped load still executes (that
//!    is the point: no serialization cost) and pc-level taint would
//!    spuriously re-confirm — so the proof watched instead is the
//!    source's effective address stream: no issue of the relocated
//!    source, wrong-path instances included, may overlap the
//!    [`SecretSpec`].
//!
//! Together with the static re-analysis (`HardenOutcome::clean`) these
//! close the loop the same way `validate_report` does for the hardware
//! variants: the software mitigation's claims are executable.

use nda_analyze::{HardenOutcome, Pass};
use nda_core::trace::TraceStage;
use nda_core::{OooCore, SimConfig};
use nda_isa::{neutralize_rdcycle, Interp, PcMap, Program, SecretSpec, PAGE_SIZE};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::dynamic::run_gadget;

/// `got` matches `orig` under relocation: bit-equal, or `orig` is a
/// plausible old code pointer (instruction index, one-past-end allowed
/// for return addresses) that `map` sends exactly to `got`.
fn reloc_ok(orig: u64, got: u64, map: &PcMap) -> bool {
    got == orig || (orig <= map.old_len() as u64 && got == map.target(orig as usize) as u64)
}

/// Run `p` (rdcycle-neutralized) on the reference interpreter.
fn interp_run(p: &Program, max_steps: u64) -> Result<Interp, String> {
    let mut i = Interp::new(p);
    let exit = i.run(max_steps).map_err(|e| format!("interpreter: {e}"))?;
    if !exit.halted {
        return Err(format!("did not halt within {max_steps} steps"));
    }
    Ok(i)
}

/// Check that `hardened` is architecturally equivalent to `orig` modulo
/// the relocation described by `map`: same halt, same fault count, and
/// registers/memory equal under [`reloc_ok`]. Memory is compared 64-bit
/// word by word over the union of resident pages (code pointers are
/// stored as 8-byte words; everything else must be bit-equal, which
/// word-wise comparison subsumes).
///
/// # Errors
///
/// A human-readable description of the first divergence.
pub fn equivalent_modulo_reloc(
    orig: &Program,
    hardened: &Program,
    map: &PcMap,
    max_steps: u64,
) -> Result<(), String> {
    let a =
        interp_run(&neutralize_rdcycle(orig), max_steps).map_err(|e| format!("original: {e}"))?;
    let b = interp_run(&neutralize_rdcycle(hardened), max_steps)
        .map_err(|e| format!("hardened: {e}"))?;
    if a.faults() != b.faults() {
        return Err(format!(
            "fault count diverged: original {}, hardened {}",
            a.faults(),
            b.faults()
        ));
    }
    for r in 0..a.regs().len() {
        let (o, g) = (a.regs()[r], b.regs()[r]);
        if !reloc_ok(o, g, map) {
            return Err(format!(
                "register x{r} diverged: original {o:#x}, hardened {g:#x}"
            ));
        }
    }
    let pa: BTreeMap<u64, Arc<[u8; PAGE_SIZE]>> = a.mem.dump_pages().into_iter().collect();
    let pb: BTreeMap<u64, Arc<[u8; PAGE_SIZE]>> = b.mem.dump_pages().into_iter().collect();
    let zero = Arc::new([0u8; PAGE_SIZE]);
    let mut addrs: Vec<u64> = pa.keys().chain(pb.keys()).copied().collect();
    addrs.dedup();
    for base in addrs {
        let wa = pa.get(&base).unwrap_or(&zero);
        let wb = pb.get(&base).unwrap_or(&zero);
        for off in (0..PAGE_SIZE).step_by(8) {
            let o = u64::from_le_bytes(wa[off..off + 8].try_into().expect("8-byte slice"));
            let g = u64::from_le_bytes(wb[off..off + 8].try_into().expect("8-byte slice"));
            if !reloc_ok(o, g, map) {
                return Err(format!(
                    "memory word at {:#x} diverged: original {o:#x}, hardened {g:#x}",
                    base + off as u64
                ));
            }
        }
    }
    Ok(())
}

/// Which dynamic proof applied to one repaired gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadCheck {
    /// Taint-observer re-run at the relocated `(source, sink)` pcs — the
    /// fix (fence or thunk) prevents the chain from executing
    /// transiently, so the observer must never confirm.
    TransientTransmit,
    /// Effective-address watch on the relocated source — the fix (mask)
    /// clamps the access, so no issued instance of the source, squashed
    /// or not, may touch the secret.
    SecretAccess,
}

/// One original gadget's fate after hardening.
#[derive(Debug, Clone, Copy)]
pub struct DeadGadgetVerdict {
    /// Gadget coordinates in the *original* program.
    pub source_pc: usize,
    /// Original sink pc.
    pub sink_pc: usize,
    /// Cycle at which the gadget confirmed on the original program, if it
    /// did (a gadget that never fired dynamically has nothing to kill).
    pub original_confirm: Option<u64>,
    /// Which proof obligation the hardened program was held to.
    pub check: DeadCheck,
    /// Cycle at which the *hardened* program still failed its check.
    /// `None` is the desired outcome.
    pub hardened_confirm: Option<u64>,
}

/// First cycle at which an issued instance of `source_pc` (wrong-path
/// instances included) carried an effective address overlapping `spec`,
/// or `None` if the program halted (or exhausted `max_cycles`) without
/// one.
fn first_secret_access(
    p: &Program,
    source_pc: usize,
    spec: &SecretSpec,
    cfg: &SimConfig,
    max_cycles: u64,
) -> Option<u64> {
    const DRAIN_EVERY: u64 = 4096;
    let mut core = OooCore::new(*cfg, p);
    core.enable_trace();
    while !core.halted() && core.cycle() < max_cycles {
        let until = (core.cycle() + DRAIN_EVERY).min(max_cycles);
        while !core.halted() && core.cycle() < until {
            core.step_cycle();
        }
        for e in core.take_trace_events() {
            if e.stage == TraceStage::Issue && e.pc == source_pc {
                if let Some((addr, len)) = e.mem {
                    if spec.overlaps(addr, len) {
                        return Some(e.cycle);
                    }
                }
            }
        }
    }
    None
}

/// Re-check every `(source, sink)` gadget of the original program's
/// report against the hardened program on the given (typically
/// unprotected Base OoO) configuration. Each gadget first runs on the
/// original under `max_cycles` with the taint observer; if it confirms,
/// the hardened program is held to the proof matching its repair (see
/// [`DeadCheck`]): gadgets whose relocated source was clamped by a mask
/// fix get the address watch over the whole hardened run, everything
/// else re-runs the taint observer at the relocated pcs with a budget of
/// 4× the original confirmation cycle plus slack (so mitigation overhead
/// cannot masquerade as suppression). The hardening holds iff no verdict
/// has `hardened_confirm`.
pub fn gadgets_dead_on(
    orig: &Program,
    out: &HardenOutcome,
    report: &nda_analyze::Report,
    spec: &SecretSpec,
    cfg: &SimConfig,
    max_cycles: u64,
) -> Vec<DeadGadgetVerdict> {
    report
        .gadgets
        .iter()
        .map(|g| {
            let new_src = out.map.inst(g.source_pc);
            let new_sink = out.map.inst(g.sink_pc);
            // A mask fix anywhere on this source kills every gadget
            // flowing from it, including ones the re-analysis never saw
            // again (shared-source dedup re-plans only surviving
            // gadgets).
            let masked = out
                .fixes
                .iter()
                .any(|f| f.pass == Pass::Mask && f.source_pc == new_src);
            let check = if masked {
                DeadCheck::SecretAccess
            } else {
                DeadCheck::TransientTransmit
            };
            let base = run_gadget(orig, g.source_pc, g.sink_pc, *cfg, max_cycles);
            let hardened_confirm = base.confirm_cycle.and_then(|c| match check {
                DeadCheck::SecretAccess => {
                    first_secret_access(&out.program, new_src, spec, cfg, max_cycles)
                }
                DeadCheck::TransientTransmit => {
                    let budget = (c.saturating_mul(4) + 100_000).min(max_cycles);
                    run_gadget(&out.program, new_src, new_sink, *cfg, budget).confirm_cycle
                }
            });
            DeadGadgetVerdict {
                source_pc: g.source_pc,
                sink_pc: g.sink_pc,
                original_confirm: base.confirm_cycle,
                check,
                hardened_confirm,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::{apply_patches, Asm, Inst, Patch, Reg};

    /// A fence inserted mid-program relocates the `ra`-like code pointer
    /// a call materializes; the checker must accept exactly that shift
    /// and nothing else.
    #[test]
    fn accepts_relocation_rejects_semantic_change() {
        let mut a = Asm::new();
        let f = a.new_label();
        a.li_label(Reg::X2, f); // 0: code pointer into x2
        a.li(Reg::X3, 7); // 1
        a.jmp(f); // 2
        a.bind(f);
        a.halt(); // 3
        let p = a.assemble().unwrap();

        let (fenced, map) =
            apply_patches(&p, &[Patch::insert_before(3, vec![Inst::Fence])]).unwrap();
        equivalent_modulo_reloc(&p, &fenced, &map, 10_000).expect("pure relocation is equivalent");

        // Same shape but a different architectural value: must be caught.
        let (mut broken, map2) =
            apply_patches(&p, &[Patch::insert_before(3, vec![Inst::Fence])]).unwrap();
        broken.insts[map2.inst(1)] = Inst::Li {
            rd: Reg::X3,
            imm: 8,
        };
        let err = equivalent_modulo_reloc(&p, &broken, &map2, 10_000).unwrap_err();
        assert!(err.contains("x3"), "wrong divergence report: {err}");
    }
}
