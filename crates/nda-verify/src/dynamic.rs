//! Dynamic confirmation of statically-reported gadgets.
//!
//! `nda-analyze` claims a program contains an access→transmit gadget
//! that leaks *transiently*. This module checks that claim on the
//! cycle-level simulator: run the program on an [`OooCore`] with pipeline
//! tracing enabled and track taint through the *dynamic* instruction
//! stream —
//!
//! * a dispatch of the gadget's **source** pc taints its destination
//!   register binding,
//! * any dispatch whose source operands are tainted propagates the taint
//!   to its destination (speculative instances included: dispatch order
//!   is fetch order, wrong paths and all),
//! * the gadget is **confirmed** when an instance of the **sink** pc
//!   *issues* with a tainted operand (the microarchitectural access
//!   happens) and that instance is later *squashed* — i.e. the secret
//!   demonstrably reached a transmitter on a transient path that never
//!   became architectural.
//!
//! Squashed instances roll their taint bindings back, so wrong-path
//! writes cannot contaminate later architectural taint state. Committed
//! tainted-sink instances are deliberately *not* confirmations: training
//! rounds of the Spectre PoCs transmit a decoy architecturally, which is
//! not a speculative leak.
//!
//! Taint here flows through registers only; all shipped attack gadgets
//! carry the secret register-to-register between access and transmit. A
//! gadget laundering taint through memory between source and sink would
//! need store-forward tracking to confirm (known limitation, documented
//! in DESIGN.md §11).

use std::collections::HashMap;

use nda_core::trace::{TraceEvent, TraceStage};
use nda_core::{OooCore, SimConfig};
use nda_isa::reg::NUM_REGS;
use nda_isa::Program;

/// A register's current taint binding and which dynamic instance wrote
/// it (so squash can roll back precisely).
#[derive(Debug, Clone, Copy, Default)]
struct Binding {
    tainted: bool,
    /// Unique id of the writing instance; 0 = initial (architectural)
    /// state.
    owner: u64,
}

/// One in-flight dynamic micro-op instance.
#[derive(Debug)]
struct Instance {
    id: u64,
    pc: usize,
    /// Operand taint at dispatch (rename time fixes provenance).
    tainted_operand: bool,
    /// The sink issued with a tainted operand: transmission happened.
    transmitted: bool,
    /// Destination register this instance rebound, with the previous
    /// binding for rollback.
    write: Option<(usize, Binding)>,
}

/// Observes drained [`TraceEvent`]s and decides whether a (source, sink)
/// pair transmitted tainted data on a squashed (transient) path.
pub struct TaintObserver<'p> {
    p: &'p Program,
    source_pc: usize,
    sink_pc: usize,
    regs: Vec<Binding>,
    live: HashMap<u64, Instance>,
    next_id: u64,
    /// Cycle of the first confirmed transient transmission.
    pub confirmed_at: Option<u64>,
    /// Every pc the pipeline reported withheld at issue through its
    /// in-core taint gate (`TaintGated` events) — for cross-validating
    /// the observer's view against the STT/ShadowBinding hardware model.
    pub gated_pcs: std::collections::BTreeSet<usize>,
}

impl<'p> TaintObserver<'p> {
    /// New observer for one gadget of `p`.
    pub fn new(p: &'p Program, source_pc: usize, sink_pc: usize) -> TaintObserver<'p> {
        TaintObserver {
            p,
            source_pc,
            sink_pc,
            regs: vec![Binding::default(); NUM_REGS],
            live: HashMap::new(),
            next_id: 1,
            confirmed_at: None,
            gated_pcs: std::collections::BTreeSet::new(),
        }
    }

    /// Feed a batch of drained trace events (must be in emission order).
    pub fn process(&mut self, events: &[TraceEvent]) {
        for e in events {
            match e.stage {
                TraceStage::Dispatch => self.on_dispatch(e),
                TraceStage::Issue => {
                    if let Some(inst) = self.live.get_mut(&e.seq) {
                        if inst.pc == self.sink_pc && inst.tainted_operand {
                            inst.transmitted = true;
                        }
                    }
                }
                TraceStage::Squash => {
                    if let Some(inst) = self.live.remove(&e.seq) {
                        if inst.transmitted && self.confirmed_at.is_none() {
                            self.confirmed_at = Some(e.cycle);
                        }
                        if let Some((r, prev)) = inst.write {
                            if self.regs[r].owner == inst.id {
                                self.regs[r] = prev;
                            }
                        }
                    }
                }
                TraceStage::Commit => {
                    // Binding becomes architectural; nothing to roll back.
                    self.live.remove(&e.seq);
                }
                TraceStage::TaintGated => {
                    self.gated_pcs.insert(e.pc);
                }
                TraceStage::Complete
                | TraceStage::Broadcast
                | TraceStage::CacheMiss
                | TraceStage::Mispredict => {}
            }
        }
    }

    fn on_dispatch(&mut self, e: &TraceEvent) {
        let Some(inst) = self.p.fetch(e.pc) else {
            return;
        };
        let tainted_operand = inst.srcs().any(|r| self.regs[r.index()].tainted);
        let id = self.next_id;
        self.next_id += 1;
        let mut write = None;
        if let Some(rd) = inst.dest() {
            let taint = tainted_operand || e.pc == self.source_pc;
            let prev = self.regs[rd.index()];
            self.regs[rd.index()] = Binding {
                tainted: taint,
                owner: id,
            };
            write = Some((rd.index(), prev));
        }
        // Sequence numbers are reused after squash/commit; a fresh
        // dispatch replaces any stale instance.
        self.live.insert(
            e.seq,
            Instance {
                id,
                pc: e.pc,
                tainted_operand,
                transmitted: false,
                write,
            },
        );
    }
}

/// Result of one dynamic gadget run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicCheck {
    /// Cycle of the first confirmed transient transmission, if any.
    pub confirm_cycle: Option<u64>,
    /// Cycles simulated.
    pub cycles_run: u64,
    /// The program halted within the budget.
    pub halted: bool,
}

impl DynamicCheck {
    /// The gadget transmitted tainted data on a squashed path.
    pub fn confirmed(self) -> bool {
        self.confirm_cycle.is_some()
    }
}

/// How many cycles to simulate between trace drains (bounds observer
/// memory without measurable overhead).
const DRAIN_EVERY: u64 = 4096;

/// Run `p` on an [`OooCore`] built from `cfg` and watch for a transient
/// transmission of the `(source_pc, sink_pc)` gadget. Stops at the first
/// confirmation, at halt, or after `max_cycles`.
pub fn run_gadget(
    p: &Program,
    source_pc: usize,
    sink_pc: usize,
    cfg: SimConfig,
    max_cycles: u64,
) -> DynamicCheck {
    let mut core = OooCore::new(cfg, p);
    core.enable_trace();
    let mut obs = TaintObserver::new(p, source_pc, sink_pc);
    while !core.halted() && core.cycle() < max_cycles && obs.confirmed_at.is_none() {
        let until = (core.cycle() + DRAIN_EVERY).min(max_cycles);
        while !core.halted() && core.cycle() < until {
            core.step_cycle();
        }
        obs.process(&core.take_trace_events());
    }
    DynamicCheck {
        confirm_cycle: obs.confirmed_at,
        cycles_run: core.cycle(),
        halted: core.halted(),
    }
}

/// Differential verdict for one statically-reported gadget.
#[derive(Debug, Clone, Copy)]
pub struct GadgetVerdict {
    /// Gadget's access pc.
    pub source_pc: usize,
    /// Gadget's transmit pc.
    pub sink_pc: usize,
    /// Run under the baseline (unprotected) configuration.
    pub base: DynamicCheck,
    /// Run under the strict configuration; `None` when the baseline never
    /// confirmed (nothing to suppress, no budget to calibrate).
    pub strict: Option<DynamicCheck>,
}

impl GadgetVerdict {
    /// Baseline confirmed the transient leak and the strict run did not:
    /// the static report is dynamically realizable *and* the mitigation
    /// demonstrably closes it.
    pub fn differential_holds(self) -> bool {
        self.base.confirmed() && self.strict.is_some_and(|s| !s.confirmed())
    }
}

/// Outcome of [`validate_report`]: one verdict per reported gadget.
#[derive(Debug, Clone, Default)]
pub struct ValidationOutcome {
    /// Per-gadget verdicts, in report order.
    pub verdicts: Vec<GadgetVerdict>,
}

impl ValidationOutcome {
    /// At least one reported gadget transmitted transiently on baseline.
    pub fn any_confirmed_on_base(&self) -> bool {
        self.verdicts.iter().any(|v| v.base.confirmed())
    }

    /// Some gadget still transmitted transiently under the strict
    /// configuration — the mitigation failed to suppress it.
    pub fn any_confirmed_under_strict(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| v.strict.is_some_and(|s| s.confirmed()))
    }
}

/// Cross-validate a static [`Report`](nda_analyze::Report) against the
/// simulator: run every reported gadget under `base_cfg` (expected to
/// leak) and, when it confirms, re-run under `strict_cfg` with a budget
/// calibrated from the baseline confirmation cycle (4× plus slack, so
/// protection overhead cannot masquerade as suppression). The strict
/// check is only meaningful for NDA-policy variants — InvisiSpec still
/// *issues* shadowed loads, it hides their side effects, so its runs
/// would spuriously "confirm" here.
pub fn validate_report(
    p: &Program,
    report: &nda_analyze::Report,
    base_cfg: &SimConfig,
    strict_cfg: &SimConfig,
    max_cycles: u64,
) -> ValidationOutcome {
    let mut out = ValidationOutcome::default();
    for g in &report.gadgets {
        let base = run_gadget(p, g.source_pc, g.sink_pc, *base_cfg, max_cycles);
        let strict = base.confirm_cycle.map(|c| {
            let budget = (c.saturating_mul(4) + 20_000).min(max_cycles);
            run_gadget(p, g.source_pc, g.sink_pc, *strict_cfg, budget)
        });
        out.verdicts.push(GadgetVerdict {
            source_pc: g.source_pc,
            sink_pc: g.sink_pc,
            base,
            strict,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_core::Variant;
    use nda_isa::{Asm, Reg};

    /// Bounds-check-bypass gadget: OOB load at `src`, dependent probe
    /// load at `snk`, bounds check trained taken-in-bounds.
    fn v1_like() -> (Program, usize, usize) {
        let mut a = Asm::new();
        let exit = a.new_label();
        let loop_top = a.new_label();
        a.li(Reg::X9, 0);
        a.bind(loop_top);
        // index = round < 7 ? round & 3 : 64 (out of bounds)
        a.andi(Reg::X26, Reg::X9, 7);
        a.alui(nda_isa::AluOp::Sltu, Reg::X27, Reg::X26, 7);
        a.subi(Reg::X27, Reg::X27, 1); // 0 while training, ~0 on attack
        a.li(Reg::X25, 64);
        a.alu(nda_isa::AluOp::Xor, Reg::X24, Reg::X26, Reg::X25);
        a.alu(nda_isa::AluOp::And, Reg::X24, Reg::X24, Reg::X27);
        a.alu(nda_isa::AluOp::Xor, Reg::X2, Reg::X26, Reg::X24);
        // bounds check on a flushed size cell: long window
        a.li(Reg::X3, 0x9000);
        a.clflush(Reg::X3, 0);
        a.ld8(Reg::X4, Reg::X3, 0);
        a.bgeu(Reg::X2, Reg::X4, exit);
        a.li(Reg::X5, 0x8000);
        a.add(Reg::X5, Reg::X5, Reg::X2);
        let src = a.here_label();
        a.ld1(Reg::X6, Reg::X5, 0); // source: array[x]
        a.shli(Reg::X6, Reg::X6, 9);
        a.li(Reg::X7, 0xA000);
        a.add(Reg::X7, Reg::X7, Reg::X6);
        let snk = a.here_label();
        a.ld1(Reg::X8, Reg::X7, 0); // sink: probe[v*512]
        a.bind(exit);
        a.addi(Reg::X9, Reg::X9, 1);
        a.li(Reg::X26, 16);
        a.bltu(Reg::X9, Reg::X26, loop_top);
        a.halt();
        let src = a.label_position(src).unwrap();
        let snk = a.label_position(snk).unwrap();
        let mut p = a.assemble().unwrap();
        p.data.push(nda_isa::DataInit {
            addr: 0x9000,
            bytes: 8u64.to_le_bytes().to_vec(),
        });
        (p, src, snk)
    }

    #[test]
    fn confirms_transient_transmit_on_base_ooo() {
        let (p, src, snk) = v1_like();
        let check = run_gadget(
            &p,
            src,
            snk,
            SimConfig::for_variant(Variant::Ooo),
            2_000_000,
        );
        assert!(
            check.confirmed(),
            "v1-like gadget must confirm on Base: {check:?}"
        );
    }

    #[test]
    fn strict_nda_suppresses_the_same_gadget() {
        let (p, src, snk) = v1_like();
        let check = run_gadget(
            &p,
            src,
            snk,
            SimConfig::for_variant(Variant::FullProtection),
            2_000_000,
        );
        assert!(
            !check.confirmed(),
            "FullProtection must not transmit transiently: {check:?}"
        );
        assert!(check.halted, "program still runs to completion");
    }

    #[test]
    fn committed_transmits_do_not_count() {
        // In-bounds only: the "sink" load executes architecturally every
        // round and commits; no transient confirmation.
        let mut a = Asm::new();
        let top = a.new_label();
        a.li(Reg::X9, 0);
        a.bind(top);
        let src = a.here_label();
        a.ld1(Reg::X6, Reg::X9, 0x8000);
        a.shli(Reg::X6, Reg::X6, 9);
        let snk = a.here_label();
        a.ld1(Reg::X8, Reg::X6, 0);
        a.addi(Reg::X9, Reg::X9, 1);
        a.li(Reg::X26, 8);
        a.bltu(Reg::X9, Reg::X26, top);
        a.halt();
        let src = a.label_position(src).unwrap();
        let snk = a.label_position(snk).unwrap();
        let p = a.assemble().unwrap();
        let check = run_gadget(
            &p,
            src,
            snk,
            SimConfig::for_variant(Variant::Ooo),
            1_000_000,
        );
        assert!(check.halted);
        assert!(
            !check.confirmed(),
            "architectural transmits are not transient leaks: {check:?}"
        );
    }
}
