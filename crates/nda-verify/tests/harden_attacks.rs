//! End-to-end proof obligations for the mitigation synthesizer, over the
//! full attack suite: hardening each attack's victim program with the
//! default pass set must
//!
//! 1. converge to **zero static gadgets** (no residuals),
//! 2. stay **architecturally equivalent** to the original on the
//!    reference interpreter, modulo code-pointer relocation,
//! 3. leave every originally-confirmed gadget **dynamically dead** on the
//!    unprotected Base OoO core — the same taint-observer confirmation
//!    path that proves the attacks fire in the first place.
//!
//! This is the software-mitigation analogue of
//! `differential_gadgets.rs`: there the *hardware* variants kill the
//! leak on the unmodified program; here the *rewritten program* kills it
//! on unmodified hardware.

use nda_analyze::{analyze, harden, AnalyzeConfig, HardenConfig};
use nda_attacks::AttackKind;
use nda_core::{SimConfig, Variant};
use nda_verify::{equivalent_modulo_reloc, gadgets_dead_on};

/// Generous per-gadget baseline budget (runs exit at first confirmation).
const MAX_CYCLES: u64 = 20_000_000;
/// Interpreter budget: attacks run a few thousand instructions.
const MAX_STEPS: u64 = 2_000_000;

#[test]
fn hardened_attacks_are_clean_equivalent_and_dead() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let spec = kind.secret_spec();
        let report = analyze(&p, &spec, &AnalyzeConfig::default());
        assert!(!report.gadgets.is_empty(), "{kind}: nothing to harden");

        let out = harden(&p, &spec, &HardenConfig::default());
        assert!(
            out.clean(),
            "{kind}: hardening left residual gadgets: {:#?}",
            out.residual
        );
        assert!(!out.fixes.is_empty(), "{kind}: clean without any fix?");

        equivalent_modulo_reloc(&p, &out.program, &out.map, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{kind}: hardened program diverged: {e}"));

        let mut cfg = SimConfig::for_variant(Variant::Ooo);
        kind.tweak_config(&mut cfg);
        let verdicts = gadgets_dead_on(&p, &out, &report, &spec, &cfg, MAX_CYCLES);
        assert!(
            verdicts.iter().any(|v| v.original_confirm.is_some()),
            "{kind}: no original gadget confirmed on Base OoO\n{verdicts:#?}"
        );
        assert!(
            verdicts.iter().all(|v| v.hardened_confirm.is_none()),
            "{kind}: a gadget still fires after hardening\n{verdicts:#?}"
        );
    }
}
