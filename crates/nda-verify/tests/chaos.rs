//! Chaos-harness property tests for the fault-isolated sweep.
//!
//! Host-level fault injection (seeded panics, starved jobs, corrupted
//! journal records) against the real sweep machinery, asserting the
//! robustness contract end to end:
//!
//! 1. a chaotic sweep always terminates, and every cell that completed
//!    is bit-identical to the clean run (fault isolation never perturbs
//!    siblings);
//! 2. retries only heal — the failed-cell set with retries is a subset
//!    of the failed-cell set without;
//! 3. a journal written under chaos, resumed with chaos off, converges
//!    to exactly the clean-run results;
//! 4. a journal truncated mid-run (the kill -9 case: any prefix of the
//!    atomic per-cell records) resumes to exactly the clean-run results;
//! 5. corrupted records (torn write, bit rot) are quarantined, re-run,
//!    and the sweep still converges.

use nda_bench::journal::fingerprint;
use nda_bench::{
    silence_contained_panics, sweep, sweep_journaled, sweep_meta, CellStatus, Chaos, Journal,
    SweepConfig, SweepResults,
};
use nda_core::Variant;
use nda_verify::chaos::{corrupt_bitflip, corrupt_truncate};
use nda_workloads::Workload;
use std::path::PathBuf;

fn workloads() -> &'static [Workload] {
    &nda_workloads::all()[..2]
}

fn variants() -> Vec<Variant> {
    vec![Variant::Ooo, Variant::StrictBr, Variant::InOrder]
}

fn cfg() -> SweepConfig {
    SweepConfig {
        samples: 2,
        iters: 6,
        jobs: 2,
        backoff_ms: 0,
        ..SweepConfig::default()
    }
}

/// Per-cell fingerprints of every completed run, in sample order.
fn cell_prints(r: &SweepResults, w: usize, v: usize) -> Vec<String> {
    r.cell(w, v).runs.iter().map(fingerprint).collect()
}

fn assert_identical(a: &SweepResults, b: &SweepResults) {
    for w in 0..a.workloads.len() {
        for v in 0..a.variants.len() {
            assert_eq!(a.status(w, v), b.status(w, v), "status of cell ({w},{v})");
            assert_eq!(
                cell_prints(a, w, v),
                cell_prints(b, w, v),
                "runs of cell ({w},{v})"
            );
        }
    }
}

fn failed_cells(r: &SweepResults) -> Vec<(usize, usize)> {
    r.degraded()
        .into_iter()
        .filter(|(_, _, st)| *st == CellStatus::Failed)
        .map(|(w, v, _)| (w, v))
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nda-chaos-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn chaotic_sweep_terminates_and_never_perturbs_surviving_cells() {
    silence_contained_panics();
    let (wl, vs) = (workloads(), variants());
    let clean = sweep(wl, &vs, cfg());
    assert!(clean.all_ok());
    let chaotic = sweep(
        wl,
        &vs,
        SweepConfig {
            retries: 0,
            chaos: Some(Chaos {
                seed: 11,
                panic_pct: 40,
                slow_pct: 20,
                target: None,
            }),
            ..cfg()
        },
    );
    // With 12 jobs at 60% combined fault rate, some cells must degrade —
    // and the sweep still returned (termination) with every cell present.
    assert!(!chaotic.all_ok(), "chaos at 60% should degrade something");
    assert_eq!(chaotic.cells.len(), clean.cells.len());
    for w in 0..wl.len() {
        for v in 0..vs.len() {
            if chaotic.status(w, v) == CellStatus::Ok {
                assert_eq!(
                    cell_prints(&chaotic, w, v),
                    cell_prints(&clean, w, v),
                    "surviving cell ({w},{v}) diverged from the clean run"
                );
            }
        }
    }
}

#[test]
fn retries_only_heal() {
    silence_contained_panics();
    let (wl, vs) = (workloads(), variants());
    let chaos = Some(Chaos {
        seed: 23,
        panic_pct: 50,
        slow_pct: 0,
        target: None,
    });
    let without = sweep(
        wl,
        &vs,
        SweepConfig {
            retries: 0,
            chaos,
            ..cfg()
        },
    );
    let with = sweep(
        wl,
        &vs,
        SweepConfig {
            retries: 3,
            chaos,
            ..cfg()
        },
    );
    let f0 = failed_cells(&without);
    let f3 = failed_cells(&with);
    assert!(!f0.is_empty(), "50% panic rate should fail something");
    for cell in &f3 {
        assert!(
            f0.contains(cell),
            "cell {cell:?} failed with retries but not without"
        );
    }
    assert!(
        f3.len() < f0.len(),
        "3 independent re-rolls at 50% should heal at least one of {} cells",
        f0.len()
    );
}

#[test]
fn chaos_journal_resumed_clean_converges_to_clean_run() {
    silence_contained_panics();
    let (wl, vs) = (workloads(), variants());
    let clean = sweep(wl, &vs, cfg());
    let dir = tmp_dir("chaos-resume");
    let meta = sweep_meta(wl, &vs, &cfg());

    // First pass: chaos on, journaled. Some cells fail and are recorded
    // as such.
    let (j, state) = Journal::open(&dir, &meta).unwrap();
    let chaotic = sweep_journaled(
        wl,
        &vs,
        SweepConfig {
            retries: 0,
            chaos: Some(Chaos {
                seed: 5,
                panic_pct: 40,
                slow_pct: 20,
                target: None,
            }),
            ..cfg()
        },
        Some((&j, &state)),
    );
    assert!(!chaotic.all_ok());

    // Second pass: same journal, chaos off. Only the missing/failed
    // cells re-run; the result must equal the uninterrupted clean sweep.
    let (j, state) = Journal::open(&dir, &meta).unwrap();
    assert!(
        !state.ok.is_empty(),
        "first pass should have journaled Ok cells"
    );
    assert!(
        !state.failed.is_empty(),
        "first pass should have journaled failures"
    );
    let resumed = sweep_journaled(wl, &vs, cfg(), Some((&j, &state)));
    assert!(resumed.all_ok());
    assert_identical(&resumed, &clean);
}

#[test]
fn journal_prefix_after_simulated_kill_resumes_to_clean_run() {
    let (wl, vs) = (workloads(), variants());
    let clean = sweep(wl, &vs, cfg());
    let full_dir = tmp_dir("kill-full");
    let cut_dir = tmp_dir("kill-cut");
    let meta = sweep_meta(wl, &vs, &cfg());

    let (j, state) = Journal::open(&full_dir, &meta).unwrap();
    sweep_journaled(wl, &vs, cfg(), Some((&j, &state)));

    // Records are written atomically as each cell finishes, so a kill at
    // any point leaves some subset of them. Simulate one by copying the
    // meta and every other cell record.
    std::fs::copy(full_dir.join("meta.rec"), cut_dir.join("meta.rec")).unwrap();
    let mut recs: Vec<_> = std::fs::read_dir(&full_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with('c') && n.ends_with(".rec"))
        .collect();
    recs.sort();
    assert_eq!(recs.len(), wl.len() * vs.len() * 2);
    for name in recs.iter().step_by(2) {
        std::fs::copy(full_dir.join(name), cut_dir.join(name)).unwrap();
    }

    let (j, state) = Journal::open(&cut_dir, &meta).unwrap();
    assert_eq!(state.ok.len(), recs.len() / 2);
    let resumed = sweep_journaled(wl, &vs, cfg(), Some((&j, &state)));
    assert!(resumed.all_ok());
    assert_identical(&resumed, &clean);
}

#[test]
fn corrupted_records_are_quarantined_and_rerun_to_clean_results() {
    let (wl, vs) = (workloads(), variants());
    let clean = sweep(wl, &vs, cfg());
    let dir = tmp_dir("corrupt");
    let meta = sweep_meta(wl, &vs, &cfg());

    let (j, state) = Journal::open(&dir, &meta).unwrap();
    sweep_journaled(wl, &vs, cfg(), Some((&j, &state)));

    // Torn write on one record, bit rot on another.
    corrupt_truncate(&dir.join("c0-0-0.rec"), 10).unwrap();
    corrupt_bitflip(&dir.join("c1-2-1.rec"), 99).unwrap();

    let (j, state) = Journal::open(&dir, &meta).unwrap();
    assert_eq!(state.quarantined.len(), 2, "{:?}", state.quarantined);
    for q in &state.quarantined {
        assert!(
            q.exists(),
            "quarantined record {} must be kept",
            q.display()
        );
    }
    assert!(!state.ok.contains_key(&(0, 0, 0)));
    assert!(!state.ok.contains_key(&(1, 2, 1)));

    let resumed = sweep_journaled(wl, &vs, cfg(), Some((&j, &state)));
    assert!(resumed.all_ok());
    assert_identical(&resumed, &clean);
}
