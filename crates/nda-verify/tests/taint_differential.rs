//! Differential taint cross-validation: in-pipeline taint gate × replay
//! observer.
//!
//! The STT/ShadowBinding variants carry taint *inside* the pipeline
//! (per-physical-register bits, gate at issue); `nda-verify`'s
//! [`TaintObserver`] reconstructs taint *outside* it, by replaying the
//! drained trace through an architectural-register shadow. These are two
//! independent implementations of the same dataflow question, so for
//! every attack × taint-variant pair they must agree on the withheld
//! sinks:
//!
//! * attack expected blocked → the pipeline's `TaintGated` events name
//!   the analyzer-reported sink pc (the hardware really withheld the
//!   transmit), and the observer's replay never confirms a transient
//!   transmission;
//! * attack expected *not* blocked → the observer still confirms within a
//!   budget calibrated from the Base OoO confirmation cycle (no false
//!   security from the taint machinery's timing side effects).
//!
//! A disagreement in either direction means one of the two taint
//! implementations has drifted from the other — exactly the bug class
//! this suite exists to catch.

use nda_analyze::{analyze, AnalyzeConfig};
use nda_attacks::AttackKind;
use nda_core::{OooCore, SimConfig, Variant};
use nda_verify::TaintObserver;
use std::collections::BTreeSet;

/// Generous baseline budget; base runs exit at first confirmation.
const MAX_CYCLES: u64 = 20_000_000;

/// Cycles between trace drains (bounds observer memory).
const DRAIN_EVERY: u64 = 4096;

const TAINT_VARIANTS: [Variant; 4] = [
    Variant::SttSpectre,
    Variant::SttFuturistic,
    Variant::ShadowBindingEager,
    Variant::ShadowBindingLazy,
];

struct ObservedRun {
    confirm_cycle: Option<u64>,
    /// Every pc the pipeline reported withheld through its taint gate.
    gated_pcs: BTreeSet<usize>,
}

/// Like `nda_verify::run_gadget`, but keeps the observer so the test can
/// compare the pipeline's gate events against the replayed taint flow.
/// Does *not* stop at first confirmation: the gate-event record must
/// cover the whole run.
fn observe_gadget(
    p: &nda_isa::Program,
    source_pc: usize,
    sink_pc: usize,
    cfg: SimConfig,
    max_cycles: u64,
) -> ObservedRun {
    let mut core = OooCore::new(cfg, p);
    core.enable_trace();
    let mut obs = TaintObserver::new(p, source_pc, sink_pc);
    while !core.halted() && core.cycle() < max_cycles {
        let until = (core.cycle() + DRAIN_EVERY).min(max_cycles);
        while !core.halted() && core.cycle() < until {
            core.step_cycle();
        }
        obs.process(&core.take_trace_events());
    }
    ObservedRun {
        confirm_cycle: obs.confirmed_at,
        gated_pcs: obs.gated_pcs,
    }
}

#[test]
fn pipeline_gate_and_replay_observer_agree_per_attack_and_variant() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        assert!(!report.gadgets.is_empty(), "{kind}: no gadgets reported");

        // Calibrate on Base OoO: find the first gadget that confirms and
        // remember its confirmation cycle.
        let mut base_cfg = SimConfig::for_variant(Variant::Ooo);
        kind.tweak_config(&mut base_cfg);
        let (gadget, base_cycle) = report
            .gadgets
            .iter()
            .find_map(|g| {
                nda_verify::run_gadget(&p, g.source_pc, g.sink_pc, base_cfg, MAX_CYCLES)
                    .confirm_cycle
                    .map(|c| (g, c))
            })
            .unwrap_or_else(|| panic!("{kind}: no reported gadget confirms on Base OoO"));
        // Same 4×-plus-slack calibration as `validate_report`, so
        // protection overhead cannot masquerade as suppression.
        let budget = (base_cycle.saturating_mul(4) + 20_000).min(MAX_CYCLES);

        for v in TAINT_VARIANTS {
            let mut cfg = SimConfig::for_variant(v);
            cfg.check_invariants = true;
            kind.tweak_config(&mut cfg);
            let run = observe_gadget(&p, gadget.source_pc, gadget.sink_pc, cfg, budget);
            if kind.expected_blocked(v) {
                assert!(
                    run.confirm_cycle.is_none(),
                    "{kind} on {v}: observer replay confirmed a transient transmit \
                     at cycle {:?} on a variant that must block it",
                    run.confirm_cycle
                );
                assert!(
                    run.gated_pcs.contains(&gadget.sink_pc),
                    "{kind} on {v}: the pipeline never taint-gated the reported sink \
                     pc {} — it was suppressed by timing accident, not by the gate \
                     (gated pcs: {:?})",
                    gadget.sink_pc,
                    run.gated_pcs
                );
            } else {
                assert!(
                    run.confirm_cycle.is_some(),
                    "{kind} on {v}: expected *not* blocked, but the observer saw no \
                     transient transmit within {budget} cycles (base confirmed at \
                     {base_cycle}) — false security from the taint machinery",
                );
            }
        }
    }
}

/// The gate only ever withholds *transmit* instructions: every pc the
/// pipeline reports as taint-gated must decode to a load, store, flush,
/// or indirect control transfer — never an ALU op or a conditional
/// branch (the documented implicit-channel gap).
#[test]
fn gated_pcs_are_always_transmitters_and_never_conditional_branches() {
    use nda_isa::Inst;
    let mut saw_any = false;
    for kind in AttackKind::all() {
        let p = kind.program(42);
        for v in TAINT_VARIANTS {
            let mut cfg = SimConfig::for_variant(v);
            kind.tweak_config(&mut cfg);
            // Source/sink don't matter for gate events; pick pc 0.
            let run = observe_gadget(&p, 0, 0, cfg, MAX_CYCLES);
            for &pc in &run.gated_pcs {
                saw_any = true;
                let inst = p.insts[pc];
                assert!(
                    matches!(
                        inst,
                        Inst::Load { .. }
                            | Inst::Store { .. }
                            | Inst::ClFlush { .. }
                            | Inst::JmpInd { .. }
                            | Inst::CallInd { .. }
                            | Inst::Ret
                    ),
                    "{kind} on {v}: pc {pc} ({inst:?}) was taint-gated but is not a \
                     transmit instruction",
                );
            }
        }
    }
    assert!(saw_any, "no attack ever tripped the taint gate");
}
