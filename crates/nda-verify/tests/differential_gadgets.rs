//! Differential cross-validation: static analyzer × cycle-level simulator.
//!
//! For every attack in the suite the static analyzer reports gadgets; the
//! dynamic taint tracker then has to observe at least one of them
//! actually transmit tainted data on a squashed path on the Base OoO
//! core, and observe *none* of them do so under Full Protection within a
//! budget calibrated from the baseline confirmation cycle. This closes
//! the loop between the two halves of the reproduction: the analyzer's
//! claims are executable, and the mitigation's claims are checked against
//! the exact gadgets the analyzer found.

use nda_analyze::{analyze, AnalyzeConfig};
use nda_attacks::AttackKind;
use nda_core::{SimConfig, Variant};
use nda_verify::validate_report;

/// Generous per-gadget baseline budget; runs exit at first confirmation,
/// which lands within the first attack round in practice.
const MAX_CYCLES: u64 = 20_000_000;

#[test]
fn reported_gadgets_confirm_on_base_and_die_under_full_protection() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        assert!(!report.gadgets.is_empty(), "{kind}: no gadgets to validate");

        let mut base_cfg = SimConfig::for_variant(Variant::Ooo);
        kind.tweak_config(&mut base_cfg);
        let mut strict_cfg = SimConfig::for_variant(Variant::FullProtection);
        kind.tweak_config(&mut strict_cfg);

        let outcome = validate_report(&p, &report, &base_cfg, &strict_cfg, MAX_CYCLES);
        assert!(
            outcome.any_confirmed_on_base(),
            "{kind}: no reported gadget transmitted transiently on Base OoO\n{:#?}",
            outcome.verdicts
        );
        assert!(
            !outcome.any_confirmed_under_strict(),
            "{kind}: a gadget still transmitted under Full Protection\n{:#?}",
            outcome.verdicts
        );
    }
}

/// The same confirm-on-Base / die-under-protection loop, with the
/// "strict" side played by each taint variant that claims the attack:
/// for every taint-reachable (attack, variant) pair the analyzer's
/// gadgets must confirm on Base OoO and never transmit transiently under
/// the taint variant — zero false negatives, dynamically. The pairs the
/// taint family deliberately does *not* claim (GPR-resident secrets,
/// contention channels) are exercised the other way round in
/// `taint_differential.rs`.
#[test]
fn taint_reachable_gadgets_confirm_on_base_and_die_under_their_taint_variant() {
    let taint_variants = [
        Variant::SttSpectre,
        Variant::SttFuturistic,
        Variant::ShadowBindingEager,
        Variant::ShadowBindingLazy,
    ];
    for kind in AttackKind::all() {
        let claimed: Vec<Variant> = taint_variants
            .into_iter()
            .filter(|&v| kind.expected_blocked(v))
            .collect();
        if claimed.is_empty() {
            continue;
        }
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        let mut base_cfg = SimConfig::for_variant(Variant::Ooo);
        kind.tweak_config(&mut base_cfg);
        for v in claimed {
            let mut cfg = SimConfig::for_variant(v);
            kind.tweak_config(&mut cfg);
            let outcome = validate_report(&p, &report, &base_cfg, &cfg, MAX_CYCLES);
            assert!(
                outcome.any_confirmed_on_base(),
                "{kind}: no gadget confirmed on Base OoO\n{:#?}",
                outcome.verdicts
            );
            assert!(
                !outcome.any_confirmed_under_strict(),
                "{kind}: a gadget still transmitted under {} — false negative\n{:#?}",
                v.name(),
                outcome.verdicts
            );
        }
    }
}
