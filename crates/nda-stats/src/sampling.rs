//! SMARTS-style sample aggregation.
//!
//! The paper obtains statistically-confident CPI from sampled simulation
//! (SMARTS, Wunderlich et al.) and plots 95 % confidence intervals in
//! Fig 7. We run each workload as several independently-seeded samples and
//! aggregate them here with a Student-t interval.

/// Mean and 95 % confidence half-interval of a set of sample measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (`mean ± ci95`).
    pub ci95: f64,
    /// Number of samples aggregated.
    pub n: usize,
}

/// Two-sided 97.5 % Student-t quantiles for df = 1..=30; beyond 30 the
/// normal quantile 1.96 is used.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

impl Sample {
    /// Aggregate raw measurements.
    ///
    /// A single measurement yields a zero-width interval (there is no
    /// variance estimate); an empty slice yields a NaN mean.
    pub fn from_values(values: &[f64]) -> Sample {
        let n = values.len();
        if n == 0 {
            return Sample {
                mean: f64::NAN,
                ci95: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Sample { mean, ci95: 0.0, n };
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0);
        let se = (var / n as f64).sqrt();
        let df = n - 1;
        let t = if df <= 30 { T_975[df - 1] } else { 1.96 };
        Sample {
            mean,
            ci95: t * se,
            n,
        }
    }

    /// `true` if `other`'s mean lies outside this interval (a coarse
    /// "significantly different" check used by the leak detectors).
    pub fn excludes(&self, value: f64) -> bool {
        (value - self.mean).abs() > self.ci95
    }

    /// Relative half-interval `ci95 / |mean|` — the SMARTS convergence
    /// metric (`0.05` means the mean is known to ±5 % at 95 % confidence).
    /// NaN when the mean is zero or no samples were aggregated.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            f64::NAN
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

/// Geometric mean; empty input yields NaN.
///
/// The paper reports MLP/ILP as geometric means across benchmarks
/// (Fig 9b-c).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_have_zero_interval() {
        let s = Sample::from_values(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn known_interval() {
        // Values 1..5: mean 3, sd sqrt(2.5), se sqrt(0.5), t(4 df)=2.776.
        let s = Sample::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        let expected = 2.776 * (2.5f64 / 5.0).sqrt();
        assert!((s.ci95 - expected).abs() < 1e-9, "{} vs {expected}", s.ci95);
    }

    #[test]
    fn single_sample() {
        let s = Sample::from_values(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn empty_is_nan() {
        assert!(Sample::from_values(&[]).mean.is_nan());
    }

    #[test]
    fn excludes_checks_interval() {
        let s = Sample::from_values(&[10.0, 10.2, 9.8, 10.1, 9.9]);
        assert!(s.excludes(12.0));
        assert!(!s.excludes(10.05));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn large_n_uses_normal_quantile() {
        // 100 samples → df = 99 > 30, so the interval must use the normal
        // quantile 1.96 exactly, not a Student-t entry.
        let vals: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let s = Sample::from_values(&vals);
        let mean = vals.iter().sum::<f64>() / 100.0;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 99.0;
        let se = (var / 100.0).sqrt();
        assert_eq!(s.n, 100);
        assert!(
            (s.ci95 - 1.96 * se).abs() < 1e-12,
            "{} vs {}",
            s.ci95,
            1.96 * se
        );
    }

    #[test]
    fn boundary_df_30_vs_31_quantiles() {
        // n = 31 (df 30) is the last Student-t row; n = 32 (df 31) is the
        // first normal-quantile use. Same variance pattern for both so the
        // ratio of intervals isolates the quantile switch.
        let v31: Vec<f64> = (0..31).map(|i| (i % 2) as f64).collect();
        let v32: Vec<f64> = (0..32).map(|i| (i % 2) as f64).collect();
        let quantile = |vals: &[f64]| {
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            let se = (var / n).sqrt();
            Sample::from_values(vals).ci95 / se
        };
        assert!((quantile(&v31) - 2.042).abs() < 1e-9);
        assert!((quantile(&v32) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn relative_error_is_ci_over_mean() {
        let s = Sample::from_values(&[10.0, 10.2, 9.8, 10.1, 9.9]);
        assert!((s.relative_error() - s.ci95 / s.mean).abs() < 1e-15);
        assert!(Sample::from_values(&[0.0, 0.0]).relative_error().is_nan());
        assert!(Sample::from_values(&[]).relative_error().is_nan());
    }
}
