//! Canonical metric names exported by the `nda-serve` request engine.
//!
//! The server's own health counters live in the same dotted-path
//! namespace as the simulator metrics (`sim.*`, `mem.*`, ...) under the
//! `serve.` prefix, so a `stats` request returns one ordinary
//! [`MetricsRegistry`](crate::MetricsRegistry) document that diffs
//! cleanly across runs. The constants here are the single source of
//! truth: the engine registers under them and the tests/bench assert on
//! them — a typo on either side fails to compile or fails the name test
//! below instead of silently reading a missing counter as zero.

/// Requests accepted (all ops, including `stats`; malformed lines that
/// never parsed into a request are *not* counted).
pub const REQUESTS: &str = "serve.requests";

/// Requests answered from the in-memory outcome memo — no job was
/// enqueued, no simulation ran.
pub const CACHE_HITS: &str = "serve.cache_hits";

/// Run cells answered from the persistent on-disk result store (a job
/// ran, but the simulation itself was skipped).
pub const STORE_HITS: &str = "serve.store_hits";

/// Requests that arrived while an identical request was in flight and
/// were attached as waiters to the owner's job instead of enqueueing a
/// duplicate. N concurrent identical requests count N−1 here.
pub const DEDUP_ATTACHED: &str = "serve.dedup_attached";

/// Jobs dequeued and executed by shard workers (one per owned request,
/// regardless of outcome).
pub const JOBS_EXECUTED: &str = "serve.jobs_executed";

/// Detailed simulations actually executed by run cells — the number the
/// dedup/caching machinery exists to minimise. Store hits and memo hits
/// do not count; a run request over V variants counts up to V.
pub const SIMS_EXECUTED: &str = "serve.sims_executed";

/// Jobs whose outcome was an error response (`"ok":false`).
pub const JOBS_FAILED: &str = "serve.jobs_failed";

/// Jobs (or run cells) whose worker panicked; the panic was contained
/// and degraded to an error on that response only.
pub const JOBS_PANICKED: &str = "serve.jobs_panicked";

/// End-to-end request latency in microseconds (submit → response
/// written), recorded by the transports as a log2-bucket histogram.
pub const LATENCY_US: &str = "serve.latency_us";

/// Jobs executed by shard `n`: `serve.shard<n>.jobs`. Together with
/// [`JOBS_EXECUTED`] this gives the shard-occupancy distribution (cache
/// affinity means a skewed distribution is expected under repeated
/// keys, not a bug).
pub fn shard_jobs(shard: usize) -> String {
    format!("serve.shard{shard}.jobs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_prefixed() {
        let names = [
            REQUESTS,
            CACHE_HITS,
            STORE_HITS,
            DEDUP_ATTACHED,
            JOBS_EXECUTED,
            SIMS_EXECUTED,
            JOBS_FAILED,
            JOBS_PANICKED,
            LATENCY_US,
        ];
        for (i, a) in names.iter().enumerate() {
            assert!(a.starts_with("serve."), "{a} missing serve. prefix");
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate metric name");
            }
        }
        assert_eq!(shard_jobs(3), "serve.shard3.jobs");
    }
}
