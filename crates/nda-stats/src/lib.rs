//! # Statistics for the NDA reproduction
//!
//! * [`SimStats`] — the per-run counter block every core model fills:
//!   cycles, commits, the four-way cycle classification of Fig 9a,
//!   dispatch→issue latency (Fig 9d), issue-based ILP (Fig 9c) and the
//!   broadcast-deferral counters unique to NDA.
//! * [`sampling`] — SMARTS-style aggregation: the paper reports 95 %
//!   confidence intervals over sampled execution; we run each workload as
//!   several independently-seeded samples and aggregate with a
//!   t-distribution interval.

#![forbid(unsafe_code)]

pub mod counters;
pub mod sampling;

pub use counters::{CycleClass, SimStats};
pub use sampling::{geomean, Sample};
