//! # Statistics for the NDA reproduction
//!
//! * [`SimStats`] — the per-run counter block every core model fills:
//!   cycles, commits, the top-down CPI stack ([`CpiStack`]) refining the
//!   four-way Fig 9a classification, dispatch→issue latency (Fig 9d),
//!   issue-based ILP (Fig 9c) and the broadcast-deferral counters unique
//!   to NDA.
//! * [`registry`] — the typed metrics registry: named counters and
//!   fixed-log2-bucket histograms with stable names and JSON export, the
//!   document format of `nda-sim sweep --metrics-out`.
//! * [`sampling`] — SMARTS-style aggregation: the paper reports 95 %
//!   confidence intervals over sampled execution; we run each workload as
//!   several independently-seeded samples and aggregate with a
//!   t-distribution interval.
//! * [`serve_names`] — the canonical `serve.*` metric names the
//!   `nda-serve` request engine registers its health counters under.

#![forbid(unsafe_code)]

pub mod counters;
pub mod registry;
pub mod sampling;
pub mod serve_names;

pub use counters::{CpiClass, CpiStack, CycleClass, SimStats};
pub use registry::{escape_json, Hist, Metric, MetricsRegistry, HIST_BUCKETS};
pub use sampling::{geomean, Sample};
