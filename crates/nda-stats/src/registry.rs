//! Typed metrics registry: named counters and fixed-log2-bucket
//! histograms with stable names and hand-rolled JSON serialization.
//!
//! The registry is the export surface of the observability layer: every
//! counter block ([`crate::SimStats`], `nda_mem::MemStats`) knows how to
//! dump itself into a [`MetricsRegistry`], and `nda-sim sweep
//! --metrics-out` emits one registry document per (workload, variant)
//! cell. Names are dotted paths (`sim.cycles`, `cpi_stack.nda-delay`,
//! `mem.l1d.misses`) and iteration order is always lexicographic, so two
//! documents from the same simulator version diff cleanly.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket `i`
/// (1..=15) holds values in `[2^(i-1), 2^i)`, bucket 16 is the overflow
/// bucket for values `>= 2^15`.
pub const HIST_BUCKETS: usize = 17;

/// A fixed-size log2-bucket histogram.
///
/// The bucket array is a fixed-size `[u64; 17]` so the type stays `Copy`
/// and can be embedded directly in per-run counter blocks (which are
/// snapshotted wholesale by the pipeline watchdog and the sampled-run
/// machinery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hist {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Log2 buckets (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    /// A fresh, empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The half-open value range `[lo, hi)` covered by bucket `i`
    /// (`hi = u64::MAX` for the overflow bucket).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ if i < HIST_BUCKETS - 1 => (1 << (i - 1), 1 << i),
            _ => (1 << (HIST_BUCKETS - 2), u64::MAX),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[Hist::bucket_index(v)] += 1;
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Accumulate another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A log2-bucket histogram.
    Histogram(Hist),
}

/// A named collection of metrics with stable (lexicographic) iteration
/// order and JSON export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Set (or overwrite) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_string(), Metric::Counter(value));
    }

    /// Add to a counter, creating it at zero first if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Counter(v)) => *v += delta,
            _ => {
                self.metrics
                    .insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Set (or overwrite) a histogram.
    pub fn histogram(&mut self, name: &str, h: Hist) {
        self.metrics.insert(name.to_string(), Metric::Histogram(h));
    }

    /// Look up a counter by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a histogram by name.
    pub fn get_histogram(&self, name: &str) -> Option<&Hist> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate metrics in stable lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one: counters add, histograms
    /// accumulate, names only in `other` are copied over.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, m) in other.iter() {
            match (self.metrics.get_mut(name), m) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Histogram(a)), Metric::Histogram(b)) => a.merge(b),
                _ => {
                    self.metrics.insert(name.to_string(), *m);
                }
            }
        }
    }

    /// Serialize to a JSON object:
    /// `{"counters":{...},"histograms":{"name":{"count":..,"sum":..,"buckets":[..]}}}`.
    /// Key order is lexicographic and therefore stable across runs.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut hists = String::new();
        for (name, m) in self.iter() {
            match m {
                Metric::Counter(v) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    counters.push_str(&format!("{}:{v}", escape_json(name)));
                }
                Metric::Histogram(h) => {
                    if !hists.is_empty() {
                        hists.push(',');
                    }
                    let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                    hists.push_str(&format!(
                        "{}:{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        escape_json(name),
                        h.count,
                        h.sum,
                        buckets.join(",")
                    ));
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"histograms\":{{{hists}}}}}")
    }
}

/// JSON-escape a string (quotes included in the output).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(Hist::bucket_index(0), 0);
        assert_eq!(Hist::bucket_index(1), 1);
        assert_eq!(Hist::bucket_index(2), 2);
        assert_eq!(Hist::bucket_index(3), 2);
        assert_eq!(Hist::bucket_index(4), 3);
        assert_eq!(Hist::bucket_index(1 << 14), 15);
        assert_eq!(Hist::bucket_index(1 << 15), 16);
        assert_eq!(Hist::bucket_index(u64::MAX), 16);
    }

    #[test]
    fn hist_observe_and_mean() {
        let mut h = Hist::new();
        assert!(h.is_empty());
        h.observe(0);
        h.observe(3);
        h.observe(9);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 12);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1); // 3 lands in [2,4)
        assert_eq!(h.buckets[4], 1); // 9 lands in [8,16)
    }

    #[test]
    fn hist_bucket_ranges_cover_indices() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, 1 << 15, u64::MAX / 2] {
            let i = Hist::bucket_index(v);
            let (lo, hi) = Hist::bucket_range(i);
            assert!(lo <= v && v < hi.max(lo + 1), "v={v} i={i} [{lo},{hi})");
        }
    }

    #[test]
    fn hist_merge_adds() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.observe(1);
        b.observe(2);
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 103);
    }

    #[test]
    fn registry_counters_and_lookup() {
        let mut r = MetricsRegistry::new();
        r.counter("sim.cycles", 100);
        r.add("sim.cycles", 5);
        r.add("sim.squashes", 2);
        assert_eq!(r.get_counter("sim.cycles"), Some(105));
        assert_eq!(r.get_counter("sim.squashes"), Some(2));
        assert_eq!(r.get_counter("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn registry_iterates_in_stable_order() {
        let mut r = MetricsRegistry::new();
        r.counter("z.last", 1);
        r.counter("a.first", 2);
        r.counter("m.middle", 3);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn registry_merge_sums_counters_and_hists() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter("c", 1);
        b.counter("c", 2);
        b.counter("only_b", 7);
        let mut h = Hist::new();
        h.observe(4);
        a.histogram("h", h);
        b.histogram("h", h);
        a.merge(&b);
        assert_eq!(a.get_counter("c"), Some(3));
        assert_eq!(a.get_counter("only_b"), Some(7));
        assert_eq!(a.get_histogram("h").unwrap().count, 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = MetricsRegistry::new();
        r.counter("b", 2);
        r.counter("a", 1);
        let mut h = Hist::new();
        h.observe(1);
        r.histogram("lat", h);
        let j = r.to_json();
        assert!(j.starts_with("{\"counters\":{\"a\":1,\"b\":2}"), "{j}");
        assert!(
            j.contains("\"lat\":{\"count\":1,\"sum\":1,\"buckets\":[0,1,0"),
            "{j}"
        );
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape_json("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape_json("a\nb"), "\"a\\nb\"");
        assert_eq!(escape_json("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_registry_serializes() {
        let r = MetricsRegistry::new();
        assert_eq!(r.to_json(), "{\"counters\":{},\"histograms\":{}}");
        assert!(r.is_empty());
    }
}
