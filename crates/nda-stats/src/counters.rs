//! Per-run simulation counters.

use crate::registry::{Hist, MetricsRegistry};

/// The coarse Fig 9a classification of one simulated cycle:
///
/// * `Commit` — at least one instruction retired this cycle.
/// * `MemoryStall` — the ROB head is an incomplete memory operation.
/// * `BackendStall` — the ROB head is a non-memory operation not yet ready
///   to retire.
/// * `FrontendStall` — the ROB is empty (or the cycle was spent squashing).
///
/// Kept as the aggregate view of [`CpiClass`] (see
/// [`CpiClass::coarse`]): every fine class rolls up into exactly one of
/// these four, so the legacy four-way partition still sums to `cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CycleClass {
    Commit,
    MemoryStall,
    BackendStall,
    FrontendStall,
}

/// Top-down CPI-stack classification of one simulated cycle. Exactly one
/// class is charged per cycle, so the classes partition `cycles` exactly.
///
/// The classes refine the coarse Fig 9a buckets:
///
/// * commit — ≥ 1 instruction retired.
/// * frontend — empty ROB, split into squash-refill (within the
///   redirect-to-dispatch latency of a squash) vs fetch-miss (everything
///   else, dominated by i-cache misses and fetch-buffer drain).
/// * backend — head present but not memory-bound, split by the resource
///   actually refusing progress: IQ full, ROB full, LSQ full, or plain
///   execution latency.
/// * memory — the head is an in-flight memory operation, split by the
///   level that serviced (or is servicing) its access.
/// * nda-delay — the cycle was lost *to the defense itself*: the oldest
///   non-issued micro-op is ready except for tag broadcasts the NDA
///   policy is deferring (or the head is complete-but-unbroadcast and
///   withheld). Zero by construction on Base OoO and In-Order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiClass {
    /// ≥ 1 instruction retired this cycle.
    Commit,
    /// Empty ROB: fetch-limited (i-cache miss / fetch-buffer drain).
    FrontendFetch,
    /// Empty ROB within the redirect-to-dispatch window of a squash.
    FrontendSquash,
    /// Dispatch blocked on a full issue queue.
    BackendIqFull,
    /// Dispatch blocked on a full ROB (or exhausted physical registers).
    BackendRobFull,
    /// Dispatch blocked on a full load or store queue.
    BackendLsqFull,
    /// Head executing or waiting on non-memory execution latency.
    BackendExec,
    /// Head memory operation serviced by (or pending at) the L1.
    MemL1,
    /// Head memory operation serviced by the L2.
    MemL2,
    /// Head memory operation serviced by DRAM.
    MemDram,
    /// Cycle lost to NDA's deferred tag broadcast.
    NdaDelay,
}

impl CpiClass {
    /// Number of classes (the [`CpiStack`] array size).
    pub const COUNT: usize = 11;

    /// Every class, in canonical (reporting) order.
    pub fn all() -> [CpiClass; CpiClass::COUNT] {
        [
            CpiClass::Commit,
            CpiClass::FrontendFetch,
            CpiClass::FrontendSquash,
            CpiClass::BackendIqFull,
            CpiClass::BackendRobFull,
            CpiClass::BackendLsqFull,
            CpiClass::BackendExec,
            CpiClass::MemL1,
            CpiClass::MemL2,
            CpiClass::MemDram,
            CpiClass::NdaDelay,
        ]
    }

    /// Stable metric name (used by the registry and every renderer).
    pub fn name(self) -> &'static str {
        match self {
            CpiClass::Commit => "commit",
            CpiClass::FrontendFetch => "frontend-fetch",
            CpiClass::FrontendSquash => "frontend-squash",
            CpiClass::BackendIqFull => "backend-iq-full",
            CpiClass::BackendRobFull => "backend-rob-full",
            CpiClass::BackendLsqFull => "backend-lsq-full",
            CpiClass::BackendExec => "backend-exec",
            CpiClass::MemL1 => "mem-l1",
            CpiClass::MemL2 => "mem-l2",
            CpiClass::MemDram => "mem-dram",
            CpiClass::NdaDelay => "nda-delay",
        }
    }

    /// The coarse Fig 9a bucket this class rolls up into. `NdaDelay`
    /// aggregates as a backend stall: the back end is what sits idle while
    /// the defense withholds a broadcast.
    pub fn coarse(self) -> CycleClass {
        match self {
            CpiClass::Commit => CycleClass::Commit,
            CpiClass::FrontendFetch | CpiClass::FrontendSquash => CycleClass::FrontendStall,
            CpiClass::BackendIqFull
            | CpiClass::BackendRobFull
            | CpiClass::BackendLsqFull
            | CpiClass::BackendExec
            | CpiClass::NdaDelay => CycleClass::BackendStall,
            CpiClass::MemL1 | CpiClass::MemL2 | CpiClass::MemDram => CycleClass::MemoryStall,
        }
    }

    fn index(self) -> usize {
        match self {
            CpiClass::Commit => 0,
            CpiClass::FrontendFetch => 1,
            CpiClass::FrontendSquash => 2,
            CpiClass::BackendIqFull => 3,
            CpiClass::BackendRobFull => 4,
            CpiClass::BackendLsqFull => 5,
            CpiClass::BackendExec => 6,
            CpiClass::MemL1 => 7,
            CpiClass::MemL2 => 8,
            CpiClass::MemDram => 9,
            CpiClass::NdaDelay => 10,
        }
    }
}

impl std::fmt::Display for CpiClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class cycle counts of the top-down CPI stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    counts: [u64; CpiClass::COUNT],
}

impl CpiStack {
    /// A zeroed stack.
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Charge one cycle to `class`.
    pub fn record(&mut self, class: CpiClass) {
        self.counts[class.index()] += 1;
    }

    /// Charge `n` cycles to `class` (the blocking in-order model accounts
    /// whole latencies at once).
    pub fn add(&mut self, class: CpiClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Overwrite the count for `class` (used for remainder classes
    /// computed at end of run).
    pub fn set(&mut self, class: CpiClass, n: u64) {
        self.counts[class.index()] = n;
    }

    /// Cycles charged to `class`.
    pub fn get(&self, class: CpiClass) -> u64 {
        self.counts[class.index()]
    }

    /// Sum over all classes. Equals `cycles` on any completed
    /// full-detail run (the partition invariant).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cycles charged to the three memory classes combined.
    pub fn memory_total(&self) -> u64 {
        self.get(CpiClass::MemL1) + self.get(CpiClass::MemL2) + self.get(CpiClass::MemDram)
    }

    /// `(class, count)` pairs in canonical order.
    pub fn entries(&self) -> [(CpiClass, u64); CpiClass::COUNT] {
        let mut out = [(CpiClass::Commit, 0); CpiClass::COUNT];
        for (slot, class) in out.iter_mut().zip(CpiClass::all()) {
            *slot = (class, self.get(class));
        }
        out
    }
}

/// Counter block filled by every core model.
///
/// All fields are plain counters so models can update them directly; the
/// derived metrics ([`SimStats::cpi`], [`SimStats::ilp`],
/// [`SimStats::avg_dispatch_to_issue`]) live here so every report computes
/// them identically.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Architecturally committed instructions.
    pub committed_insts: u64,
    /// Committed loads (including load-like `RdMsr`).
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed branches.
    pub committed_branches: u64,
    /// Branch direction/target mispredictions that caused a squash.
    pub branch_mispredicts: u64,
    /// Memory-order violations (store bypass gone wrong) that caused a
    /// replay squash.
    pub mem_order_violations: u64,
    /// Total squash events of any kind.
    pub squashes: u64,
    /// Faults delivered to the architectural fault handler.
    pub faults: u64,
    /// Wrong-path instructions that executed before being squashed.
    pub wrong_path_executed: u64,

    /// Fig 9a: cycles in which >= 1 instruction retired.
    pub commit_cycles: u64,
    /// Fig 9a: head-of-ROB incomplete memory operation.
    pub memory_stall_cycles: u64,
    /// Fig 9a: head-of-ROB non-memory, not ready to retire.
    pub backend_stall_cycles: u64,
    /// Fig 9a: empty ROB / squash recovery.
    pub frontend_stall_cycles: u64,

    /// Fig 9d numerator: sum over issued instructions of
    /// (issue cycle - dispatch cycle).
    pub dispatch_to_issue_total: u64,
    /// Fig 9d denominator: instructions that issued.
    pub issued_insts: u64,
    /// Fig 9c: cycles in which >= 1 instruction issued.
    pub issue_active_cycles: u64,

    /// Completed instructions whose tag broadcast NDA deferred.
    pub deferred_broadcasts: u64,
    /// Tag broadcasts performed.
    pub broadcasts: u64,
    /// Loads that bypassed at least one unresolved-address store.
    pub store_bypasses: u64,

    /// Fine-grained top-down cycle accounting (refines the four `*_cycles`
    /// aggregates above; both partitions sum to `cycles`).
    pub cpi_stack: CpiStack,
    /// Per-instruction dispatch→issue latency distribution (Fig 9d).
    pub d2i_hist: Hist,
    /// Per-broadcast complete→broadcast gap distribution for deferred
    /// broadcasts — NDA's wake-up delay made measurable.
    pub defer_hist: Hist,
}

impl SimStats {
    /// Fresh, all-zero counters.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Charge one cycle to a CPI-stack class. The coarse Fig 9a aggregate
    /// ([`CpiClass::coarse`]) is updated in the same step, so the legacy
    /// four-way partition stays exact too.
    pub fn record_cycle(&mut self, class: CpiClass) {
        self.cpi_stack.record(class);
        self.record_coarse(class.coarse());
    }

    /// Charge one cycle to a coarse Fig 9a class only (no CPI-stack
    /// entry). Internal helper; models that classify cycles must go
    /// through [`SimStats::record_cycle`] so both partitions agree.
    fn record_coarse(&mut self, class: CycleClass) {
        match class {
            CycleClass::Commit => self.commit_cycles += 1,
            CycleClass::MemoryStall => self.memory_stall_cycles += 1,
            CycleClass::BackendStall => self.backend_stall_cycles += 1,
            CycleClass::FrontendStall => self.frontend_stall_cycles += 1,
        }
    }

    /// Charge `n` cycles at once to a CPI-stack class (blocking in-order
    /// model), keeping the coarse aggregate in sync.
    pub fn add_cycles(&mut self, class: CpiClass, n: u64) {
        self.cpi_stack.add(class, n);
        match class.coarse() {
            CycleClass::Commit => self.commit_cycles += n,
            CycleClass::MemoryStall => self.memory_stall_cycles += n,
            CycleClass::BackendStall => self.backend_stall_cycles += n,
            CycleClass::FrontendStall => self.frontend_stall_cycles += n,
        }
    }

    /// Cycles per committed instruction; `f64::INFINITY` before anything
    /// commits.
    pub fn cpi(&self) -> f64 {
        if self.committed_insts == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.committed_insts as f64
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Issue-based ILP: average instructions entering execution per cycle
    /// over cycles in which at least one issued (<= 1.0 by construction on
    /// the single-issue in-order core — the Fig 9c property).
    pub fn ilp(&self) -> f64 {
        if self.issue_active_cycles == 0 {
            0.0
        } else {
            self.issued_insts as f64 / self.issue_active_cycles as f64
        }
    }

    /// Fig 9d: mean dispatch→issue latency in cycles.
    pub fn avg_dispatch_to_issue(&self) -> f64 {
        if self.issued_insts == 0 {
            0.0
        } else {
            self.dispatch_to_issue_total as f64 / self.issued_insts as f64
        }
    }

    /// Branch misprediction rate per committed branch.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts as f64 / self.committed_insts as f64
        }
    }

    /// The Fig 9a cycle classes as labelled absolute counts, in the order
    /// (commit, memory, backend, frontend) — the stall-reason histogram the
    /// pipeline watchdog embeds in its diagnostics.
    pub fn stall_histogram(&self) -> [(&'static str, u64); 4] {
        [
            ("commit", self.commit_cycles),
            ("memory-stall", self.memory_stall_cycles),
            ("backend-stall", self.backend_stall_cycles),
            ("frontend-stall", self.frontend_stall_cycles),
        ]
    }

    /// The four Fig 9a classes as fractions of total cycles, in the order
    /// (commit, memory, backend, frontend).
    pub fn cycle_breakdown(&self) -> (f64, f64, f64, f64) {
        let t = self.cycles.max(1) as f64;
        (
            self.commit_cycles as f64 / t,
            self.memory_stall_cycles as f64 / t,
            self.backend_stall_cycles as f64 / t,
            self.frontend_stall_cycles as f64 / t,
        )
    }

    /// Export every counter and histogram into `reg` under stable `sim.*`
    /// and `cpi_stack.*` names.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        reg.counter("sim.cycles", self.cycles);
        reg.counter("sim.committed_insts", self.committed_insts);
        reg.counter("sim.committed_loads", self.committed_loads);
        reg.counter("sim.committed_stores", self.committed_stores);
        reg.counter("sim.committed_branches", self.committed_branches);
        reg.counter("sim.branch_mispredicts", self.branch_mispredicts);
        reg.counter("sim.mem_order_violations", self.mem_order_violations);
        reg.counter("sim.squashes", self.squashes);
        reg.counter("sim.faults", self.faults);
        reg.counter("sim.wrong_path_executed", self.wrong_path_executed);
        reg.counter("sim.issued_insts", self.issued_insts);
        reg.counter("sim.issue_active_cycles", self.issue_active_cycles);
        reg.counter("sim.dispatch_to_issue_total", self.dispatch_to_issue_total);
        reg.counter("sim.deferred_broadcasts", self.deferred_broadcasts);
        reg.counter("sim.broadcasts", self.broadcasts);
        reg.counter("sim.store_bypasses", self.store_bypasses);
        for (class, count) in self.cpi_stack.entries() {
            reg.counter(&format!("cpi_stack.{}", class.name()), count);
        }
        reg.histogram("sim.dispatch_to_issue", self.d2i_hist);
        reg.histogram("sim.broadcast_defer", self.defer_hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc() {
        let s = SimStats {
            cycles: 100,
            committed_insts: 50,
            ..SimStats::new()
        };
        assert_eq!(s.cpi(), 2.0);
        assert_eq!(s.ipc(), 0.5);
    }

    #[test]
    fn cpi_of_empty_run_is_infinite() {
        assert!(SimStats::new().cpi().is_infinite());
        assert_eq!(SimStats::new().ipc(), 0.0);
    }

    #[test]
    fn ilp_counts_only_active_cycles() {
        let s = SimStats {
            issued_insts: 30,
            issue_active_cycles: 10,
            ..SimStats::new()
        };
        assert_eq!(s.ilp(), 3.0);
        assert_eq!(SimStats::new().ilp(), 0.0);
    }

    #[test]
    fn dispatch_to_issue_mean() {
        let s = SimStats {
            dispatch_to_issue_total: 90,
            issued_insts: 30,
            ..SimStats::new()
        };
        assert_eq!(s.avg_dispatch_to_issue(), 3.0);
    }

    #[test]
    fn record_cycle_classifies() {
        let mut s = SimStats::new();
        s.record_cycle(CpiClass::Commit);
        s.record_cycle(CpiClass::MemL1);
        s.record_cycle(CpiClass::MemDram);
        s.record_cycle(CpiClass::BackendExec);
        s.record_cycle(CpiClass::FrontendFetch);
        s.cycles = 5;
        let (c, m, b, f) = s.cycle_breakdown();
        assert!((c - 0.2).abs() < 1e-9);
        assert!((m - 0.4).abs() < 1e-9);
        assert!((b - 0.2).abs() < 1e-9);
        assert!((f - 0.2).abs() < 1e-9);
    }

    #[test]
    fn fine_and_coarse_partitions_agree() {
        let mut s = SimStats::new();
        for (i, class) in CpiClass::all().into_iter().enumerate() {
            for _ in 0..=i {
                s.record_cycle(class);
            }
        }
        let coarse = s.commit_cycles
            + s.memory_stall_cycles
            + s.backend_stall_cycles
            + s.frontend_stall_cycles;
        assert_eq!(s.cpi_stack.total(), coarse);
        assert_eq!(s.cpi_stack.get(CpiClass::Commit), 1);
        assert_eq!(s.cpi_stack.get(CpiClass::NdaDelay), 11);
        // NdaDelay rolls up as a backend stall.
        assert_eq!(
            s.backend_stall_cycles,
            s.cpi_stack.get(CpiClass::BackendIqFull)
                + s.cpi_stack.get(CpiClass::BackendRobFull)
                + s.cpi_stack.get(CpiClass::BackendLsqFull)
                + s.cpi_stack.get(CpiClass::BackendExec)
                + s.cpi_stack.get(CpiClass::NdaDelay)
        );
    }

    #[test]
    fn add_cycles_batches() {
        let mut s = SimStats::new();
        s.add_cycles(CpiClass::MemDram, 144);
        s.add_cycles(CpiClass::Commit, 3);
        assert_eq!(s.memory_stall_cycles, 144);
        assert_eq!(s.commit_cycles, 3);
        assert_eq!(s.cpi_stack.total(), 147);
    }

    #[test]
    fn cpi_class_names_are_unique_and_stable() {
        let names: Vec<&str> = CpiClass::all().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), CpiClass::COUNT);
        assert_eq!(names[0], "commit");
        assert_eq!(names[CpiClass::COUNT - 1], "nda-delay");
    }

    #[test]
    fn export_registers_stack_and_histograms() {
        let mut s = SimStats::new();
        s.cycles = 10;
        s.record_cycle(CpiClass::NdaDelay);
        s.d2i_hist.observe(3);
        s.defer_hist.observe(7);
        let mut reg = MetricsRegistry::new();
        s.export(&mut reg);
        assert_eq!(reg.get_counter("sim.cycles"), Some(10));
        assert_eq!(reg.get_counter("cpi_stack.nda-delay"), Some(1));
        assert_eq!(reg.get_histogram("sim.dispatch_to_issue").unwrap().sum, 3);
        assert_eq!(reg.get_histogram("sim.broadcast_defer").unwrap().sum, 7);
    }

    #[test]
    fn breakdown_of_zero_cycles_is_finite() {
        let (c, m, b, f) = SimStats::new().cycle_breakdown();
        assert_eq!((c, m, b, f), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn stall_histogram_labels_match_counters() {
        let s = SimStats {
            commit_cycles: 1,
            memory_stall_cycles: 2,
            backend_stall_cycles: 3,
            frontend_stall_cycles: 4,
            ..SimStats::new()
        };
        let h = s.stall_histogram();
        assert_eq!(h[0], ("commit", 1));
        assert_eq!(h[1], ("memory-stall", 2));
        assert_eq!(h[2], ("backend-stall", 3));
        assert_eq!(h[3], ("frontend-stall", 4));
    }
}
