//! Per-run simulation counters.

/// Classification of one simulated cycle, following the paper's Fig 9a
/// definitions exactly:
///
/// * `Commit` — at least one instruction retired this cycle.
/// * `MemoryStall` — the ROB head is an incomplete memory operation.
/// * `BackendStall` — the ROB head is a non-memory operation not yet ready
///   to retire.
/// * `FrontendStall` — the ROB is empty (or the cycle was spent squashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CycleClass {
    Commit,
    MemoryStall,
    BackendStall,
    FrontendStall,
}

/// Counter block filled by every core model.
///
/// All fields are plain counters so models can update them directly; the
/// derived metrics ([`SimStats::cpi`], [`SimStats::ilp`],
/// [`SimStats::avg_dispatch_to_issue`]) live here so every report computes
/// them identically.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Architecturally committed instructions.
    pub committed_insts: u64,
    /// Committed loads (including load-like `RdMsr`).
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed branches.
    pub committed_branches: u64,
    /// Branch direction/target mispredictions that caused a squash.
    pub branch_mispredicts: u64,
    /// Memory-order violations (store bypass gone wrong) that caused a
    /// replay squash.
    pub mem_order_violations: u64,
    /// Total squash events of any kind.
    pub squashes: u64,
    /// Faults delivered to the architectural fault handler.
    pub faults: u64,
    /// Wrong-path instructions that executed before being squashed.
    pub wrong_path_executed: u64,

    /// Fig 9a: cycles in which >= 1 instruction retired.
    pub commit_cycles: u64,
    /// Fig 9a: head-of-ROB incomplete memory operation.
    pub memory_stall_cycles: u64,
    /// Fig 9a: head-of-ROB non-memory, not ready to retire.
    pub backend_stall_cycles: u64,
    /// Fig 9a: empty ROB / squash recovery.
    pub frontend_stall_cycles: u64,

    /// Fig 9d numerator: sum over issued instructions of
    /// (issue cycle - dispatch cycle).
    pub dispatch_to_issue_total: u64,
    /// Fig 9d denominator: instructions that issued.
    pub issued_insts: u64,
    /// Fig 9c: cycles in which >= 1 instruction issued.
    pub issue_active_cycles: u64,

    /// Completed instructions whose tag broadcast NDA deferred.
    pub deferred_broadcasts: u64,
    /// Tag broadcasts performed.
    pub broadcasts: u64,
    /// Loads that bypassed at least one unresolved-address store.
    pub store_bypasses: u64,
}

impl SimStats {
    /// Fresh, all-zero counters.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Record one cycle of the Fig 9a classification.
    pub fn record_cycle(&mut self, class: CycleClass) {
        match class {
            CycleClass::Commit => self.commit_cycles += 1,
            CycleClass::MemoryStall => self.memory_stall_cycles += 1,
            CycleClass::BackendStall => self.backend_stall_cycles += 1,
            CycleClass::FrontendStall => self.frontend_stall_cycles += 1,
        }
    }

    /// Cycles per committed instruction; `f64::INFINITY` before anything
    /// commits.
    pub fn cpi(&self) -> f64 {
        if self.committed_insts == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.committed_insts as f64
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Issue-based ILP: average instructions entering execution per cycle
    /// over cycles in which at least one issued (<= 1.0 by construction on
    /// the single-issue in-order core — the Fig 9c property).
    pub fn ilp(&self) -> f64 {
        if self.issue_active_cycles == 0 {
            0.0
        } else {
            self.issued_insts as f64 / self.issue_active_cycles as f64
        }
    }

    /// Fig 9d: mean dispatch→issue latency in cycles.
    pub fn avg_dispatch_to_issue(&self) -> f64 {
        if self.issued_insts == 0 {
            0.0
        } else {
            self.dispatch_to_issue_total as f64 / self.issued_insts as f64
        }
    }

    /// Branch misprediction rate per committed branch.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts as f64 / self.committed_insts as f64
        }
    }

    /// The Fig 9a cycle classes as labelled absolute counts, in the order
    /// (commit, memory, backend, frontend) — the stall-reason histogram the
    /// pipeline watchdog embeds in its diagnostics.
    pub fn stall_histogram(&self) -> [(&'static str, u64); 4] {
        [
            ("commit", self.commit_cycles),
            ("memory-stall", self.memory_stall_cycles),
            ("backend-stall", self.backend_stall_cycles),
            ("frontend-stall", self.frontend_stall_cycles),
        ]
    }

    /// The four Fig 9a classes as fractions of total cycles, in the order
    /// (commit, memory, backend, frontend).
    pub fn cycle_breakdown(&self) -> (f64, f64, f64, f64) {
        let t = self.cycles.max(1) as f64;
        (
            self.commit_cycles as f64 / t,
            self.memory_stall_cycles as f64 / t,
            self.backend_stall_cycles as f64 / t,
            self.frontend_stall_cycles as f64 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc() {
        let s = SimStats {
            cycles: 100,
            committed_insts: 50,
            ..SimStats::new()
        };
        assert_eq!(s.cpi(), 2.0);
        assert_eq!(s.ipc(), 0.5);
    }

    #[test]
    fn cpi_of_empty_run_is_infinite() {
        assert!(SimStats::new().cpi().is_infinite());
        assert_eq!(SimStats::new().ipc(), 0.0);
    }

    #[test]
    fn ilp_counts_only_active_cycles() {
        let s = SimStats {
            issued_insts: 30,
            issue_active_cycles: 10,
            ..SimStats::new()
        };
        assert_eq!(s.ilp(), 3.0);
        assert_eq!(SimStats::new().ilp(), 0.0);
    }

    #[test]
    fn dispatch_to_issue_mean() {
        let s = SimStats {
            dispatch_to_issue_total: 90,
            issued_insts: 30,
            ..SimStats::new()
        };
        assert_eq!(s.avg_dispatch_to_issue(), 3.0);
    }

    #[test]
    fn record_cycle_classifies() {
        let mut s = SimStats::new();
        s.record_cycle(CycleClass::Commit);
        s.record_cycle(CycleClass::MemoryStall);
        s.record_cycle(CycleClass::MemoryStall);
        s.record_cycle(CycleClass::BackendStall);
        s.record_cycle(CycleClass::FrontendStall);
        s.cycles = 5;
        let (c, m, b, f) = s.cycle_breakdown();
        assert!((c - 0.2).abs() < 1e-9);
        assert!((m - 0.4).abs() < 1e-9);
        assert!((b - 0.2).abs() < 1e-9);
        assert!((f - 0.2).abs() < 1e-9);
    }

    #[test]
    fn breakdown_of_zero_cycles_is_finite() {
        let (c, m, b, f) = SimStats::new().cycle_breakdown();
        assert_eq!((c, m, b, f), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn stall_histogram_labels_match_counters() {
        let s = SimStats {
            commit_cycles: 1,
            memory_stall_cycles: 2,
            backend_stall_cycles: 3,
            frontend_stall_cycles: 4,
            ..SimStats::new()
        };
        let h = s.stall_histogram();
        assert_eq!(h[0], ("commit", 1));
        assert_eq!(h[1], ("memory-stall", 2));
        assert_eq!(h[2], ("backend-stall", 3));
        assert_eq!(h[3], ("frontend-stall", 4));
    }
}
