//! Exporter golden-snapshot and observer-invariance tests.
//!
//! * The Perfetto and Konata exporters are pinned byte-for-byte on a tiny
//!   fixed workload (regenerate with `BLESS=1 cargo test -p nda-trace`
//!   after an intentional format change, and eyeball the diff).
//! * Trace emission must be a pure observation: running with a sink
//!   attached yields bit-identical statistics, cycle counts and
//!   architectural state.
//! * The acceptance check of the tracing work: the `spectre_v1` trace
//!   shows complete→broadcast gaps (NDA's deferred broadcasts) under the
//!   Strict policy and none under the baseline OoO core.

use nda_core::{run_with_config, OooCore, SimConfig, Variant};
use nda_isa::{Asm, Program, Reg};
use nda_trace::{validate_json, KonataSink, PerfettoSink};

/// A tiny fixed workload: one cold miss, a store→load forward, one
/// data-dependent branch the predictor gets wrong, and an ALU chain.
fn tiny_program() -> Program {
    let mut asm = Asm::new();
    asm.data_u64s(0x8000, &[7, 2]);
    let odd = asm.new_label();
    asm.li(Reg::X2, 0x8000)
        .li(Reg::X8, 0x9000)
        .ld8(Reg::X3, Reg::X2, 0) // cold miss
        .add(Reg::X4, Reg::X3, Reg::X3)
        .st8(Reg::X4, Reg::X8, 0)
        .ld8(Reg::X5, Reg::X8, 0) // forwarded
        .andi(Reg::X6, Reg::X3, 1)
        .bne(Reg::X6, Reg::X0, odd)
        .addi(Reg::X4, Reg::X4, 1000);
    asm.bind(odd);
    asm.addi(Reg::X7, Reg::X4, 5).halt();
    asm.assemble().unwrap()
}

fn check_golden(rel: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(rel);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}; regenerate with BLESS=1", rel));
    assert_eq!(
        expected, actual,
        "{rel} drifted from the pinned snapshot; if intentional, \
         regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn perfetto_golden_snapshot() {
    let prog = tiny_program();
    let mut core = OooCore::new(SimConfig::for_variant(Variant::Strict), &prog);
    let mut sink = PerfettoSink::new();
    core.run_with_sink(100_000, &mut sink).unwrap();
    let json = sink.into_json();
    validate_json(&json).expect("exporter must emit well-formed JSON");
    for track in ["uops", "nda-defer", "cache", "predictor", "squash"] {
        assert!(json.contains(&format!("\"name\":\"{track}\"")), "{track}");
    }
    check_golden("perfetto.json", &json);
}

#[test]
fn konata_golden_snapshot() {
    let prog = tiny_program();
    let mut core = OooCore::new(SimConfig::for_variant(Variant::Strict), &prog);
    let mut sink = KonataSink::new();
    core.run_with_sink(100_000, &mut sink).unwrap();
    let log = sink.into_log();
    assert!(log.starts_with("Kanata\t0004\n"), "schema header");
    assert!(log.contains("S\t"), "stage lines present");
    assert!(log.contains("R\t"), "retirement lines present");
    check_golden("konata.log", &log);
}

#[test]
fn tracing_is_a_pure_observation() {
    let prog = tiny_program();
    for variant in [
        Variant::Ooo,
        Variant::Strict,
        Variant::FullProtection,
        Variant::InvisiSpecSpectre,
    ] {
        let plain = run_with_config(SimConfig::for_variant(variant), &prog, 100_000).unwrap();

        let mut traced_core = OooCore::new(SimConfig::for_variant(variant), &prog);
        let mut sink = PerfettoSink::new();
        let traced = traced_core.run_with_sink(100_000, &mut sink).unwrap();

        assert_eq!(
            plain.stats, traced.stats,
            "{variant}: statistics changed with a sink attached"
        );
        assert_eq!(
            plain.regs, traced.regs,
            "{variant}: architectural state changed with a sink attached"
        );
    }
}

#[test]
fn spectre_v1_strict_shows_defer_gaps_base_does_not() {
    let prog = nda_attacks::AttackKind::SpectreV1Cache.program(42);
    let defers = |variant: Variant| {
        let mut core = OooCore::new(SimConfig::for_variant(variant), &prog);
        let mut sink = PerfettoSink::new();
        core.run_with_sink(10_000_000, &mut sink).unwrap();
        (sink.defer_slices, sink.max_defer_gap)
    };
    let (base_slices, base_gap) = defers(Variant::Ooo);
    let (strict_slices, strict_gap) = defers(Variant::Strict);
    // The unprotected core only ever defers for port arbitration: a gap of
    // a cycle or two, never the policy-scale stall.
    assert!(
        base_gap <= 2,
        "baseline OoO should show only port-arbitration gaps (max {base_gap})"
    );
    // Strict withholds broadcasts across the mispredicted bounds check
    // whose condition load misses to DRAM: the gap is visible at a glance.
    assert!(
        strict_gap >= 50,
        "Strict must show policy-scale defer gaps (max {strict_gap})"
    );
    assert!(
        strict_slices > 5 * base_slices.max(1),
        "Strict must defer far more broadcasts ({strict_slices} vs {base_slices})"
    );
}
