//! # Trace exporters for the NDA reproduction
//!
//! Two [`nda_core::EventSink`] implementations turn the core's pipeline
//! event stream into files standard visualizers open directly:
//!
//! * [`PerfettoSink`] — Chrome trace-event JSON for [Perfetto]
//!   (`ui.perfetto.dev`) / `chrome://tracing`. Each micro-op instance is a
//!   duration slice on the `uops` track; NDA's deferred broadcasts appear
//!   as slices on a dedicated `nda-defer` track whose length is the
//!   complete→broadcast gap — the defense made visible.
//! * [`KonataSink`] — the [Konata] O3 pipeview log (`Kanata 0004`), the
//!   same format gem5's O3PipeView trace converts into. Stage lanes:
//!   `Ds` dispatch wait, `Ex` execute, `Wb` completed-awaiting-broadcast
//!   (the NDA deferral stage), `Cm` broadcast-to-retire.
//!
//! Both sinks are strictly observer-only: they consume events the core
//! buffers anyway and cannot perturb simulated state (the golden tests pin
//! cycle counts bit-exact with tracing on and off).
//!
//! [Perfetto]: https://perfetto.dev
//! [Konata]: https://github.com/shioyadan/Konata

#![forbid(unsafe_code)]

pub mod konata;
pub mod perfetto;

pub use konata::KonataSink;
pub use perfetto::PerfettoSink;

/// Supported `--trace-format` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    Perfetto,
    /// Konata `Kanata 0004` pipeview log.
    Konata,
}

impl TraceFormat {
    /// Parse a CLI argument value.
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "perfetto" => Some(TraceFormat::Perfetto),
            "konata" => Some(TraceFormat::Konata),
            _ => None,
        }
    }

    /// The canonical file extension.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Perfetto => "json",
            TraceFormat::Konata => "log",
        }
    }
}

/// Validate that `s` is one well-formed JSON value (RFC 8259 subset: no
/// unicode-escape surrogate checking). Returns the byte offset and a
/// message on the first error. Used by the exporter golden tests and the
/// CI trace-smoke step; hand-rolled because the build environment has no
/// registry access for serde.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_roundtrip() {
        assert_eq!(TraceFormat::parse("perfetto"), Some(TraceFormat::Perfetto));
        assert_eq!(TraceFormat::parse("konata"), Some(TraceFormat::Konata));
        assert_eq!(TraceFormat::parse("vcd"), None);
        assert_eq!(TraceFormat::Perfetto.extension(), "json");
        assert_eq!(TraceFormat::Konata.extension(), "log");
    }

    #[test]
    fn validates_good_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [ 1 , \"x\\u00ff\" ]  ",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_bad_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "{} trailing",
            "[1 2]",
            "1.",
            "\"bad\\q\"",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }
}
