//! Konata (`Kanata 0004`) O3 pipeview exporter.
//!
//! The format gem5's O3PipeView traces convert into; Konata renders one
//! lane per micro-op with colored stage segments. Mapping:
//!
//! | stage | meaning here                                        |
//! |-------|-----------------------------------------------------|
//! | `Ds`  | dispatched, waiting to issue                         |
//! | `Ex`  | executing                                           |
//! | `Wb`  | completed, awaiting tag broadcast — the NDA deferral |
//! | `Cm`  | broadcast done, awaiting retirement                 |
//!
//! A long `Wb` segment under `strict-*` policies *is* the paper's deferred
//! broadcast. Cache misses and mispredicts attach as lane annotations.
//!
//! File grammar (tab-separated): `C=`/`C` advance the clock, `I` opens a
//! micro-op (`uid`, `insn-id`, `tid`), `L` adds a label (type 0 = lane
//! text, type 1 = hover detail), `S`/`E` start/end a stage, `R` retires
//! (`type` 0) or flushes (`type` 1).

use nda_core::trace::{EventSink, TraceEvent, TraceStage};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-uop lane state.
#[derive(Debug, Clone, Copy)]
struct Lane {
    uid: u64,
    stage: &'static str,
}

/// An [`EventSink`] producing a Konata pipeview log.
#[derive(Debug, Default)]
pub struct KonataSink {
    body: String,
    /// In-flight lanes keyed by sequence number.
    open: BTreeMap<u64, Lane>,
    /// Monotonic micro-op id (never re-used, unlike sequence numbers).
    next_uid: u64,
    /// Clock state: `None` until the first event fixes the start cycle.
    clock: Option<u64>,
}

impl KonataSink {
    /// An empty sink.
    pub fn new() -> KonataSink {
        KonataSink::default()
    }

    /// Advance the log clock to `cycle`.
    fn sync_clock(&mut self, cycle: u64) {
        match self.clock {
            None => {
                let _ = writeln!(self.body, "C=\t{cycle}");
                self.clock = Some(cycle);
            }
            Some(prev) if cycle > prev => {
                let _ = writeln!(self.body, "C\t{}", cycle - prev);
                self.clock = Some(cycle);
            }
            _ => {}
        }
    }

    fn start_stage(&mut self, seq: u64, stage: &'static str) {
        let Some(lane) = self.open.get_mut(&seq) else {
            return;
        };
        let uid = lane.uid;
        let prev = lane.stage;
        lane.stage = stage;
        let _ = writeln!(self.body, "E\t{uid}\t0\t{prev}");
        let _ = writeln!(self.body, "S\t{uid}\t0\t{stage}");
    }

    fn retire(&mut self, seq: u64, flushed: bool) {
        let Some(lane) = self.open.remove(&seq) else {
            return;
        };
        let uid = lane.uid;
        let _ = writeln!(self.body, "E\t{uid}\t0\t{}", lane.stage);
        let _ = writeln!(self.body, "R\t{uid}\t{seq}\t{}", u8::from(flushed));
    }

    /// Serialize the collected log (header + body).
    pub fn into_log(self) -> String {
        let mut out = String::with_capacity(self.body.len() + 16);
        out.push_str("Kanata\t0004\n");
        out.push_str(&self.body);
        out
    }
}

impl EventSink for KonataSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.sync_clock(ev.cycle);
        match ev.stage {
            TraceStage::Dispatch => {
                // A lane still open under this seq was squash-recycled.
                self.retire(ev.seq, true);
                let uid = self.next_uid;
                self.next_uid += 1;
                self.open.insert(ev.seq, Lane { uid, stage: "Ds" });
                let _ = writeln!(self.body, "I\t{uid}\t{}\t0", ev.seq);
                let _ = writeln!(self.body, "L\t{uid}\t0\t{}: {}", ev.pc, ev.disasm);
                let _ = writeln!(self.body, "S\t{uid}\t0\tDs");
            }
            TraceStage::Issue => self.start_stage(ev.seq, "Ex"),
            TraceStage::Complete => self.start_stage(ev.seq, "Wb"),
            TraceStage::Broadcast => self.start_stage(ev.seq, "Cm"),
            TraceStage::Commit => self.retire(ev.seq, false),
            TraceStage::Squash => self.retire(ev.seq, true),
            TraceStage::CacheMiss => {
                if let Some(lane) = self.open.get(&ev.seq) {
                    let _ = writeln!(self.body, "L\t{}\t1\tL1 data miss", lane.uid);
                }
            }
            TraceStage::Mispredict => {
                if let Some(lane) = self.open.get(&ev.seq) {
                    let _ = writeln!(self.body, "L\t{}\t1\tmispredicted", lane.uid);
                }
            }
            TraceStage::TaintGated => {
                if let Some(lane) = self.open.get(&ev.seq) {
                    let _ = writeln!(self.body, "L\t{}\t1\ttaint-gated", lane.uid);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, stage: TraceStage) -> TraceEvent {
        TraceEvent {
            cycle,
            seq,
            pc: 3,
            disasm: "add x1, x2, x3".to_string(),
            stage,
            mem: None,
        }
    }

    #[test]
    fn lifecycle_produces_stage_lines() {
        let mut sink = KonataSink::new();
        sink.event(&ev(5, 0, TraceStage::Dispatch));
        sink.event(&ev(6, 0, TraceStage::Issue));
        sink.event(&ev(8, 0, TraceStage::Complete));
        sink.event(&ev(12, 0, TraceStage::Broadcast));
        sink.event(&ev(13, 0, TraceStage::Commit));
        sink.finish();
        let log = sink.into_log();
        assert!(log.starts_with("Kanata\t0004\n"), "{log}");
        assert!(log.contains("C=\t5"), "{log}");
        assert!(log.contains("I\t0\t0\t0"), "{log}");
        assert!(log.contains("S\t0\t0\tWb"), "{log}");
        assert!(log.contains("S\t0\t0\tCm"), "{log}");
        assert!(log.contains("R\t0\t0\t0"), "{log}");
    }

    #[test]
    fn clock_advances_by_delta() {
        let mut sink = KonataSink::new();
        sink.event(&ev(5, 0, TraceStage::Dispatch));
        sink.event(&ev(9, 0, TraceStage::Issue));
        let log = sink.into_log();
        assert!(log.contains("\nC\t4\n"), "{log}");
    }

    #[test]
    fn squash_flushes_lane() {
        let mut sink = KonataSink::new();
        sink.event(&ev(1, 4, TraceStage::Dispatch));
        sink.event(&ev(2, 4, TraceStage::Squash));
        let log = sink.into_log();
        assert!(log.contains("R\t0\t4\t1"), "{log}");
    }

    #[test]
    fn seq_reuse_allocates_fresh_uid() {
        let mut sink = KonataSink::new();
        sink.event(&ev(1, 4, TraceStage::Dispatch));
        sink.event(&ev(2, 4, TraceStage::Squash));
        sink.event(&ev(5, 4, TraceStage::Dispatch));
        sink.event(&ev(6, 4, TraceStage::Commit));
        let log = sink.into_log();
        assert!(log.contains("I\t1\t4\t0"), "{log}");
        assert!(log.contains("R\t1\t4\t0"), "{log}");
    }

    #[test]
    fn annotations_attach_to_open_lane() {
        let mut sink = KonataSink::new();
        sink.event(&ev(1, 0, TraceStage::Dispatch));
        sink.event(&ev(2, 0, TraceStage::CacheMiss));
        sink.event(&ev(3, 0, TraceStage::Mispredict));
        let log = sink.into_log();
        assert!(log.contains("L\t0\t1\tL1 data miss"), "{log}");
        assert!(log.contains("L\t0\t1\tmispredicted"), "{log}");
    }
}
