//! Chrome trace-event JSON (Perfetto / `chrome://tracing`) exporter.
//!
//! One process (`nda-sim`, pid 0) with named threads as tracks:
//!
//! | tid | track       | content                                         |
//! |----:|-------------|-------------------------------------------------|
//! |  1  | `uops`      | one `X` slice per micro-op, dispatch → drain     |
//! |  2  | `nda-defer` | `X` slice per *deferred* broadcast (gap length)  |
//! |  3  | `cache`     | `i` instant per L1 data miss                     |
//! |  4  | `predictor` | `i` instant per branch mispredict                |
//! |  5  | `squash`    | `i` instant per squashed micro-op                |
//!
//! Timestamps are simulated cycles reported as microseconds (1 cycle =
//! 1 µs), so Perfetto's time axis reads directly in cycles. The acceptance
//! check of the tracing work: under `strict-*` policies the `nda-defer`
//! track shows the complete→broadcast gaps that are absent under the
//! baseline OoO core.

use nda_core::trace::{EventSink, TraceEvent, TraceStage};
use nda_stats::escape_json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Lifetime bookkeeping for a micro-op whose slice is not yet emitted.
#[derive(Debug, Clone)]
struct OpenUop {
    pc: usize,
    disasm: String,
    dispatch: u64,
    complete: Option<u64>,
}

/// An [`EventSink`] producing Chrome trace-event JSON.
#[derive(Debug, Default)]
pub struct PerfettoSink {
    /// Serialized trace-event objects, in emission order.
    entries: Vec<String>,
    /// In-flight micro-ops keyed by sequence number (re-used after
    /// squashes, so an entry is closed before its seq reappears).
    open: BTreeMap<u64, OpenUop>,
    /// Largest cycle seen (closes still-open uops at `finish`).
    last_cycle: u64,
    /// Deferred-broadcast slices emitted (tests and reporting).
    pub defer_slices: u64,
    /// Longest complete→broadcast gap seen, in cycles. Port starvation on
    /// an unprotected core produces short gaps; a policy-withheld
    /// broadcast waits for branch resolution and shows up as a gap an
    /// order of magnitude longer (the acceptance signal of the tracing
    /// work).
    pub max_defer_gap: u64,
}

impl PerfettoSink {
    /// An empty sink.
    pub fn new() -> PerfettoSink {
        PerfettoSink::default()
    }

    fn push_slice(&mut self, tid: u32, name: &str, cat: &str, ts: u64, dur: u64, args: &str) {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            r#"{{"name":{},"cat":"{cat}","ph":"X","ts":{ts},"dur":{dur},"pid":0,"tid":{tid},"args":{{{args}}}}}"#,
            escape_json(name),
        );
        self.entries.push(s);
    }

    fn push_instant(&mut self, tid: u32, name: &str, cat: &str, ts: u64, args: &str) {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            r#"{{"name":{},"cat":"{cat}","ph":"i","s":"t","ts":{ts},"pid":0,"tid":{tid},"args":{{{args}}}}}"#,
            escape_json(name),
        );
        self.entries.push(s);
    }

    fn close_uop(&mut self, seq: u64, end: u64, fate: &str) {
        let Some(u) = self.open.remove(&seq) else {
            return;
        };
        let dur = end.saturating_sub(u.dispatch).max(1);
        let args = format!(r#""seq":{seq},"pc":{},"fate":"{fate}""#, u.pc);
        self.push_slice(1, &u.disasm, "uop", u.dispatch, dur, &args);
    }

    /// Serialize the collected trace as one JSON document.
    pub fn into_json(mut self) -> String {
        let open: Vec<u64> = self.open.keys().copied().collect();
        let end = self.last_cycle;
        for seq in open {
            self.close_uop(seq, end, "in-flight");
        }
        let mut out = String::with_capacity(self.entries.len() * 100 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let tracks = [
            (1u32, "uops"),
            (2, "nda-defer"),
            (3, "cache"),
            (4, "predictor"),
            (5, "squash"),
        ];
        let mut first = true;
        for (tid, name) in tracks {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":{}}}}}"#,
                escape_json(name),
            );
        }
        for e in &self.entries {
            out.push_str(",\n");
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl EventSink for PerfettoSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.last_cycle = self.last_cycle.max(ev.cycle);
        match ev.stage {
            TraceStage::Dispatch => {
                // A still-open entry under this seq was squash-recycled.
                self.close_uop(ev.seq, ev.cycle, "recycled");
                self.open.insert(
                    ev.seq,
                    OpenUop {
                        pc: ev.pc,
                        disasm: ev.disasm.clone(),
                        dispatch: ev.cycle,
                        complete: None,
                    },
                );
            }
            TraceStage::Issue => {}
            TraceStage::Complete => {
                if let Some(u) = self.open.get_mut(&ev.seq) {
                    u.complete = Some(ev.cycle);
                }
            }
            TraceStage::Broadcast => {
                let gap = self
                    .open
                    .get(&ev.seq)
                    .and_then(|u| u.complete)
                    .map(|c| ev.cycle.saturating_sub(c));
                if let Some(gap) = gap {
                    if gap > 0 {
                        let complete = ev.cycle - gap;
                        let args = format!(r#""seq":{},"gap":{gap}"#, ev.seq);
                        let name = format!("defer {}", ev.disasm);
                        self.push_slice(2, &name, "nda-defer", complete, gap, &args);
                        self.defer_slices += 1;
                        self.max_defer_gap = self.max_defer_gap.max(gap);
                    }
                }
            }
            TraceStage::Commit => self.close_uop(ev.seq, ev.cycle + 1, "commit"),
            TraceStage::Squash => {
                let args = format!(r#""seq":{},"pc":{}"#, ev.seq, ev.pc);
                self.push_instant(5, &ev.disasm, "squash", ev.cycle, &args);
                self.close_uop(ev.seq, ev.cycle + 1, "squash");
            }
            TraceStage::CacheMiss => {
                let args = format!(r#""seq":{},"pc":{}"#, ev.seq, ev.pc);
                self.push_instant(3, &ev.disasm, "cache-miss", ev.cycle, &args);
            }
            TraceStage::Mispredict => {
                let args = format!(r#""seq":{},"pc":{}"#, ev.seq, ev.pc);
                self.push_instant(4, &ev.disasm, "mispredict", ev.cycle, &args);
            }
            TraceStage::TaintGated => {
                let args = format!(r#""seq":{},"pc":{}"#, ev.seq, ev.pc);
                self.push_instant(2, &ev.disasm, "taint-gated", ev.cycle, &args);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, stage: TraceStage) -> TraceEvent {
        TraceEvent {
            cycle,
            seq,
            pc: 7,
            disasm: "ld x3, 0(x2)".to_string(),
            stage,
            mem: None,
        }
    }

    #[test]
    fn deferred_broadcast_becomes_gap_slice() {
        let mut sink = PerfettoSink::new();
        sink.event(&ev(10, 0, TraceStage::Dispatch));
        sink.event(&ev(11, 0, TraceStage::Issue));
        sink.event(&ev(12, 0, TraceStage::Complete));
        sink.event(&ev(20, 0, TraceStage::Broadcast));
        sink.event(&ev(21, 0, TraceStage::Commit));
        sink.finish();
        assert_eq!(sink.defer_slices, 1);
        let json = sink.into_json();
        crate::validate_json(&json).unwrap();
        assert!(json.contains(r#""cat":"nda-defer""#), "{json}");
        assert!(json.contains(r#""dur":8"#), "{json}");
        assert!(json.contains(r#""fate":"commit""#), "{json}");
    }

    #[test]
    fn same_cycle_broadcast_has_no_gap_slice() {
        let mut sink = PerfettoSink::new();
        sink.event(&ev(10, 0, TraceStage::Dispatch));
        sink.event(&ev(12, 0, TraceStage::Complete));
        sink.event(&ev(12, 0, TraceStage::Broadcast));
        sink.event(&ev(13, 0, TraceStage::Commit));
        let json = sink.into_json();
        assert!(!json.contains("nda-defer\",\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn squash_and_reuse_closes_both_instances() {
        let mut sink = PerfettoSink::new();
        sink.event(&ev(1, 5, TraceStage::Dispatch));
        sink.event(&ev(3, 5, TraceStage::Squash));
        sink.event(&ev(6, 5, TraceStage::Dispatch));
        sink.event(&ev(9, 5, TraceStage::Commit));
        let json = sink.into_json();
        crate::validate_json(&json).unwrap();
        assert!(json.contains(r#""fate":"squash""#), "{json}");
        assert!(json.contains(r#""fate":"commit""#), "{json}");
    }

    #[test]
    fn unfinished_uops_flush_as_in_flight() {
        let mut sink = PerfettoSink::new();
        sink.event(&ev(1, 0, TraceStage::Dispatch));
        sink.event(&ev(50, 1, TraceStage::Dispatch));
        let json = sink.into_json();
        crate::validate_json(&json).unwrap();
        assert_eq!(json.matches(r#""fate":"in-flight""#).count(), 2);
    }

    #[test]
    fn disasm_is_escaped() {
        let mut sink = PerfettoSink::new();
        let mut e = ev(1, 0, TraceStage::Dispatch);
        e.disasm = "weird \"quoted\"\ninst".to_string();
        sink.event(&e);
        let json = sink.into_json();
        crate::validate_json(&json).unwrap();
    }
}
