//! Per-kernel structural and behavioural properties: each kernel must
//! actually exhibit the micro-architectural behaviour it claims to model
//! (that is what makes the SPEC substitution defensible — see DESIGN.md
//! §4).

use nda_core::{run_variant, Variant};
use nda_isa::{Inst, Interp};
use nda_workloads::{by_name, WorkloadParams};

const MAX: u64 = 2_000_000_000;

fn run(name: &str, iters: u64) -> nda_core::RunResult {
    let w = by_name(name).unwrap();
    let prog = (w.build)(&WorkloadParams { seed: 2, iters });
    run_variant(Variant::Ooo, &prog, MAX).unwrap()
}

#[test]
fn mcf_is_dram_bound_with_mlp() {
    let r = run("mcf", 60);
    assert!(
        r.mem_stats.dram_accesses > 100,
        "pointer chasing must go off-chip ({} DRAM accesses)",
        r.mem_stats.dram_accesses
    );
    let mlp = r.mem_stats.mlp.expect("off-chip misses recorded");
    assert!(mlp > 1.5, "four chains must overlap misses (MLP {mlp:.2})");
    assert!(
        r.cpi() > 3.0,
        "mcf must be memory-bound (CPI {:.2})",
        r.cpi()
    );
}

#[test]
fn lbm_is_store_heavy_and_streaming() {
    let r = run("lbm", 60);
    assert!(
        r.stats.committed_stores * 2 >= r.stats.committed_loads,
        "streaming kernel writes a lot ({} stores vs {} loads)",
        r.stats.committed_stores,
        r.stats.committed_loads
    );
}

#[test]
fn gcc_mispredicts_heavily() {
    let r = run("gcc", 60);
    let per_branch = r.stats.branch_mispredicts as f64 / r.stats.committed_branches as f64;
    assert!(
        per_branch > 0.10,
        "data-dependent branches must mispredict (rate {per_branch:.3})"
    );
}

#[test]
fn x264_branches_are_predictable() {
    let r = run("x264", 60);
    let per_branch = r.stats.branch_mispredicts as f64 / r.stats.committed_branches as f64;
    assert!(
        per_branch < 0.05,
        "SAD loops must predict well (rate {per_branch:.3})"
    );
}

#[test]
fn perlbench_exercises_indirect_calls() {
    let w = by_name("perlbench").unwrap();
    let prog = (w.build)(&WorkloadParams { seed: 2, iters: 30 });
    let indirect = prog
        .insts
        .iter()
        .filter(|i| matches!(i, Inst::CallInd { .. }))
        .count();
    assert!(indirect >= 1, "dispatch loop must use an indirect call");
    let r = run_variant(Variant::Ooo, &prog, MAX).unwrap();
    // Random opcodes from one site: the BTB must miss often.
    assert!(
        r.stats.branch_mispredicts > 50,
        "indirect dispatch must stress the BTB ({} mispredicts)",
        r.stats.branch_mispredicts
    );
}

#[test]
fn deepsjeng_uses_calls_and_returns() {
    let w = by_name("deepsjeng").unwrap();
    let prog = (w.build)(&WorkloadParams { seed: 2, iters: 30 });
    assert!(prog.insts.iter().any(|i| matches!(i, Inst::Call { .. })));
    assert!(prog.insts.iter().filter(|i| matches!(i, Inst::Ret)).count() >= 2);
    let r = run_variant(Variant::Ooo, &prog, MAX).unwrap();
    assert!(
        r.stats.committed_branches > 500,
        "recursion means many calls/rets"
    );
}

#[test]
fn exchange2_is_cache_resident() {
    let r = run("exchange2", 60);
    assert!(
        r.mem_stats.l1d.miss_ratio() < 0.02,
        "the 9x9 grid must stay in L1 (miss ratio {:.4})",
        r.mem_stats.l1d.miss_ratio()
    );
}

#[test]
fn xz_trip_counts_are_data_dependent() {
    // Two seeds must give different retired-instruction counts for the
    // same iteration count — the scan length depends on the data.
    let w = by_name("xz").unwrap();
    let a = (w.build)(&WorkloadParams { seed: 1, iters: 40 });
    let b = (w.build)(&WorkloadParams { seed: 9, iters: 40 });
    let mut ia = Interp::new(&a);
    let mut ib = Interp::new(&b);
    let ra = ia.run(MAX).unwrap().retired;
    let rb = ib.run(MAX).unwrap().retired;
    assert_ne!(ra, rb, "match lengths must vary with data");
}

#[test]
fn omnetpp_scatters_memory_accesses() {
    let r = run("omnetpp", 80);
    // The event array is 32 KiB; the scan pattern hops around it, so
    // accesses spread beyond a couple of lines but stay mostly cached.
    assert!(r.stats.committed_loads > 1000);
    let per_branch = r.stats.branch_mispredicts as f64 / r.stats.committed_branches as f64;
    assert!(
        per_branch > 0.05,
        "min-scan comparisons mispredict (rate {per_branch:.3})"
    );
}

#[test]
fn xalancbmk_serialises_on_loads() {
    // The tree walk is a load->branch->load chain: little instruction-level
    // parallelism compared with the independent SAD stream of x264.
    let tree = run("xalancbmk", 60);
    let sad = run("x264", 60);
    assert!(
        tree.stats.ilp() < sad.stats.ilp(),
        "tree walk ILP ({:.2}) must trail SAD ILP ({:.2})",
        tree.stats.ilp(),
        sad.stats.ilp()
    );
}
