//! # Synthetic SPEC CPU 2017-like workloads
//!
//! The paper evaluates NDA on SPEC CPU 2017, which is proprietary and
//! cannot ship with a reproduction. Following the substitution rule of
//! DESIGN.md §4, this crate provides ten deterministic kernels, each named
//! for the SPEC-rate program whose dominant micro-architectural behaviour
//! it models — pointer chasing (`mcf`), streaming (`lbm`), branchy integer
//! code (`gcc`), tree walks (`xalancbmk`), deep recursion (`deepsjeng`),
//! tight register loops (`exchange2`), indirect dispatch (`perlbench`),
//! SAD-style media loops (`x264`), event-set simulation (`omnetpp`) and
//! data-dependent match scanning (`xz`).
//!
//! NDA's overhead is a function of branch-resolution latency, store-address
//! latency and load-dependence density; the kernels span those axes, so the
//! *shape* of the paper's Fig 7 (which policy costs what, where in-order
//! lands) is preserved even though absolute CPI differs from real SPEC.
//!
//! Every kernel writes a checksum into memory at [`CHECKSUM_ADDR`] before
//! halting, so the differential test suites can verify each kernel runs
//! identically on every core model.
//!
//! ```
//! use nda_workloads::{all, WorkloadParams};
//!
//! let params = WorkloadParams::test(7);
//! for w in all() {
//!     let prog = (w.build)(&params);
//!     assert!(!prog.insts.is_empty(), "{} generates code", w.name);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod kernels;

use nda_isa::Program;

/// Address every kernel stores its checksum to before halting.
pub const CHECKSUM_ADDR: u64 = 0x000F_0000;

/// Base address of each kernel's data region.
pub const DATA_BASE: u64 = 0x0100_0000;

/// Workload sizing and seeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Seed controlling data contents and branch patterns. Different seeds
    /// act as independent SMARTS-style samples of the same workload.
    pub seed: u64,
    /// Outer iteration count (roughly proportional to committed
    /// instructions).
    pub iters: u64,
}

impl WorkloadParams {
    /// Small sizing for (debug-build) tests.
    pub fn test(seed: u64) -> WorkloadParams {
        WorkloadParams { seed, iters: 40 }
    }

    /// Benchmark sizing used by the Fig 7 harness.
    pub fn bench(seed: u64) -> WorkloadParams {
        WorkloadParams { seed, iters: 400 }
    }
}

/// One synthetic kernel.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (the SPEC program it models).
    pub name: &'static str,
    /// The dominant behaviour this kernel reproduces.
    pub behaviour: &'static str,
    /// Program generator.
    pub build: fn(&WorkloadParams) -> Program,
}

/// All ten kernels, in the order reported by the benches.
pub fn all() -> &'static [Workload] {
    &[
        Workload {
            name: "mcf",
            behaviour: "pointer chasing, high MLP",
            build: kernels::mcf::build,
        },
        Workload {
            name: "lbm",
            behaviour: "streaming reads/writes",
            build: kernels::lbm::build,
        },
        Workload {
            name: "gcc",
            behaviour: "branchy integer + hash tables",
            build: kernels::gcc::build,
        },
        Workload {
            name: "xalancbmk",
            behaviour: "tree walk, data-dependent branches",
            build: kernels::xalancbmk::build,
        },
        Workload {
            name: "deepsjeng",
            behaviour: "deep recursion, RAS pressure",
            build: kernels::deepsjeng::build,
        },
        Workload {
            name: "exchange2",
            behaviour: "tight register loops, L1-resident",
            build: kernels::exchange2::build,
        },
        Workload {
            name: "perlbench",
            behaviour: "indirect dispatch, BTB pressure",
            build: kernels::perlbench::build,
        },
        Workload {
            name: "x264",
            behaviour: "SAD loops, predictable branches",
            build: kernels::x264::build,
        },
        Workload {
            name: "omnetpp",
            behaviour: "event-set scan, unpredictable branches",
            build: kernels::omnetpp::build,
        },
        Workload {
            name: "xz",
            behaviour: "data-dependent match scanning",
            build: kernels::xz::build,
        },
    ]
}

/// Look a kernel up by name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    all().iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn ten_kernels_registered() {
        assert_eq!(all().len(), 10);
    }

    #[test]
    fn by_name_finds_each() {
        for w in all() {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn kernels_are_deterministic_per_seed() {
        for w in all() {
            let a = (w.build)(&WorkloadParams::test(3));
            let b = (w.build)(&WorkloadParams::test(3));
            assert_eq!(a.insts, b.insts, "{}", w.name);
            let c = (w.build)(&WorkloadParams::test(4));
            // Data (at least) must differ across seeds.
            assert!(
                a.insts != c.insts || a.data != c.data,
                "{}: seed ignored",
                w.name
            );
        }
    }

    #[test]
    fn kernels_halt_on_the_reference_interpreter() {
        for w in all() {
            let p = (w.build)(&WorkloadParams::test(1));
            let mut i = Interp::new(&p);
            let exit = i
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(exit.halted, "{}", w.name);
            assert!(
                exit.retired > 500,
                "{}: trivially short ({})",
                w.name,
                exit.retired
            );
        }
    }

    #[test]
    fn kernels_write_checksums() {
        for w in all() {
            let p = (w.build)(&WorkloadParams::test(2));
            let mut i = Interp::new(&p);
            i.run(20_000_000).unwrap();
            // A zero checksum would suggest dead code; all kernels
            // accumulate something nonzero.
            assert_ne!(i.mem.read(CHECKSUM_ADDR, 8), 0, "{}: zero checksum", w.name);
        }
    }

    #[test]
    fn iters_scale_work() {
        for w in all() {
            let small = (w.build)(&WorkloadParams { seed: 1, iters: 10 });
            let large = (w.build)(&WorkloadParams { seed: 1, iters: 80 });
            let mut si = Interp::new(&small);
            let mut li = Interp::new(&large);
            let s = si.run(50_000_000).unwrap().retired;
            let l = li.run(50_000_000).unwrap().retired;
            assert!(l > s * 2, "{}: iters barely scale ({s} -> {l})", w.name);
        }
    }
}
