//! `mcf`-like: pointer chasing over a DRAM-sized working set.
//!
//! Four independent chains chase a random permutation cycle laid out at
//! cache-line stride over a 4 MiB region — twice the L2 — so the chains
//! generate concurrent off-chip misses (the paper's MLP discussion,
//! Fig 9b). Dependent loads dominate, making this the workload class where
//! NDA's load restriction hurts most.

use super::util::{self, ACC, BASE, CTR};
use crate::WorkloadParams;
use nda_isa::{Asm, Program, Reg};

/// Number of line-sized node slots (4 MiB footprint).
const NODES: usize = 1 << 16;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters, 0);

    // Node i stores its successor index at byte offset i*64.
    let next = util::permutation_cycle(p.seed, 0x6d_6366, NODES);
    let mut bytes = vec![0u8; NODES * 64];
    for (i, n) in next.iter().enumerate() {
        bytes[i * 64..i * 64 + 8].copy_from_slice(&n.to_le_bytes());
    }
    asm.data(crate::DATA_BASE, &bytes);

    // Four chase registers start at well-separated points of the cycle.
    let chasers = [Reg::X2, Reg::X3, Reg::X4, Reg::X5];
    for (k, r) in chasers.iter().enumerate() {
        asm.li(*r, (k * (NODES / 4)) as u64);
    }

    let top = asm.here_label();
    for r in chasers {
        asm.shli(Reg::X28, r, 6);
        asm.add(Reg::X28, Reg::X28, BASE);
        asm.ld8(r, Reg::X28, 0);
        asm.add(ACC, ACC, r);
    }
    // Data-dependent branch on a chased (off-chip) value: real mcf checks
    // arc costs after every pointer step. The branch stays unresolved for
    // the whole miss latency — exactly the long unsafe window NDA's
    // propagation policies restrict.
    let even = asm.new_label();
    asm.andi(Reg::X28, chasers[0], 1);
    asm.beq(Reg::X28, Reg::X0, even);
    asm.alui(nda_isa::AluOp::Xor, ACC, ACC, 0x55);
    asm.bind(even);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("mcf kernel assembles")
}
