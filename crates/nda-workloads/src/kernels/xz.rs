//! `xz`-like: data-dependent match scanning.
//!
//! A compressor's match finder: compare the byte stream at position `i`
//! with the stream at `i + dist`, extending the match while bytes agree.
//! The loop trip count is data-dependent, so the exit branch is
//! fundamentally unpredictable — long wrong paths, heavy squashing.

use super::util::{self, ACC, BASE, CTR};
use crate::WorkloadParams;
use nda_isa::{Asm, Program, Reg};

/// Stream bytes (power of two; scanning stays in the first half).
const STREAM: usize = 8192;
/// Fixed match distance.
const DIST: i64 = 256;
/// Maximum match length probed.
const MAX_LEN: u64 = 16;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 8, 0);
    // Only four distinct byte values -> frequent short matches.
    let stream: Vec<u8> = util::random_bytes(p.seed, 0x787a, STREAM)
        .iter()
        .map(|b| b & 3)
        .collect();
    asm.data(crate::DATA_BASE, &stream);

    asm.li(Reg::X2, 0); // position i

    let top = asm.here_label();
    let done = asm.new_label();
    asm.li(Reg::X3, 0); // match length
    asm.add(Reg::X28, BASE, Reg::X2);
    let scan = asm.here_label();
    asm.add(Reg::X29, Reg::X28, Reg::X3);
    asm.ld1(Reg::X4, Reg::X29, 0);
    asm.ld1(Reg::X5, Reg::X29, DIST);
    asm.bne(Reg::X4, Reg::X5, done); // data-dependent exit
    asm.addi(Reg::X3, Reg::X3, 1);
    asm.li(Reg::X6, MAX_LEN);
    asm.bltu(Reg::X3, Reg::X6, scan);
    asm.bind(done);
    asm.add(ACC, ACC, Reg::X3);
    // Advance past the match.
    asm.addi(Reg::X2, Reg::X2, 1);
    asm.add(Reg::X2, Reg::X2, Reg::X3);
    asm.andi(Reg::X2, Reg::X2, (STREAM as u64 / 2) - 1);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("xz kernel assembles")
}
