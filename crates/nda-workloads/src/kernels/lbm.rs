//! `lbm`-like: streaming reads and writes over large arrays.
//!
//! Sequential loads from one array, a short arithmetic kernel, sequential
//! stores to a second array — high spatial locality, long store streams.
//! Bypass Restriction's unresolved-store borders are exercised heavily
//! here.

use super::util::{self, ACC, BASE, BASE2, CTR};
use crate::WorkloadParams;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Words per array (256 KiB each).
const WORDS: usize = 1 << 15;
const MASK: u64 = (WORDS as u64 * 8) - 1;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters, WORDS as u64 * 8);
    asm.data_u64s(
        crate::DATA_BASE,
        &util::random_words(p.seed, 0x6c_626d, WORDS),
    );

    asm.li(Reg::X2, 0); // byte offset

    let top = asm.here_label();
    // Unrolled 8-element stream step: b[i] = 3*a[i] + a[i+8] ^ acc.
    for k in 0..8i64 {
        asm.add(Reg::X28, BASE, Reg::X2);
        asm.ld8(Reg::X3, Reg::X28, k * 8);
        asm.ld8(Reg::X4, Reg::X28, k * 8 + 64);
        asm.alui(AluOp::Mul, Reg::X5, Reg::X3, 3);
        asm.add(Reg::X5, Reg::X5, Reg::X4);
        asm.add(Reg::X29, BASE2, Reg::X2);
        asm.st8(Reg::X5, Reg::X29, k * 8);
        asm.alu(AluOp::Xor, ACC, ACC, Reg::X5);
    }
    // One boundary check per block on streamed (loaded) data, as lbm's
    // obstacle-cell test does: unresolved until the block's first load
    // completes.
    let no_adjust = asm.new_label();
    asm.andi(Reg::X6, Reg::X3, 3);
    asm.bne(Reg::X6, Reg::X0, no_adjust);
    asm.addi(ACC, ACC, 1);
    asm.bind(no_adjust);
    asm.addi(Reg::X2, Reg::X2, 64);
    asm.andi(Reg::X2, Reg::X2, MASK & !63);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("lbm kernel assembles")
}
