//! `x264`-like: branch-free SAD (sum of absolute differences) loops.
//!
//! Media kernels stream byte data through short, perfectly-predictable
//! loops with branch-free absolute values — the best case for every NDA
//! policy because almost nothing is ever unsafe for long.

use super::util::{self, ACC, BASE, BASE2, CTR};
use crate::WorkloadParams;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Bytes per frame buffer.
const FRAME: usize = 4096;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 8, FRAME as u64);
    asm.data(
        crate::DATA_BASE,
        &util::random_bytes(p.seed, 0x78323634, FRAME),
    );
    asm.data(
        crate::DATA_BASE + FRAME as u64,
        &util::random_bytes(p.seed, 0x78323635, FRAME),
    );

    asm.li(Reg::X2, 0); // block offset

    let top = asm.here_label();
    // 8-byte SAD block, branch-free abs: m = d >> 63; |d| = (d ^ m) - m.
    for k in 0..8i64 {
        asm.add(Reg::X28, BASE, Reg::X2);
        asm.ld1(Reg::X3, Reg::X28, k);
        asm.add(Reg::X29, BASE2, Reg::X2);
        asm.ld1(Reg::X4, Reg::X29, k);
        asm.sub(Reg::X5, Reg::X3, Reg::X4);
        asm.alui(AluOp::Sar, Reg::X6, Reg::X5, 63);
        asm.alu(AluOp::Xor, Reg::X5, Reg::X5, Reg::X6);
        asm.sub(Reg::X5, Reg::X5, Reg::X6);
        asm.add(ACC, ACC, Reg::X5);
    }
    asm.addi(Reg::X2, Reg::X2, 8);
    asm.andi(Reg::X2, Reg::X2, (FRAME as u64) - 8);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("x264 kernel assembles")
}
