//! `perlbench`-like: a bytecode interpreter with indirect dispatch.
//!
//! The canonical BTB workload: a dispatch loop indirect-calls one of eight
//! handlers selected by a random opcode stream, so the single dispatch site
//! keeps overwriting its BTB entry (exactly the conflict behaviour the
//! paper's Listing-3 covert channel relies on).

use super::util::{self, ACC, BASE, BASE2, CTR};
use crate::WorkloadParams;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Opcode-stream length (power of two).
const CODE_LEN: u64 = 1024;
/// Number of distinct handlers.
const HANDLERS: usize = 8;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 8, CODE_LEN);
    // Opcode stream: one byte per op, 0..8.
    let code: Vec<u8> = util::random_bytes(p.seed, 0x7065726c, CODE_LEN as usize)
        .iter()
        .map(|b| b % 8)
        .collect();
    asm.data(crate::DATA_BASE, &code);

    // Handler function-pointer table lives at BASE2; it is filled at
    // startup from label fixups (programs cannot know instruction indices
    // at data-generation time).
    let handlers: Vec<_> = (0..HANDLERS).map(|_| asm.new_label()).collect();
    let start = asm.new_label();
    for (k, h) in handlers.iter().enumerate() {
        asm.li_label(Reg::X28, *h);
        asm.st8(Reg::X28, BASE2, (k * 8) as i64);
    }
    asm.li(Reg::X2, 0); // instruction pointer
    asm.jmp(start);

    // Eight small handlers with distinct bodies.
    for (k, h) in handlers.iter().enumerate() {
        asm.bind(*h);
        match k % 4 {
            0 => {
                asm.addi(ACC, ACC, (k + 1) as u64);
            }
            1 => {
                asm.alui(AluOp::Xor, ACC, ACC, 0x5a5a ^ k as u64);
            }
            2 => {
                asm.alui(AluOp::Mul, Reg::X9, ACC, 3);
                asm.alui(AluOp::Shr, Reg::X9, Reg::X9, 2);
                asm.add(ACC, ACC, Reg::X9);
            }
            _ => {
                asm.alui(AluOp::Shl, Reg::X9, ACC, 1);
                asm.alu(AluOp::Xor, ACC, ACC, Reg::X9);
                asm.alui(AluOp::Shr, ACC, ACC, 1);
            }
        }
        asm.ret();
    }

    // Dispatch loop.
    asm.bind(start);
    let top = asm.here_label();
    asm.add(Reg::X3, BASE, Reg::X2);
    asm.ld1(Reg::X4, Reg::X3, 0); // opcode
    asm.shli(Reg::X5, Reg::X4, 3);
    asm.add(Reg::X5, Reg::X5, BASE2);
    asm.ld8(Reg::X6, Reg::X5, 0); // handler address
    asm.call_ind(Reg::X6);
    asm.addi(Reg::X2, Reg::X2, 1);
    asm.andi(Reg::X2, Reg::X2, CODE_LEN - 1);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("perlbench kernel assembles")
}
