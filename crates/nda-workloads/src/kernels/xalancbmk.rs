//! `xalancbmk`-like: tree walking with data-dependent descent.
//!
//! Each outer iteration walks twelve levels of a randomized binary tree;
//! the direction at every level depends on the loaded key, so every step
//! is a load feeding a branch — the access-then-steer pattern NDA's
//! permissive propagation targets.

use super::util::{self, ACC, BASE, BASE2, CTR};
use crate::WorkloadParams;
use nda_isa::{Asm, Program, Reg};

/// Tree nodes.
const NODES: usize = 1 << 12;
/// Levels walked per outer iteration.
const DEPTH: u64 = 12;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 4, NODES as u64 * 8);
    // Keys at BASE (one word per node); children at BASE2 (two words per
    // node: left at 2i, right at 2i+1), both random but in-range.
    asm.data_u64s(
        crate::DATA_BASE,
        &util::random_words(p.seed, 0x78616c, NODES),
    );
    let kids: Vec<u64> = util::random_words(p.seed, 0x6b6964, 2 * NODES)
        .into_iter()
        .map(|w| w % NODES as u64)
        .collect();
    asm.data_u64s(crate::DATA_BASE + NODES as u64 * 8, &kids);

    let top = asm.here_label();
    asm.li(Reg::X2, 0); // current node
    asm.li(Reg::X7, DEPTH);
    let walk = asm.here_label();
    // key = keys[node]
    asm.shli(Reg::X3, Reg::X2, 3);
    asm.add(Reg::X3, Reg::X3, BASE);
    asm.ld8(Reg::X4, Reg::X3, 0);
    asm.add(ACC, ACC, Reg::X4);
    // Descend left or right via a *branch* on the loaded key — the
    // canonical tree-walk control flow. The branch is data-dependent
    // (essentially random) and stays unresolved until the key load
    // completes, putting the child load in the unsafe window.
    let right = asm.new_label();
    let cont = asm.new_label();
    asm.andi(Reg::X5, Reg::X4, 1);
    asm.shli(Reg::X6, Reg::X2, 4);
    asm.add(Reg::X6, Reg::X6, BASE2);
    asm.bne(Reg::X5, Reg::X0, right);
    asm.ld8(Reg::X2, Reg::X6, 0); // left child
    asm.jmp(cont);
    asm.bind(right);
    asm.ld8(Reg::X2, Reg::X6, 8); // right child
    asm.bind(cont);
    asm.subi(Reg::X7, Reg::X7, 1);
    asm.bne(Reg::X7, Reg::X0, walk);

    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("xalancbmk kernel assembles")
}
