//! `deepsjeng`-like: deep recursion with a software stack.
//!
//! A recursive search skeleton: each call pushes the link register, mixes
//! bits, recurses, pops and returns — sixteen frames deep, saturating the
//! 16-entry RAS exactly the way game-tree search does.

use super::util::{self, ACC, CTR};
use crate::WorkloadParams;
use nda_isa::reg::RA;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Recursion depth per outer iteration (matches the RAS capacity).
const DEPTH: u64 = 16;
/// Software stack pointer register.
const SP: Reg = Reg::X19;
/// Stack region (grows down from here).
const STACK_TOP: u64 = 0x00E0_0000;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 4, 0);
    asm.data_u64s(crate::DATA_BASE, &util::random_words(p.seed, 0x646a, 16));
    asm.li(SP, STACK_TOP);
    asm.li(Reg::X9, p.seed | 1);

    let over = asm.new_label();
    let f = asm.new_label();
    asm.jmp(over);

    // fn f(depth in X2): bit-mix, recurse, unwind.
    asm.bind(f);
    let leaf = asm.new_label();
    asm.beq(Reg::X2, Reg::X0, leaf);
    asm.st8(RA, SP, 0);
    asm.subi(SP, SP, 8);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.alu(AluOp::Xor, ACC, ACC, Reg::X2);
    asm.alui(AluOp::Shl, Reg::X8, Reg::X9, 1);
    asm.alu(AluOp::Xor, Reg::X9, Reg::X9, Reg::X8);
    asm.add(ACC, ACC, Reg::X9);
    asm.call(f);
    asm.addi(SP, SP, 8);
    asm.ld8(RA, SP, 0);
    asm.addi(ACC, ACC, 1);
    asm.ret();
    asm.bind(leaf);
    asm.ret();

    asm.bind(over);
    let top = asm.here_label();
    asm.li(Reg::X2, DEPTH);
    asm.call(f);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("deepsjeng kernel assembles")
}
