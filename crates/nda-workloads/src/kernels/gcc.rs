//! `gcc`-like: branchy integer code with hash-table updates.
//!
//! A multiplicative hash feeds data-dependent (unpredictable) branches and
//! random read-modify-write traffic into a 64 KiB table — the misprediction
//! squashes and short unsafe windows typical of compiler workloads.

use super::util::{self, ACC, BASE, CTR};
use crate::WorkloadParams;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Table words (64 KiB).
const TABLE_WORDS: usize = 1 << 13;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 8, 0);
    asm.data_u64s(
        crate::DATA_BASE,
        &util::random_words(p.seed, 0x676_363, TABLE_WORDS),
    );

    asm.li(Reg::X2, p.seed | 1); // hash state
    asm.li(Reg::X9, 0x9E37_79B9_7F4A_7C15); // mix constant

    let top = asm.here_label();
    let odd = asm.new_label();
    let join = asm.new_label();
    let deep = asm.new_label();
    let join2 = asm.new_label();

    asm.alu(AluOp::Mul, Reg::X2, Reg::X2, Reg::X9);
    asm.alui(AluOp::Shr, Reg::X3, Reg::X2, 17);
    asm.alu(AluOp::Xor, Reg::X2, Reg::X2, Reg::X3);

    // Data-dependent branch: essentially a coin flip per iteration.
    asm.andi(Reg::X4, Reg::X2, 1);
    asm.bne(Reg::X4, Reg::X0, odd);
    asm.alui(AluOp::Shr, Reg::X5, Reg::X2, 7);
    asm.add(ACC, ACC, Reg::X5);
    asm.jmp(join);
    asm.bind(odd);
    asm.alu(AluOp::Xor, ACC, ACC, Reg::X2);
    // A second, nested unpredictable branch.
    asm.andi(Reg::X4, Reg::X2, 2);
    asm.bne(Reg::X4, Reg::X0, deep);
    asm.addi(ACC, ACC, 3);
    asm.jmp(join2);
    asm.bind(deep);
    asm.alui(AluOp::Sub, ACC, ACC, 1);
    asm.bind(join2);
    asm.bind(join);

    // Random read-modify-write into the table, with a branch on the
    // *loaded* value (symbol-table hit/miss checks in real gcc): the
    // branch is unresolved until the table access completes.
    asm.alui(AluOp::Shr, Reg::X6, Reg::X2, 13);
    asm.shli(Reg::X6, Reg::X6, 3);
    asm.andi(Reg::X6, Reg::X6, (TABLE_WORDS as u64 * 8) - 8);
    asm.add(Reg::X6, Reg::X6, BASE);
    asm.ld8(Reg::X7, Reg::X6, 0);
    let found = asm.new_label();
    let rmw_done = asm.new_label();
    asm.andi(Reg::X8, Reg::X7, 1);
    asm.bne(Reg::X8, Reg::X0, found);
    asm.addi(Reg::X7, Reg::X7, 1);
    asm.jmp(rmw_done);
    asm.bind(found);
    asm.addi(Reg::X7, Reg::X7, 2);
    asm.add(ACC, ACC, Reg::X7);
    asm.bind(rmw_done);
    asm.st8(Reg::X7, Reg::X6, 0);

    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("gcc kernel assembles")
}
