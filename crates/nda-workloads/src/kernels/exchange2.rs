//! `exchange2`-like: tight nested loops over an L1-resident grid.
//!
//! A 9x9 integer grid scanned by doubly-nested counted loops with highly
//! predictable branches and cache-resident data — the workload class where
//! even strict NDA costs little because branches resolve quickly.

use super::util::{self, ACC, BASE, CTR};
use crate::WorkloadParams;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 4, 0);
    let grid: Vec<u64> = util::random_words(p.seed, 0x6578, 81)
        .iter()
        .map(|w| w % 9 + 1)
        .collect();
    asm.data_u64s(crate::DATA_BASE, &grid);

    let top = asm.here_label();
    asm.li(Reg::X2, 9); // i counter
    let iloop = asm.here_label();
    asm.li(Reg::X3, 9); // j counter
    let jloop = asm.here_label();
    // idx = ((9 - i) * 9 + (9 - j)); cell = grid[idx]
    asm.li(Reg::X4, 9);
    asm.sub(Reg::X4, Reg::X4, Reg::X2);
    asm.alui(AluOp::Mul, Reg::X4, Reg::X4, 9);
    asm.li(Reg::X5, 9);
    asm.sub(Reg::X5, Reg::X5, Reg::X3);
    asm.add(Reg::X4, Reg::X4, Reg::X5);
    asm.shli(Reg::X4, Reg::X4, 3);
    asm.add(Reg::X4, Reg::X4, BASE);
    asm.ld8(Reg::X6, Reg::X4, 0);
    // Mostly-predictable comparison: cells are 1..=9, threshold 5.
    let small = asm.new_label();
    let next = asm.new_label();
    asm.li(Reg::X7, 5);
    asm.bltu(Reg::X6, Reg::X7, small);
    asm.add(ACC, ACC, Reg::X6);
    asm.jmp(next);
    asm.bind(small);
    asm.alu(AluOp::Xor, ACC, ACC, Reg::X6);
    asm.bind(next);
    // Rotate the cell (store keeps the SQ busy but L1-resident).
    asm.addi(Reg::X6, Reg::X6, 1);
    asm.st8(Reg::X6, Reg::X4, 0);
    asm.subi(Reg::X3, Reg::X3, 1);
    asm.bne(Reg::X3, Reg::X0, jloop);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.bne(Reg::X2, Reg::X0, iloop);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("exchange2 kernel assembles")
}
