//! The ten kernel generators.
//!
//! Shared register conventions (see [`util`]): `x20` data base, `x21`
//! secondary base, `x22` checksum address, `x23` outer-loop counter,
//! `x2..x15` scratch. Every kernel stores its accumulator to
//! [`crate::CHECKSUM_ADDR`] and halts.

pub mod deepsjeng;
pub mod exchange2;
pub mod gcc;
pub mod lbm;
pub mod mcf;
pub mod omnetpp;
pub mod perlbench;
pub mod util;
pub mod x264;
pub mod xalancbmk;
pub mod xz;
