//! `omnetpp`-like: event-set scanning with unpredictable comparisons.
//!
//! Each iteration scans an eight-slot window of a large event array for its
//! minimum (data-dependent, poorly-predictable branches), consumes it, and
//! advances by a data-dependent stride — the discrete-event-simulation mix
//! of scattered loads and squash-heavy control flow.

use super::util::{self, ACC, BASE, CTR};
use crate::WorkloadParams;
use nda_isa::{AluOp, Asm, Program, Reg};

/// Event-array words.
const EVENTS: u64 = 4096;

/// Build the kernel.
pub fn build(p: &WorkloadParams) -> Program {
    let mut asm = Asm::new();
    util::prologue(&mut asm, p.iters * 4, 0);
    asm.data_u64s(
        crate::DATA_BASE,
        &util::random_words(p.seed, 0x6f6d6e, EVENTS as usize),
    );

    asm.li(Reg::X2, 0); // window base (byte offset)
    asm.li(Reg::X9, 0x2545_F491_4F6C_DD1D); // mix constant

    let top = asm.here_label();
    // Find the min of 8 slots with real compare-and-branch.
    asm.li(Reg::X3, u64::MAX); // current min
    asm.li(Reg::X8, 0); // min slot address
    for k in 0..8i64 {
        let skip = asm.new_label();
        asm.add(Reg::X28, BASE, Reg::X2);
        asm.ld8(Reg::X4, Reg::X28, k * 8);
        asm.bgeu(Reg::X4, Reg::X3, skip);
        asm.mov(Reg::X3, Reg::X4);
        asm.addi(Reg::X8, Reg::X28, k as u64 * 8);
        asm.bind(skip);
    }
    asm.add(ACC, ACC, Reg::X3);
    // Replace the consumed minimum with a remixed value.
    asm.alu(AluOp::Mul, Reg::X5, Reg::X3, Reg::X9);
    asm.alui(AluOp::Shr, Reg::X6, Reg::X5, 7);
    asm.alu(AluOp::Xor, Reg::X5, Reg::X5, Reg::X6);
    asm.st8(Reg::X5, Reg::X8, 0);
    // Advance by a data-dependent stride.
    asm.andi(Reg::X7, Reg::X3, 0x3f8);
    asm.add(Reg::X2, Reg::X2, Reg::X7);
    asm.andi(Reg::X2, Reg::X2, (EVENTS * 8) - 64 - 8);
    asm.andi(Reg::X2, Reg::X2, !7u64);
    asm.subi(CTR, CTR, 1);
    asm.bne(CTR, Reg::X0, top);

    util::epilogue(&mut asm);
    asm.assemble().expect("omnetpp kernel assembles")
}
