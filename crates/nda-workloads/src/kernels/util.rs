//! Shared helpers for the kernel generators.

use crate::{CHECKSUM_ADDR, DATA_BASE};
use nda_isa::{Asm, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Data-region base register.
pub const BASE: Reg = Reg::X20;
/// Secondary data-region base register.
pub const BASE2: Reg = Reg::X21;
/// Checksum-address register.
pub const CHK: Reg = Reg::X22;
/// Outer-loop counter register.
pub const CTR: Reg = Reg::X23;
/// Accumulator register stored to the checksum slot at exit.
pub const ACC: Reg = Reg::X10;

/// Seeded RNG for data generation.
pub fn rng(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
}

/// Random u64 words for a data segment.
pub fn random_words(seed: u64, salt: u64, n: usize) -> Vec<u64> {
    let mut r = rng(seed, salt);
    (0..n).map(|_| r.gen()).collect()
}

/// Random bytes for a data segment.
pub fn random_bytes(seed: u64, salt: u64, n: usize) -> Vec<u8> {
    let mut r = rng(seed, salt);
    let mut v = vec![0u8; n];
    r.fill(&mut v[..]);
    v
}

/// Emit the common prologue: base registers, checksum pointer, outer
/// counter, zeroed accumulator.
pub fn prologue(asm: &mut Asm, iters: u64, second_base_off: u64) {
    asm.li(BASE, DATA_BASE);
    asm.li(BASE2, DATA_BASE + second_base_off);
    asm.li(CHK, CHECKSUM_ADDR);
    asm.li(CTR, iters);
    asm.li(ACC, 1); // nonzero so an untouched accumulator is still visible
}

/// Emit the common epilogue: store the accumulator and halt.
pub fn epilogue(asm: &mut Asm) {
    asm.st8(ACC, CHK, 0);
    asm.halt();
}

/// A random permutation cycle over `n` slots: `perm[i]` is the successor of
/// slot `i`, and following it visits every slot (one big cycle — the
/// pointer-chasing pattern that defeats prefetching).
pub fn permutation_cycle(seed: u64, salt: u64, n: usize) -> Vec<u64> {
    let mut r = rng(seed, salt);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = r.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![0u64; n];
    for k in 0..n {
        next[order[k]] = order[(k + 1) % n] as u64;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_single_cycle() {
        let n = 64;
        let next = permutation_cycle(5, 1, n);
        let mut seen = vec![false; n];
        let mut at = 0usize;
        for _ in 0..n {
            assert!(!seen[at], "revisited before covering all");
            seen[at] = true;
            at = next[at] as usize;
        }
        assert_eq!(at, 0, "returns to start after n steps");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rng_is_deterministic() {
        assert_eq!(random_words(1, 2, 8), random_words(1, 2, 8));
        assert_ne!(random_words(1, 2, 8), random_words(2, 2, 8));
    }
}
