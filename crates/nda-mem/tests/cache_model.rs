//! Property test: the set-associative tag store must agree with a naive
//! reference model (per-set vectors with explicit LRU ordering) on
//! arbitrary access/invalidate sequences.

use nda_mem::{CacheConfig, SetAssocCache};
use proptest::prelude::*;
use std::collections::VecDeque;

/// The obviously-correct model: one MRU-ordered list per set.
struct ModelCache {
    sets: Vec<VecDeque<u64>>, // front = MRU
    ways: usize,
    line: u64,
}

impl ModelCache {
    fn new(cfg: CacheConfig) -> ModelCache {
        ModelCache {
            sets: vec![VecDeque::new(); cfg.sets()],
            ways: cfg.ways,
            line: cfg.line_bytes,
        }
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line;
        ((line % self.sets.len() as u64) as usize, line)
    }

    fn access(&mut self, addr: u64) -> bool {
        let (s, tag) = self.split(addr);
        let set = &mut self.sets[s];
        if let Some(i) = set.iter().position(|&t| t == tag) {
            set.remove(i);
            set.push_front(tag);
            true
        } else {
            set.push_front(tag);
            if set.len() > self.ways {
                set.pop_back();
            }
            false
        }
    }

    fn contains(&self, addr: u64) -> bool {
        let (s, tag) = self.split(addr);
        self.sets[s].contains(&tag)
    }

    fn invalidate(&mut self, addr: u64) {
        let (s, tag) = self.split(addr);
        self.sets[s].retain(|&t| t != tag);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Install(u64),
    Invalidate(u64),
    Probe(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small address universe forces set conflicts and evictions.
    let addr = (0u64..4096).prop_map(|a| a * 32);
    prop_oneof![
        4 => addr.clone().prop_map(Op::Access),
        2 => addr.clone().prop_map(Op::Install),
        1 => addr.clone().prop_map(Op::Invalidate),
        2 => addr.prop_map(Op::Probe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tag_store_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let cfg = CacheConfig { size_bytes: 2048, line_bytes: 64, ways: 4, latency: 1 };
        let mut dut = SetAssocCache::new(cfg);
        let mut model = ModelCache::new(cfg);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Access(a) => {
                    let hit = dut.access(a);
                    let want = model.access(a);
                    prop_assert_eq!(hit, want, "op {}: access({:#x}) hit mismatch", i, a);
                }
                Op::Install(a) => {
                    dut.install(a);
                    model.access(a); // install == allocate + LRU touch
                }
                Op::Invalidate(a) => {
                    dut.invalidate(a);
                    model.invalidate(a);
                }
                Op::Probe(a) => {
                    prop_assert_eq!(dut.probe(a), model.contains(a),
                        "op {}: probe({:#x}) mismatch", i, a);
                }
            }
        }
        // Final full-state agreement over the whole universe.
        for a in (0u64..4096).map(|a| a * 32) {
            prop_assert_eq!(dut.contains(a), model.contains(a), "final state at {:#x}", a);
        }
    }
}
