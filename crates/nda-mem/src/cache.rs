//! Set-associative tag store with true-LRU replacement.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Round-trip hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotonic use stamp for true-LRU.
    last_use: u64,
}

/// Exact snapshot of one cache line, with public fields so the persistent
/// checkpoint store (in `nda-core`) can encode it without this crate
/// depending on any serialization machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineState {
    /// Line tag (line index; the set mapping is re-derived from geometry).
    pub tag: u64,
    /// Whether the line is valid.
    pub valid: bool,
    /// LRU use stamp.
    pub last_use: u64,
}

/// Exact snapshot of a [`SetAssocCache`] (tags, LRU stamps, tick, stats).
/// Produced by [`SetAssocCache::dump_state`]; restoring through
/// [`SetAssocCache::from_state`] with the same geometry yields a cache that
/// compares equal to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// All lines in set-major order (`set * ways + way`).
    pub lines: Vec<LineState>,
    /// Monotonic LRU tick.
    pub tick: u64,
    /// Accumulated hit/miss counters.
    pub stats: CacheStats,
}

/// A set-associative, true-LRU tag store.
///
/// The store tracks presence and recency only; data bytes never enter it.
/// Speculative (wrong-path) fills are permitted and are *not* reverted on
/// squash — that is precisely the micro-architectural residue speculative
/// execution attacks exploit (paper §2).
#[derive(Debug, Clone, PartialEq)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// All lines in one flat allocation; set `s` occupies
    /// `s*ways .. (s+1)*ways`. Keeps a clone — taken per checkpoint and
    /// per detailed window in sampled simulation — one `memcpy` instead
    /// of one heap allocation per set (a 2 MiB L2 has 2048 sets).
    lines: Vec<Line>,
    num_sets: usize,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or non-power-of-two
    /// line size).
    pub fn new(cfg: CacheConfig) -> SetAssocCache {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.sets() > 0, "cache must have at least one set");
        SetAssocCache {
            lines: vec![Line::default(); cfg.ways * cfg.sets()],
            num_sets: cfg.sets(),
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.num_sets as u64) as usize;
        (set, line)
    }

    /// The lines of set `s`.
    #[inline]
    fn set(&self, s: usize) -> &[Line] {
        &self.lines[s * self.cfg.ways..][..self.cfg.ways]
    }

    /// `true` if the line containing `addr` is present. No state change.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.split(addr);
        self.set(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Normal access: returns `true` on hit. Updates LRU and allocates the
    /// line on miss (evicting true-LRU). Counts in [`CacheStats`].
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.split(addr);
        let ways = self.cfg.ways;
        let set = &mut self.lines[set * ways..][..ways];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = tick;
            self.stats.hits += 1;
            return true;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("ways > 0");
        *victim = Line {
            tag,
            valid: true,
            last_use: tick,
        };
        self.stats.misses += 1;
        false
    }

    /// Install the line containing `addr` (a fill arriving from the next
    /// level): allocates and refreshes LRU but does **not** count as an
    /// access in [`CacheStats`] — the originating miss was already counted.
    pub fn install(&mut self, addr: u64) {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.split(addr);
        let ways = self.cfg.ways;
        let set = &mut self.lines[set * ways..][..ways];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("ways > 0");
        *victim = Line {
            tag,
            valid: true,
            last_use: tick,
        };
    }

    /// Functional-warming touch (sampled simulation's fast-forward phase):
    /// allocate/LRU-refresh the line containing `addr` exactly as a
    /// serviced access would, but latency-free and without counting in
    /// [`CacheStats`] — warming shapes tag/LRU state for the detailed
    /// windows, it is not itself a measured access.
    pub fn warm_touch(&mut self, addr: u64) {
        self.install(addr);
    }

    /// Count a miss that was serviced without calling [`Self::access`]
    /// (the hierarchy counts misses at request time but installs lines at
    /// fill time).
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// InvisiSpec-style probe: reports hit/miss *without* allocating or
    /// touching LRU state, and without counting in [`CacheStats`].
    pub fn probe(&self, addr: u64) -> bool {
        self.contains(addr)
    }

    /// Invalidate the line containing `addr` (used by `clflush`).
    pub fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.split(addr);
        let ways = self.cfg.ways;
        for l in &mut self.lines[set * ways..][..ways] {
            if l.valid && l.tag == tag {
                l.valid = false;
            }
        }
    }

    /// Drop every line (used between sampling intervals).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Snapshot the full replacement state. See [`CacheState`].
    pub fn dump_state(&self) -> CacheState {
        CacheState {
            lines: self
                .lines
                .iter()
                .map(|l| LineState {
                    tag: l.tag,
                    valid: l.valid,
                    last_use: l.last_use,
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Rebuild a cache from a [`SetAssocCache::dump_state`] snapshot.
    /// Returns `None` when the snapshot's line count does not match the
    /// geometry of `cfg` — the checkpoint store uses this to refuse entries
    /// taken under a different hierarchy configuration.
    pub fn from_state(cfg: CacheConfig, state: &CacheState) -> Option<SetAssocCache> {
        let mut cache = SetAssocCache::new(cfg);
        if state.lines.len() != cache.lines.len() {
            return None;
        }
        for (l, s) in cache.lines.iter_mut().zip(&state.lines) {
            *l = Line {
                tag: s.tag,
                valid: s.valid,
                last_use: s.last_use,
            };
        }
        cache.tick = state.tick;
        cache.stats = state.stats;
        Some(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            latency: 4,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3f), "same line");
        assert!(!c.access(0x40), "next line maps to other set");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: addresses with line index even (2 sets): 0x000, 0x080, 0x100.
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // 0x080 is now LRU
        c.access(0x100); // evicts 0x080
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
        assert!(c.contains(0x100));
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = tiny();
        c.access(0x000);
        c.access(0x080);
        // Probing 0x000 must NOT refresh its LRU position.
        assert!(c.probe(0x000));
        let stats_before = c.stats();
        assert!(!c.probe(0x100));
        assert_eq!(c.stats(), stats_before, "probe must not count");
        c.access(0x100); // evicts 0x000 (still LRU despite the probe)
        assert!(!c.contains(0x000));
        assert!(c.contains(0x080));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0x0);
        c.invalidate(0x20); // same line
        assert!(!c.contains(0x0));
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = tiny();
        c.access(0x0);
        c.access(0x40);
        c.invalidate_all();
        assert!(!c.contains(0x0));
        assert!(!c.contains(0x40));
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.access(0x0);
        c.access(0x0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        SetAssocCache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 0,
            latency: 1,
        });
    }
}
