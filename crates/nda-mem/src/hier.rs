//! The two-level cache hierarchy plus DRAM.

use crate::cache::{CacheConfig, CacheState, CacheStats, SetAssocCache};
use crate::mlp::{MlpState, MlpTracker};
use crate::mshr::{MshrFile, MshrState};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// First-level cache hit.
    L1,
    /// Second-level cache hit.
    L2,
    /// Off-chip (DRAM) access.
    Mem,
}

/// Result of a data-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Round-trip latency in cycles from the access cycle.
    pub latency: u64,
    /// The level that provided the line.
    pub level: Level,
}

/// Hierarchy configuration (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemHierConfig {
    /// Instruction L1.
    pub l1i: CacheConfig,
    /// Data L1.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// DRAM response latency in cycles (50 ns at 2 GHz = 100).
    pub dram_latency: u64,
    /// Number of data-side MSHRs (bounds MLP).
    pub mshrs: usize,
    /// Next-line prefetch on data-side off-chip misses. Off by default
    /// (Table 3 has no prefetcher); the ablation benches turn it on.
    /// Prefetches are issued speculatively and — like every predictive
    /// structure the paper lists in §2 — are *not* reverted on squash.
    pub next_line_prefetch: bool,
}

impl MemHierConfig {
    /// The configuration of the paper's Table 3 at 2 GHz: 32 KiB 8-way L1s
    /// with 4-cycle round trip, 2 MiB 16-way L2 with 40-cycle round trip,
    /// 50 ns DRAM, 16 MSHRs.
    pub fn haswell_like() -> MemHierConfig {
        MemHierConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                latency: 4,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                line_bytes: 64,
                ways: 16,
                latency: 40,
            },
            dram_latency: 100,
            mshrs: 16,
            next_line_prefetch: false,
        }
    }

    /// A tiny hierarchy for unit tests (exaggerated conflict behaviour).
    pub fn tiny() -> MemHierConfig {
        MemHierConfig {
            l1i: CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                ways: 2,
                latency: 4,
            },
            l1d: CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                ways: 2,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 2048,
                line_bytes: 64,
                ways: 2,
                latency: 40,
            },
            dram_latency: 100,
            mshrs: 4,
            next_line_prefetch: false,
        }
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// L1I hit/miss counts.
    pub l1i: CacheStats,
    /// L1D hit/miss counts.
    pub l1d: CacheStats,
    /// L2 hit/miss counts.
    pub l2: CacheStats,
    /// Off-chip accesses performed.
    pub dram_accesses: u64,
    /// Prefetches issued (0 unless the prefetcher is enabled).
    pub prefetches: u64,
    /// MLP while >= 1 off-chip miss outstanding (Fig 9b definition).
    pub mlp: Option<f64>,
}

impl MemStats {
    /// Export every counter into `reg` under stable `mem.*` names. MLP is
    /// a derived ratio, not a counter, so it is intentionally excluded
    /// from the registry document (recompute it from the counters).
    pub fn export(&self, reg: &mut nda_stats::MetricsRegistry) {
        reg.counter("mem.l1i.hits", self.l1i.hits);
        reg.counter("mem.l1i.misses", self.l1i.misses);
        reg.counter("mem.l1d.hits", self.l1d.hits);
        reg.counter("mem.l1d.misses", self.l1d.misses);
        reg.counter("mem.l2.hits", self.l2.hits);
        reg.counter("mem.l2.misses", self.l2.misses);
        reg.counter("mem.dram_accesses", self.dram_accesses);
        reg.counter("mem.prefetches", self.prefetches);
    }
}

/// The cache hierarchy + DRAM timing model. See the crate docs for the
/// separation between timing (here) and architectural bytes
/// (`nda_isa::SparseMem`).
#[derive(Debug, Clone, PartialEq)]
pub struct MemHier {
    cfg: MemHierConfig,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    mshr: MshrFile,
    mlp: MlpTracker,
    dram_accesses: u64,
    prefetches: u64,
    /// Off-chip fills that have been requested but not yet arrived:
    /// `(line-base address, completion cycle)`. Applied lazily.
    pending_fills: Vec<(u64, u64)>,
    /// Extra cycles added to every data-side access (fault-injection knob:
    /// models transient contention/queuing without touching cache state).
    extra_latency: u64,
}

impl MemHier {
    /// Build an empty (cold) hierarchy.
    pub fn new(cfg: MemHierConfig) -> MemHier {
        MemHier {
            l1i: SetAssocCache::new(cfg.l1i),
            l1d: SetAssocCache::new(cfg.l1d),
            l2: SetAssocCache::new(cfg.l2),
            mshr: MshrFile::new(cfg.mshrs),
            mlp: MlpTracker::new(),
            dram_accesses: 0,
            prefetches: 0,
            pending_fills: Vec::new(),
            extra_latency: 0,
            cfg,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> MemHierConfig {
        self.cfg
    }

    /// Add `extra` cycles to every subsequent data-side access (0 restores
    /// nominal timing). A timing-only perturbation: architectural results
    /// must be unaffected, which is exactly what the fault-injection
    /// harness asserts.
    pub fn set_extra_latency(&mut self, extra: u64) {
        self.extra_latency = extra;
    }

    /// Data-side MSHR entries still in flight at `now` (retired entries are
    /// drained first).
    pub fn mshr_outstanding(&mut self, now: u64) -> usize {
        self.mshr.outstanding(now)
    }

    /// Install fills that completed at or before `now`.
    fn apply_fills(&mut self, now: u64) {
        let mut i = 0;
        while i < self.pending_fills.len() {
            let (addr, done) = self.pending_fills[i];
            if done <= now {
                self.l2.install(addr);
                self.l1d.install(addr);
                self.pending_fills.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Data-side access at cycle `now` (loads at execute, stores at
    /// commit). Fills caches on miss (at fill time) and updates LRU —
    /// including on the wrong path, which is the paper's d-cache covert
    /// channel.
    ///
    /// Returns `None` when every MSHR is busy and the access must retry.
    pub fn access_data(&mut self, addr: u64, now: u64) -> Option<DataAccess> {
        self.apply_fills(now);
        if self.l1d.probe(addr) {
            self.l1d.access(addr);
            return Some(DataAccess {
                latency: self.cfg.l1d.latency + self.extra_latency,
                level: Level::L1,
            });
        }
        if self.l2.probe(addr) {
            self.l1d.count_miss();
            self.l2.access(addr); // LRU update
            self.l1d.install(addr); // L1 fill
            return Some(DataAccess {
                latency: self.cfg.l1d.latency + self.cfg.l2.latency + self.extra_latency,
                level: Level::L2,
            });
        }
        // Off-chip: needs an MSHR. Reserve it *before* touching tag state so
        // a refused access leaves no residue.
        let line_addr = addr & !(self.cfg.l1d.line_bytes - 1);
        let line = addr / self.cfg.l1d.line_bytes;
        let full_latency =
            self.cfg.l1d.latency + self.cfg.l2.latency + self.cfg.dram_latency + self.extra_latency;
        let (done, merged) = self.mshr.allocate(line, now, now + full_latency)?;
        if !merged {
            self.dram_accesses += 1;
            self.mlp.record(now, done);
            self.l1d.count_miss();
            self.l2.count_miss();
            self.pending_fills.push((line_addr, done));
            // Next-line prefetch: fire-and-forget, only if a spare MSHR is
            // available and the line is absent.
            if self.cfg.next_line_prefetch {
                let next = line_addr + self.cfg.l1d.line_bytes;
                if !self.l1d.probe(next) && !self.l2.probe(next) {
                    if let Some((pdone, pmerged)) =
                        self.mshr
                            .allocate(next / self.cfg.l1d.line_bytes, now, now + full_latency)
                    {
                        if !pmerged {
                            self.prefetches += 1;
                            self.dram_accesses += 1;
                            self.pending_fills.push((next, pdone));
                        }
                    }
                }
            }
        }
        Some(DataAccess {
            latency: done - now,
            level: Level::Mem,
        })
    }

    /// Instruction fetch of the line containing `addr` at cycle `now`.
    /// Returns the latency; the front end stalls for it. Instruction misses
    /// do not consume data MSHRs.
    pub fn access_inst(&mut self, addr: u64) -> DataAccess {
        if self.l1i.access(addr) {
            return DataAccess {
                latency: self.cfg.l1i.latency,
                level: Level::L1,
            };
        }
        if self.l2.access(addr) {
            return DataAccess {
                latency: self.cfg.l1i.latency + self.cfg.l2.latency,
                level: Level::L2,
            };
        }
        self.dram_accesses += 1;
        DataAccess {
            latency: self.cfg.l1i.latency + self.cfg.l2.latency + self.cfg.dram_latency,
            level: Level::Mem,
        }
    }

    /// InvisiSpec probe: the latency and level the access *would* see,
    /// with **no** fill, LRU update or stat count (pending fills that have
    /// completed by `now` are installed first — that is bookkeeping, not an
    /// observable side effect of the probe).
    pub fn probe_data(&mut self, addr: u64, now: u64) -> DataAccess {
        self.apply_fills(now);
        if self.l1d.probe(addr) {
            DataAccess {
                latency: self.cfg.l1d.latency,
                level: Level::L1,
            }
        } else if self.l2.probe(addr) {
            DataAccess {
                latency: self.cfg.l1d.latency + self.cfg.l2.latency,
                level: Level::L2,
            }
        } else {
            DataAccess {
                latency: self.cfg.l1d.latency + self.cfg.l2.latency + self.cfg.dram_latency,
                level: Level::Mem,
            }
        }
    }

    /// InvisiSpec exposure: install the line containing `addr` from the
    /// load's speculative buffer into L1D and L2 — no miss is re-paid and
    /// no stats are counted (the original probe observed the latency).
    pub fn install_data_line(&mut self, addr: u64) {
        self.l2.install(addr);
        self.l1d.install(addr);
    }

    /// Functional warming of a data access (sampled simulation's
    /// fast-forward phase): bring the line to the same tag/LRU state a
    /// serviced [`Self::access_data`] would leave it in — L1 hit refreshes
    /// L1 LRU; otherwise the line is installed in L2 (LRU-refresh if
    /// present) and filled into L1 — but immediately, with no latency, no
    /// MSHR traffic, no pending fill and no stat counts.
    pub fn warm_touch_data(&mut self, addr: u64) {
        if self.l1d.probe(addr) {
            self.l1d.warm_touch(addr);
        } else {
            self.l2.warm_touch(addr);
            self.l1d.warm_touch(addr);
        }
    }

    /// Functional warming of an instruction fetch: the i-side analogue of
    /// [`Self::warm_touch_data`] (L1I + L2 tag/LRU only, latency-free,
    /// uncounted).
    pub fn warm_touch_inst(&mut self, addr: u64) {
        if self.l1i.probe(addr) {
            self.l1i.warm_touch(addr);
        } else {
            self.l2.warm_touch(addr);
            self.l1i.warm_touch(addr);
        }
    }

    /// `clflush`: evict the line containing `addr` from every level and
    /// cancel any pending fill of it.
    pub fn flush_line(&mut self, addr: u64) {
        self.l1i.invalidate(addr);
        self.l1d.invalidate(addr);
        self.l2.invalidate(addr);
        let line_addr = addr & !(self.cfg.l1d.line_bytes - 1);
        self.pending_fills.retain(|&(a, _)| a != line_addr);
    }

    /// `true` if the data side holds the line (either level).
    pub fn data_line_present(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.l2.probe(addr)
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            dram_accesses: self.dram_accesses,
            prefetches: self.prefetches,
            mlp: self.mlp.mlp(),
        }
    }

    /// Snapshot the entire hierarchy state (tag/LRU stores, MSHRs, MLP
    /// accumulators, counters and pending fills). Pending fills are sorted
    /// for a deterministic encoding; `apply_fills` is order-insensitive, so
    /// restoring the sorted list is behaviourally identical. See
    /// [`MemHierState`].
    pub fn dump_state(&self) -> MemHierState {
        let mut pending_fills = self.pending_fills.clone();
        pending_fills.sort_unstable();
        MemHierState {
            l1i: self.l1i.dump_state(),
            l1d: self.l1d.dump_state(),
            l2: self.l2.dump_state(),
            mshr: self.mshr.dump_state(),
            mlp: self.mlp.dump_state(),
            dram_accesses: self.dram_accesses,
            prefetches: self.prefetches,
            pending_fills,
            extra_latency: self.extra_latency,
        }
    }

    /// Rebuild a hierarchy from a [`MemHier::dump_state`] snapshot taken
    /// under the same configuration. Returns `None` when any component's
    /// snapshot does not fit `cfg`'s geometry — the checkpoint store uses
    /// this as a second line of defence behind its configuration key.
    pub fn from_state(cfg: MemHierConfig, state: &MemHierState) -> Option<MemHier> {
        Some(MemHier {
            l1i: SetAssocCache::from_state(cfg.l1i, &state.l1i)?,
            l1d: SetAssocCache::from_state(cfg.l1d, &state.l1d)?,
            l2: SetAssocCache::from_state(cfg.l2, &state.l2)?,
            mshr: MshrFile::from_state(cfg.mshrs, &state.mshr)?,
            mlp: MlpTracker::from_state(&state.mlp),
            dram_accesses: state.dram_accesses,
            prefetches: state.prefetches,
            pending_fills: state.pending_fills.clone(),
            extra_latency: state.extra_latency,
            cfg,
        })
    }
}

/// Exact snapshot of a [`MemHier`], detached from its configuration (the
/// configuration is part of the checkpoint-store key, so only mutable state
/// travels with each entry). All fields are integers — no float rounding
/// can occur on a round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemHierState {
    /// L1I tag/LRU state.
    pub l1i: CacheState,
    /// L1D tag/LRU state.
    pub l1d: CacheState,
    /// L2 tag/LRU state.
    pub l2: CacheState,
    /// MSHR file state.
    pub mshr: MshrState,
    /// MLP accumulator state.
    pub mlp: MlpState,
    /// Off-chip accesses performed.
    pub dram_accesses: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Requested-but-unfilled lines as `(line base, completion)`, sorted.
    pub pending_fills: Vec<(u64, u64)>,
    /// Fault-injection latency knob (normally zero).
    pub extra_latency: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_warm_hits() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        let a = h.access_data(0x1000, 0).unwrap();
        assert_eq!(a.level, Level::Mem);
        assert_eq!(a.latency, 4 + 40 + 100);
        let b = h.access_data(0x1000, 200).unwrap();
        assert_eq!(b.level, Level::L1);
        assert_eq!(b.latency, 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = MemHier::new(MemHierConfig::tiny());
        // l1d: 4 sets x 2 ways. Fill set 0 with 3 lines (stride = 4*64).
        let stride = 4 * 64;
        h.access_data(0, 0).unwrap();
        h.access_data(stride, 300).unwrap();
        h.access_data(2 * stride, 600).unwrap(); // evicts line 0 from L1
        let a = h.access_data(0, 900).unwrap();
        assert_eq!(a.level, Level::L2);
        assert_eq!(a.latency, 44);
    }

    #[test]
    fn flush_forces_offchip() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        h.access_data(0x2000, 0).unwrap();
        h.flush_line(0x2000);
        let a = h.access_data(0x2000, 500).unwrap();
        assert_eq!(a.level, Level::Mem);
    }

    #[test]
    fn mshr_exhaustion_refuses_without_residue() {
        let mut h = MemHier::new(MemHierConfig::tiny()); // 4 MSHRs
        for i in 0..4 {
            assert!(h.access_data(0x10_000 + i * 64, 0).is_some());
        }
        let refused_addr = 0x20_000;
        assert!(h.access_data(refused_addr, 1).is_none());
        assert!(
            !h.data_line_present(refused_addr),
            "refused access left residue"
        );
        // After the fills complete, the access goes through.
        assert!(h.access_data(refused_addr, 1000).is_some());
    }

    #[test]
    fn merged_miss_sees_remaining_latency() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        let first = h.access_data(0x3000, 0).unwrap();
        assert_eq!(first.latency, 144);
        let merged = h.access_data(0x3020, 44).unwrap(); // same line, later
        assert_eq!(
            merged.latency, 100,
            "merge completes with the in-flight fill"
        );
    }

    #[test]
    fn mlp_counts_overlapping_offchip_misses() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        h.access_data(0x100_000, 0).unwrap();
        h.access_data(0x200_000, 0).unwrap();
        let s = h.stats();
        assert_eq!(s.dram_accesses, 2);
        assert!((s.mlp.unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inst_side_uses_l1i_and_l2() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        let a = h.access_inst(0x40_0000);
        assert_eq!(a.level, Level::Mem);
        let b = h.access_inst(0x40_0000);
        assert_eq!(b.level, Level::L1);
        assert_eq!(h.stats().l1i.hits, 1);
    }

    #[test]
    fn next_line_prefetch_pulls_in_the_neighbour() {
        let mut cfg = MemHierConfig::haswell_like();
        cfg.next_line_prefetch = true;
        let mut h = MemHier::new(cfg);
        h.access_data(0x8000, 0).unwrap();
        assert_eq!(h.stats().prefetches, 1);
        // After the fill window both the demanded and the next line hit.
        assert_eq!(h.access_data(0x8000, 200).unwrap().level, Level::L1);
        assert_eq!(
            h.access_data(0x8040, 200).unwrap().level,
            Level::L1,
            "prefetched"
        );
        // Two lines further was not prefetched.
        assert_eq!(h.access_data(0x8080, 400).unwrap().level, Level::Mem);
    }

    #[test]
    fn prefetcher_disabled_by_default() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        h.access_data(0x8000, 0).unwrap();
        assert_eq!(h.stats().prefetches, 0);
        assert_eq!(h.access_data(0x8040, 200).unwrap().level, Level::Mem);
    }

    #[test]
    fn probe_leaves_no_trace() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        let p = h.probe_data(0x5000, 0);
        assert_eq!(p.level, Level::Mem);
        assert!(!h.data_line_present(0x5000));
        assert_eq!(h.stats().l1d.accesses(), 0);
        h.access_data(0x5000, 0).unwrap();
        assert_eq!(h.probe_data(0x5000, 200).level, Level::L1);
    }

    #[test]
    fn warm_touch_installs_without_stats_or_latency() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        h.warm_touch_data(0x9000);
        h.warm_touch_inst(0x40_0000);
        let s = h.stats();
        assert_eq!(s.l1d.accesses(), 0, "warming must not count");
        assert_eq!(s.l1i.accesses(), 0, "warming must not count");
        assert_eq!(s.l2.accesses(), 0, "warming must not count");
        assert_eq!(s.dram_accesses, 0, "warming never goes off-chip");
        // The line is present immediately (no fill delay).
        assert_eq!(h.access_data(0x9000, 0).unwrap().level, Level::L1);
        assert_eq!(h.access_inst(0x40_0000).level, Level::L1);
    }

    #[test]
    fn warm_touch_matches_access_tag_state() {
        // Warming the same stream of lines as a (drained) access stream
        // leaves identical L1D/L2 contents.
        let addrs = [0u64, 0x1000, 0x2000, 0x1000, 0x4000, 0x0];
        let mut warmed = MemHier::new(MemHierConfig::tiny());
        for &a in &addrs {
            warmed.warm_touch_data(a);
        }
        let mut accessed = MemHier::new(MemHierConfig::tiny());
        // Space the accesses out so every fill lands before the next access,
        // then drain the final pending fill (warming installs immediately).
        for (i, &a) in addrs.iter().enumerate() {
            accessed.access_data(a, i as u64 * 1000).unwrap();
        }
        accessed.probe_data(0, 1_000_000);
        for &a in &addrs {
            assert_eq!(
                warmed.data_line_present(a),
                accessed.data_line_present(a),
                "presence diverged at {a:#x}"
            );
        }
    }

    #[test]
    fn line_installs_at_fill_time_not_request_time() {
        let mut h = MemHier::new(MemHierConfig::haswell_like());
        h.access_data(0x6000, 0).unwrap();
        assert!(!h.data_line_present(0x6000), "fill has not arrived yet");
        assert_eq!(h.probe_data(0x6000, 10).level, Level::Mem);
        assert_eq!(h.probe_data(0x6000, 144).level, Level::L1);
    }
}
