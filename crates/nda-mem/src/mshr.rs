//! Miss-status holding registers.
//!
//! The MSHR file bounds the number of concurrently outstanding off-chip
//! misses (the source of memory-level parallelism) and merges accesses to a
//! line that is already in flight.

use std::collections::HashMap;

/// A bounded file of outstanding line fills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrFile {
    capacity: usize,
    /// line index -> cycle at which the fill completes.
    in_flight: HashMap<u64, u64>,
    /// Peak simultaneous occupancy ever observed.
    peak: usize,
    /// Total allocations (merges excluded).
    allocations: u64,
    /// Accesses merged into an existing entry.
    merges: u64,
}

impl MshrFile {
    /// A file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "mshr file needs at least one entry");
        MshrFile {
            capacity,
            in_flight: HashMap::new(),
            peak: 0,
            allocations: 0,
            merges: 0,
        }
    }

    /// Retire entries whose fill completed at or before `now`.
    pub fn drain(&mut self, now: u64) {
        self.in_flight.retain(|_, done| *done > now);
    }

    /// Entries outstanding after draining to `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.drain(now);
        self.in_flight.len()
    }

    /// Try to track a miss of `line` completing at `done`.
    ///
    /// Returns `(completion_cycle, merged)`: a merge with an in-flight
    /// entry returns that entry's completion and `true`, a fresh allocation
    /// returns `done` and `false`, and `None` means the file is full (the
    /// caller retries later).
    pub fn allocate(&mut self, line: u64, now: u64, done: u64) -> Option<(u64, bool)> {
        self.drain(now);
        if let Some(&existing) = self.in_flight.get(&line) {
            self.merges += 1;
            return Some((existing, true));
        }
        if self.in_flight.len() >= self.capacity {
            return None;
        }
        self.in_flight.insert(line, done);
        self.allocations += 1;
        self.peak = self.peak.max(self.in_flight.len());
        Some((done, false))
    }

    /// Peak simultaneous occupancy.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Fresh allocations performed.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Accesses merged into in-flight entries.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Snapshot the file, with in-flight entries sorted by line index for a
    /// deterministic order (the internal `HashMap` order is not). See
    /// [`MshrState`].
    pub fn dump_state(&self) -> MshrState {
        let mut in_flight: Vec<(u64, u64)> = self.in_flight.iter().map(|(&l, &d)| (l, d)).collect();
        in_flight.sort_unstable();
        MshrState {
            in_flight,
            peak: self.peak,
            allocations: self.allocations,
            merges: self.merges,
        }
    }

    /// Rebuild a file from a [`MshrFile::dump_state`] snapshot. Returns
    /// `None` when the snapshot holds more in-flight entries than
    /// `capacity` permits (a capacity-config mismatch).
    pub fn from_state(capacity: usize, state: &MshrState) -> Option<MshrFile> {
        if capacity == 0 || state.in_flight.len() > capacity {
            return None;
        }
        Some(MshrFile {
            capacity,
            in_flight: state.in_flight.iter().copied().collect(),
            peak: state.peak,
            allocations: state.allocations,
            merges: state.merges,
        })
    }
}

/// Exact snapshot of an [`MshrFile`] (capacity excluded — it is part of the
/// hierarchy configuration, which the checkpoint store keys on).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MshrState {
    /// Outstanding fills as `(line, completion_cycle)`, sorted by line.
    pub in_flight: Vec<(u64, u64)>,
    /// Peak simultaneous occupancy.
    pub peak: usize,
    /// Total fresh allocations.
    pub allocations: u64,
    /// Accesses merged into in-flight entries.
    pub merges: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_drain() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(1, 0, 100), Some((100, false)));
        assert_eq!(m.allocate(2, 0, 120), Some((120, false)));
        assert_eq!(m.allocate(3, 0, 130), None, "full");
        assert_eq!(m.outstanding(100), 1, "first entry retired at 100");
        assert_eq!(m.allocate(3, 100, 200), Some((200, false)));
    }

    #[test]
    fn merge_returns_existing_completion() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(7, 0, 140), Some((140, false)));
        // Same line while in flight: merged, not refused, even though full.
        assert_eq!(m.allocate(7, 50, 190), Some((140, true)));
        assert_eq!(m.merges(), 1);
        assert_eq!(m.allocations(), 1);
    }

    #[test]
    fn same_cycle_same_line_is_a_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(9, 0, 144), Some((144, false)));
        assert_eq!(m.allocate(9, 0, 144), Some((144, true)));
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 0, 10);
        m.allocate(2, 0, 10);
        m.allocate(3, 0, 10);
        m.outstanding(11);
        m.allocate(4, 12, 20);
        assert_eq!(m.peak(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }
}
