//! Memory-level-parallelism accounting.
//!
//! The paper follows Chou et al. and reports MLP as *the average number of
//! outstanding off-chip misses when at least one is outstanding* (Fig 9b).
//! [`MlpTracker`] computes exactly that from the (start, end) interval of
//! each off-chip miss, using a single forward sweep — accesses are recorded
//! in non-decreasing start order, which the cycle-driven cores guarantee.

/// Streaming MLP aggregator. See the [module documentation](self).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlpTracker {
    /// Sum over misses of their duration (cycle-weighted outstanding count).
    miss_cycles: u64,
    /// Cycles during which >= 1 miss was outstanding (union of intervals).
    busy_cycles: u64,
    /// End of the union interval currently being extended.
    frontier: u64,
    /// Number of misses recorded.
    misses: u64,
}

impl MlpTracker {
    /// A tracker with no recorded misses.
    pub fn new() -> MlpTracker {
        MlpTracker::default()
    }

    /// Record one off-chip miss outstanding over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `end < start` or if `start` precedes an
    /// earlier recorded start (the sweep requires sorted starts).
    pub fn record(&mut self, start: u64, end: u64) {
        debug_assert!(end >= start, "interval must not be negative");
        if end == start {
            return;
        }
        self.misses += 1;
        self.miss_cycles += end - start;
        if start >= self.frontier {
            self.busy_cycles += end - start;
            self.frontier = end;
        } else if end > self.frontier {
            self.busy_cycles += end - self.frontier;
            self.frontier = end;
        }
    }

    /// Number of misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cycles with at least one outstanding miss.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Average outstanding misses while >= 1 outstanding; `None` if no miss
    /// was ever recorded.
    pub fn mlp(&self) -> Option<f64> {
        if self.busy_cycles == 0 {
            None
        } else {
            Some(self.miss_cycles as f64 / self.busy_cycles as f64)
        }
    }

    /// Snapshot the accumulator state. See [`MlpState`].
    pub fn dump_state(&self) -> MlpState {
        MlpState {
            miss_cycles: self.miss_cycles,
            busy_cycles: self.busy_cycles,
            frontier: self.frontier,
            misses: self.misses,
        }
    }

    /// Rebuild a tracker from a [`MlpTracker::dump_state`] snapshot.
    pub fn from_state(state: &MlpState) -> MlpTracker {
        MlpTracker {
            miss_cycles: state.miss_cycles,
            busy_cycles: state.busy_cycles,
            frontier: state.frontier,
            misses: state.misses,
        }
    }
}

/// Exact snapshot of an [`MlpTracker`] — all four accumulators are exact
/// integers, so a round trip is trivially bit-exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlpState {
    /// Sum over misses of their duration.
    pub miss_cycles: u64,
    /// Union of miss intervals in cycles.
    pub busy_cycles: u64,
    /// End of the interval union being extended.
    pub frontier: u64,
    /// Misses recorded.
    pub misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_misses_is_none() {
        assert_eq!(MlpTracker::new().mlp(), None);
    }

    #[test]
    fn serial_misses_have_mlp_one() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(100, 200);
        t.record(300, 400);
        assert_eq!(t.mlp(), Some(1.0));
        assert_eq!(t.misses(), 3);
        assert_eq!(t.busy_cycles(), 300);
    }

    #[test]
    fn fully_overlapped_misses_sum() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(0, 100);
        t.record(0, 100);
        assert_eq!(t.mlp(), Some(3.0));
    }

    #[test]
    fn partial_overlap() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(50, 150);
        // 200 miss-cycles over a 150-cycle union.
        assert!((t.mlp().unwrap() - 200.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn contained_interval_extends_nothing() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(20, 60);
        assert_eq!(t.busy_cycles(), 100);
        assert!((t.mlp().unwrap() - 140.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_interval_ignored() {
        let mut t = MlpTracker::new();
        t.record(5, 5);
        assert_eq!(t.misses(), 0);
        assert_eq!(t.mlp(), None);
    }
}
