//! # Memory-system timing models for the NDA reproduction
//!
//! Timing-only models of the cache hierarchy of the paper's Table 3:
//! 32 KiB 8-way L1I and L1D (4-cycle round trip), a 2 MiB 16-way L2
//! (40-cycle round trip) and 50 ns DRAM, with an MSHR file bounding
//! outstanding misses and feeding the MLP statistic of Fig 9b.
//!
//! These structures track *tags and time*, never data — architectural bytes
//! live in `nda_isa::SparseMem`. Keeping timing and state separate is what
//! lets wrong-path execution perturb the caches (the covert channel) while
//! the architectural state stays precise.
//!
//! ```
//! use nda_mem::{MemHier, MemHierConfig};
//!
//! let mut hier = MemHier::new(MemHierConfig::haswell_like());
//! let cold = hier.access_data(0x1000, 0).expect("mshr free");
//! let warm = hier.access_data(0x1000, cold.latency).expect("mshr free");
//! assert!(cold.latency > warm.latency);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod hier;
pub mod mlp;
pub mod mshr;

pub use cache::{CacheConfig, CacheState, CacheStats, LineState, SetAssocCache};
pub use hier::{DataAccess, Level, MemHier, MemHierConfig, MemHierState, MemStats};
pub use mlp::{MlpState, MlpTracker};
pub use mshr::{MshrFile, MshrState};
