//! Byte-level plumbing shared by the persistent stores
//! ([`ckpt_store`](crate::ckpt_store) and
//! [`result_store`](crate::result_store)): the little-endian
//! encoder/decoder pair, the FNV-1a content hash, and the size-capped
//! garbage collector both stores run after a save.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// FNV-1a, 64 bit. (Same constants as the sweep journal's checksum; the
/// two crates cannot share it without a dependency cycle.)
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only encoder.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over an entry body; every accessor returns `None` on underrun,
/// which the loaders map to quarantine.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    pub(crate) fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    pub(crate) fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    pub(crate) fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    /// A length-prefixed byte string; the length is sanity-capped by the
    /// remaining buffer so a corrupt prefix cannot trigger a huge
    /// allocation.
    pub(crate) fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.usize()?;
        self.take(n)
    }
    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// What one garbage-collection pass over a store directory did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entry files examined.
    pub scanned: usize,
    /// Entry files evicted (oldest modification time first).
    pub evicted: usize,
    /// Bytes reclaimed by the evictions.
    pub evicted_bytes: u64,
    /// Bytes of entries left on disk after the pass.
    pub live_bytes: u64,
}

/// Evict oldest-mtime `*.{ext}` files under `dir` (non-recursive — the
/// `quarantine/` subdirectory is never touched) until their total size is
/// at or under `max_bytes`. LRU-ish rather than LRU: plain reads do not
/// bump mtime, so the policy is eviction by age of *write*, which is what
/// a content-addressed store can promise without rewriting entries on
/// every hit. Ties on mtime break by filename so the pass is
/// deterministic.
///
/// # Errors
///
/// Propagates the `read_dir` failure; per-file metadata or remove errors
/// are skipped (another process may be racing the same pass).
pub(crate) fn gc_dir(dir: &Path, ext: &str, max_bytes: u64) -> io::Result<GcStats> {
    let mut entries: Vec<(SystemTime, PathBuf, u64)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(ext) {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        entries.push((mtime, path, meta.len()));
    }
    let mut stats = GcStats {
        scanned: entries.len(),
        live_bytes: entries.iter().map(|e| e.2).sum(),
        ..GcStats::default()
    };
    entries.sort();
    let mut it = entries.into_iter();
    while stats.live_bytes > max_bytes {
        let Some((_, path, size)) = it.next() else {
            break;
        };
        if fs::remove_file(&path).is_ok() {
            stats.evicted += 1;
            stats.evicted_bytes += size;
            stats.live_bytes -= size;
        }
    }
    Ok(stats)
}
