//! Sampled simulation: functional fast-forward with warming, architectural
//! checkpoints, and SMARTS-style detailed measurement windows.
//!
//! The detailed out-of-order core runs at ~1–3 M simulated cycles per host
//! second; the reference interpreter runs more than an order of magnitude
//! faster. Sampled simulation (SMARTS, Wunderlich et al., cited by the
//! paper's methodology) converts that gap into wall-clock speedups: a
//! **master functional run** executes the whole program on
//! [`nda_isa::Interp`] while *functionally warming* micro-architectural
//! state — cache tag/LRU state via [`MemHier::warm_touch_data`] /
//! [`MemHier::warm_touch_inst`], and the direction predictor, BTB and RAS
//! via their functional-update paths. At the start of every
//! [`sample_every`](SampledParams::sample_every)-instruction interval
//! (including instruction 0, so the cold-start prologue is sampled) it
//! snapshots a [`Checkpoint`]; each checkpoint seeds a **detailed window**
//! (a fresh
//! timing core restored from the checkpoint) that runs
//! [`warm_insts`](SampledParams::warm_insts) committed instructions to let
//! pipeline-local state (ROB, queues, MSHRs) reach steady state, then
//! measures CPI over [`detail_insts`](SampledParams::detail_insts). The
//! per-window CPIs aggregate through [`nda_stats::Sample`] into a mean with
//! a 95 % confidence interval.
//!
//! Because the checkpoints are plain values, a sweep can collect them
//! **once per (workload, sample)** and restore them for *each* variant —
//! paying warm-up once instead of once per variant
//! (`nda-bench/src/sweep.rs` does exactly this for the 11 Fig 7 variants).
//!
//! Determinism: the functional run, the warming stream and every detailed
//! window are seeded, input-driven computations with no host-dependent
//! state, so restoring the same checkpoint twice yields bit-identical
//! windows — pinned by `crates/nda-core/tests/checkpoint.rs`.
//!
//! Warming model caveats (documented approximations, see DESIGN.md §10):
//! the functional path updates predictors in commit order (the detailed
//! front end updates them speculatively and recovers), never touches
//! wrong-path cache lines, and installs fills immediately instead of after
//! the miss latency. These perturb *micro-architectural* warm-up only; the
//! detailed warm window exists to absorb the residual error.

use crate::config::{CoreModel, SimConfig};
use crate::inorder::InOrderCore;
use crate::ooo::core::OooCore;
use crate::run::{RunResult, SampledInfo, SimError};
use nda_isa::{ExecHooks, Inst, Interp, InterpError, Program, StepInfo, TranslatedProgram};
use nda_mem::MemHier;
use nda_predict::{Btb, DirPredictor, Ras};
use nda_stats::{Sample, SimStats};

/// The U/W/D schedule of a sampled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledParams {
    /// Instructions fast-forwarded functionally between sample points (the
    /// SMARTS `U` phase).
    pub sample_every: u64,
    /// Committed instructions each detailed window runs before measuring
    /// (the `W` phase: drains cold-pipeline transients the functional
    /// warming cannot model).
    pub warm_insts: u64,
    /// Committed instructions each window measures (the `D` phase).
    pub detail_insts: u64,
    /// Checkpoint/window count cap (`usize::MAX` = one per sample point).
    pub max_windows: usize,
    /// Cycle budget for any single detailed warm or measure phase.
    pub budget_per_phase: u64,
}

impl SampledParams {
    /// Default per-phase cycle budget (matches
    /// [`SmartsParams`](crate::SmartsParams)).
    pub const DEFAULT_BUDGET_PER_PHASE: u64 = 200_000_000;

    /// A schedule with unlimited windows and the default phase budget.
    pub fn new(sample_every: u64, warm_insts: u64, detail_insts: u64) -> SampledParams {
        SampledParams {
            sample_every,
            warm_insts,
            detail_insts,
            max_windows: usize::MAX,
            budget_per_phase: SampledParams::DEFAULT_BUDGET_PER_PHASE,
        }
    }
}

impl Default for SampledParams {
    /// The pinned-workload default: detail ~8 % of the stream (2 k warm +
    /// 2 k measure every 50 k instructions).
    fn default() -> SampledParams {
        SampledParams::new(50_000, 2_000, 2_000)
    }
}

/// Architectural + warmed micro-architectural state at one sample point.
///
/// Everything needed to seed a detailed window on *any* variant: the
/// interpreter carries registers, PC, memory and MSRs; the hierarchy
/// carries warmed cache tags/LRU; the predictor trio carries trained
/// direction/target/return state. `PartialEq` compares the whole chain so
/// round-trip tests can assert bit-exactness directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The reference interpreter at the sample point (architectural state).
    pub interp: Interp,
    /// Functionally warmed cache hierarchy.
    pub hier: MemHier,
    /// Functionally trained direction predictor.
    pub dir: DirPredictor,
    /// Functionally trained branch target buffer.
    pub btb: Btb,
    /// Functionally maintained return address stack.
    pub ras: Ras,
    /// Instructions retired when the checkpoint was taken.
    pub ff_insts: u64,
}

/// The checkpoints of one complete master functional run, plus its final
/// architectural state. Collect once, restore per variant.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSet {
    /// One checkpoint per sample point, in program order.
    pub checkpoints: Vec<Checkpoint>,
    /// The interpreter after the program halted.
    pub final_interp: Interp,
    /// Total architecturally retired instructions.
    pub total_insts: u64,
}

/// Functional warmer: mirrors, latency-free, the micro-architectural
/// touches the committed instruction stream would perform.
#[derive(Debug, Clone)]
struct Warmer {
    hier: MemHier,
    dir: DirPredictor,
    btb: Btb,
    ras: Ras,
    /// I-cache line most recently fetched from (both timing cores charge
    /// the i-side once per line transition; warming matches).
    last_line: Option<u64>,
}

impl Warmer {
    fn new(cfg: &SimConfig) -> Warmer {
        Warmer {
            hier: MemHier::new(cfg.mem),
            dir: DirPredictor::new(cfg.core.predictor_kind, cfg.core.gshare),
            btb: Btb::new(cfg.core.btb),
            ras: Ras::new(),
            last_line: None,
        }
    }

    /// Apply one committed instruction's warming effects. Predictor and
    /// BTB entries are keyed by the instruction's *byte address*
    /// (`program.inst_addr`), matching the front end.
    fn observe(&mut self, program: &Program, info: &StepInfo) {
        let iaddr = program.inst_addr(info.pc);
        let line = iaddr / 64;
        if self.last_line != Some(line) {
            self.hier.warm_touch_inst(iaddr);
            self.last_line = Some(line);
        }
        match info.inst {
            Inst::Branch { .. } => {
                self.dir
                    .functional_update(iaddr, info.taken.unwrap_or(false));
            }
            Inst::Call { .. } => self.ras.push(info.pc + 1),
            Inst::CallInd { .. } => {
                self.ras.push(info.pc + 1);
                self.btb.update(iaddr, info.next_pc);
            }
            Inst::JmpInd { .. } => self.btb.update(iaddr, info.next_pc),
            Inst::Ret => {
                self.ras.pop();
            }
            _ => {}
        }
        if let Some(addr) = info.data_addr {
            self.hier.warm_touch_data(addr);
        }
        if let Some(addr) = info.flush_addr {
            self.hier.flush_line(addr);
        }
    }
}

/// The pre-decoded fast path reports warming events through
/// [`ExecHooks`]; each callback is one arm of [`Warmer::observe`], so the
/// two engines produce identical warming state by construction (pinned by
/// `tests/translated.rs` down to the predictor accuracy counters, which
/// participate in checkpoint equality).
impl ExecHooks for Warmer {
    #[inline]
    fn inst(&mut self, iaddr: u64, iline: u64) {
        if self.last_line != Some(iline) {
            self.hier.warm_touch_inst(iaddr);
            self.last_line = Some(iline);
        }
    }

    #[inline]
    fn branch(&mut self, iaddr: u64, taken: bool) {
        self.dir.functional_update(iaddr, taken);
    }

    #[inline]
    fn call(&mut self, ret_pc: usize) {
        self.ras.push(ret_pc);
    }

    #[inline]
    fn call_ind(&mut self, iaddr: u64, ret_pc: usize, next_pc: usize) {
        self.ras.push(ret_pc);
        self.btb.update(iaddr, next_pc);
    }

    #[inline]
    fn jmp_ind(&mut self, iaddr: u64, next_pc: usize) {
        self.btb.update(iaddr, next_pc);
    }

    #[inline]
    fn ret(&mut self) {
        self.ras.pop();
    }

    #[inline]
    fn data(&mut self, addr: u64) {
        self.hier.warm_touch_data(addr);
    }

    #[inline]
    fn flush(&mut self, addr: u64) {
        self.hier.flush_line(addr);
    }
}

/// Which engine drives the master functional pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FfEngine {
    /// The pre-decoded threaded-code path
    /// ([`nda_isa::Interp::run_translated`]): decode once, dispatch on a
    /// flat op array. The default — several times faster, bit-exact.
    #[default]
    Translated,
    /// The reference path: [`nda_isa::Interp::step_info`] per instruction.
    /// Kept callable so the differential suite can pin the translated
    /// engine against it; not used in production paths.
    Reference,
}

fn interp_err(e: InterpError) -> SimError {
    match e {
        InterpError::PcOutOfRange { pc } => SimError::PcOutOfRange { pc },
        InterpError::UnhandledFault(f) => SimError::UnhandledFault(f),
        // The caller converts the step budget into CycleLimit itself;
        // Interp::run is never used here, so StepLimit cannot occur.
        InterpError::StepLimit => SimError::CycleLimit {
            cycles: 0,
            snapshot: None,
        },
    }
}

/// Run the master functional pass: execute `program` to completion on the
/// reference interpreter with functional warming, snapshotting a
/// [`Checkpoint`] every [`sample_every`](SampledParams::sample_every)
/// executed instructions (up to
/// [`max_windows`](SampledParams::max_windows) of them).
///
/// `max_insts` bounds the functional instruction count (callers typically
/// pass their detailed-mode cycle budget: every instruction costs at least
/// one detailed cycle on the blocking core, and the sweep budgets are far
/// from tight).
///
/// # Errors
///
/// [`SimError::CycleLimit`] when `max_insts` is exhausted before `Halt`,
/// plus the architectural errors of the interpreter
/// ([`SimError::UnhandledFault`], [`SimError::PcOutOfRange`]).
pub fn collect_checkpoints(
    cfg: &SimConfig,
    program: &Program,
    params: SampledParams,
    max_insts: u64,
) -> Result<CheckpointSet, SimError> {
    collect_checkpoints_with(cfg, program, params, max_insts, FfEngine::Translated)
}

/// [`collect_checkpoints`] with an explicit [`FfEngine`] choice. Both
/// engines produce bit-identical [`CheckpointSet`]s (pinned by
/// `tests/translated.rs`); production callers use the default
/// [`FfEngine::Translated`].
///
/// # Errors
///
/// See [`collect_checkpoints`].
pub fn collect_checkpoints_with(
    cfg: &SimConfig,
    program: &Program,
    params: SampledParams,
    max_insts: u64,
    engine: FfEngine,
) -> Result<CheckpointSet, SimError> {
    let mut interp = Interp::new(program);
    let mut warmer = Warmer::new(cfg);
    let tp = match engine {
        FfEngine::Translated => Some(TranslatedProgram::new(program)),
        FfEngine::Reference => None,
    };
    let mut checkpoints = Vec::new();
    let mut executed: u64 = 0;
    while !interp.halted() {
        // Checkpoint at the *start* of each sampling interval — including
        // instruction 0, so the (cold-start) prologue is represented in
        // the window population exactly as SMARTS prescribes. Each
        // detailed window then measures its own interval's opening
        // stretch.
        if checkpoints.len() < params.max_windows {
            checkpoints.push(Checkpoint {
                interp: interp.clone(),
                hier: warmer.hier.clone(),
                dir: warmer.dir.clone(),
                btb: warmer.btb.clone(),
                ras: warmer.ras.clone(),
                ff_insts: interp.retired(),
            });
        }
        // U phase: fast-forward one sampling interval. Faulting steps do
        // not retire but do make progress (PC moves to the handler), so the
        // interval counts *executed* steps.
        if let Some(tp) = &tp {
            // Pre-decoded batch: run up to a whole interval in one call,
            // capped by the remaining functional budget. The budget error
            // fires at the same executed count as the per-step path: a
            // short cap means the budget boundary falls inside this
            // interval, so finishing the cap without halting exhausts it.
            let cap = params.sample_every.min(max_insts - executed);
            let n = interp
                .run_translated(tp, cap, &mut warmer)
                .map_err(interp_err)?;
            executed += n;
            if !interp.halted() && n == cap && cap < params.sample_every {
                return Err(SimError::CycleLimit {
                    cycles: executed,
                    snapshot: None,
                });
            }
        } else {
            let mut n = 0;
            while n < params.sample_every && !interp.halted() {
                if executed >= max_insts {
                    return Err(SimError::CycleLimit {
                        cycles: executed,
                        snapshot: None,
                    });
                }
                let Some(info) = interp.step_info().map_err(interp_err)? else {
                    break;
                };
                warmer.observe(program, &info);
                executed += 1;
                n += 1;
            }
        }
    }
    let total_insts = interp.retired();
    Ok(CheckpointSet {
        checkpoints,
        final_interp: interp,
        total_insts,
    })
}

/// One detailed W+D window from `ckpt` on the configured core model.
/// Returns `None` if the program halts before committing a single measured
/// instruction (the window then contributes nothing).
fn run_window(
    cfg: SimConfig,
    program: &Program,
    ckpt: &Checkpoint,
    params: SampledParams,
) -> Result<Option<(f64, u64)>, SimError> {
    match cfg.model {
        CoreModel::OutOfOrder => {
            let mut core = OooCore::new(cfg, program);
            core.restore_checkpoint(&ckpt.interp, &ckpt.hier, &ckpt.dir, &ckpt.btb, &ckpt.ras);
            // W: commit warm_insts, discarding stats.
            core.reset_stats();
            let warm_deadline = core.cycle() + params.budget_per_phase;
            while core.stats.committed_insts < params.warm_insts && !core.halted() {
                if core.cycle() >= warm_deadline {
                    return Err(core.cycle_limit_error());
                }
                core.step_cycle();
                if let Some(err) = core.watchdog_error() {
                    return Err(err);
                }
            }
            let warmed = core.stats.committed_insts;
            // D: measure.
            core.reset_stats();
            let measure_deadline = core.cycle() + params.budget_per_phase;
            while core.stats.committed_insts < params.detail_insts && !core.halted() {
                if core.cycle() >= measure_deadline {
                    return Err(core.cycle_limit_error());
                }
                core.step_cycle();
                if let Some(err) = core.watchdog_error() {
                    return Err(err);
                }
            }
            let measured = core.stats.committed_insts;
            if measured == 0 {
                return Ok(None);
            }
            Ok(Some((core.stats.cpi(), warmed + measured)))
        }
        CoreModel::InOrder => {
            let mut core = InOrderCore::new(cfg, program);
            core.restore_checkpoint(&ckpt.interp, &ckpt.hier);
            // The blocking core tracks cycles inline; window CPI comes from
            // cycle/instruction deltas around the measure phase.
            let warm_deadline = core.cycle() + params.budget_per_phase;
            while core.stats.committed_insts < params.warm_insts && !core.halted() {
                if core.cycle() >= warm_deadline {
                    return Err(SimError::CycleLimit {
                        cycles: core.cycle(),
                        snapshot: None,
                    });
                }
                core.step()?;
            }
            let warmed = core.stats.committed_insts;
            let (c0, i0) = (core.cycle(), core.stats.committed_insts);
            let measure_deadline = c0 + params.budget_per_phase;
            while core.stats.committed_insts - i0 < params.detail_insts && !core.halted() {
                if core.cycle() >= measure_deadline {
                    return Err(SimError::CycleLimit {
                        cycles: core.cycle(),
                        snapshot: None,
                    });
                }
                core.step()?;
            }
            let measured = core.stats.committed_insts - i0;
            if measured == 0 {
                return Ok(None);
            }
            let cpi = (core.cycle() - c0) as f64 / measured as f64;
            Ok(Some((cpi, warmed + measured)))
        }
    }
}

/// Run the detailed windows of a sampled measurement against an existing
/// [`CheckpointSet`] (collected once, shared across variants) and fold the
/// result into a [`RunResult`].
///
/// The returned result carries the *functional* run's architectural state
/// (registers, halt flag, retired count) — bit-exact with a full-detail
/// run by the differential-correctness contract — an **estimated** cycle
/// count (`cpi.mean × retired`), and [`RunResult::sampled`] with the
/// window statistics. `mem_stats` covers only the detailed windows.
///
/// A program too short to yield any checkpoint (or whose windows all halt
/// immediately) falls back to a full-detail run.
///
/// # Errors
///
/// See [`SimError`].
pub fn run_sampled_with(
    cfg: SimConfig,
    program: &Program,
    set: &CheckpointSet,
    params: SampledParams,
) -> Result<RunResult, SimError> {
    let mut cpis = Vec::with_capacity(set.checkpoints.len());
    let mut detailed_insts = 0u64;
    for ckpt in &set.checkpoints {
        if let Some((cpi, insts)) = run_window(cfg, program, ckpt, params)? {
            cpis.push(cpi);
            detailed_insts += insts;
        }
    }
    if cpis.is_empty() {
        // Too short to sample: run it in full detail.
        return crate::run::run_with_config(cfg, program, params.budget_per_phase);
    }
    let sample = Sample::from_values(&cpis);
    let mut stats = SimStats::new();
    stats.committed_insts = set.total_insts;
    stats.cycles = (sample.mean * set.total_insts as f64).round() as u64;
    Ok(RunResult {
        regs: *set.final_interp.regs(),
        stats,
        mem_stats: nda_mem::MemStats::default(),
        halted: set.final_interp.halted(),
        host_ns: 0,
        sampled: Some(SampledInfo {
            cpi: sample,
            detailed_insts,
            fast_forwarded_insts: set.total_insts,
            windows: cpis.len(),
            ff_wall_ns: 0,
            detail_wall_ns: 0,
        }),
    })
}

/// Sampled simulation end to end: collect checkpoints with one master
/// functional pass, then run the detailed windows. `max_insts` bounds the
/// functional pass (pass the cycle budget a full-detail run would get).
///
/// # Errors
///
/// See [`SimError`].
pub fn run_sampled(
    cfg: SimConfig,
    program: &Program,
    params: SampledParams,
    max_insts: u64,
) -> Result<RunResult, SimError> {
    let start = std::time::Instant::now();
    let set = collect_checkpoints(&cfg, program, params, max_insts)?;
    let ff_wall_ns = start.elapsed().as_nanos() as u64;
    let detail_start = std::time::Instant::now();
    let mut r = run_sampled_with(cfg, program, &set, params)?;
    let detail_wall_ns = detail_start.elapsed().as_nanos() as u64;
    if let Some(s) = &mut r.sampled {
        s.ff_wall_ns = ff_wall_ns;
        s.detail_wall_ns = detail_wall_ns;
    }
    r.host_ns = start.elapsed().as_nanos() as u64;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use nda_isa::{Asm, Reg};

    /// A loop long enough to yield several sample points.
    fn looped_program(iters: u64) -> Program {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, iters).li(Reg::X3, 0).li(Reg::X5, 0x1_0000);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.addi(Reg::X3, Reg::X3, 3);
        asm.st8(Reg::X3, Reg::X5, 0);
        asm.ld8(Reg::X4, Reg::X5, 0);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn checkpoints_are_spaced_and_architecturally_consistent() {
        let p = looped_program(2_000);
        let cfg = SimConfig::ooo();
        let params = SampledParams::new(1_000, 100, 100);
        let set = collect_checkpoints(&cfg, &p, params, u64::MAX).unwrap();
        assert!(set.checkpoints.len() >= 2, "{}", set.checkpoints.len());
        for w in set.checkpoints.windows(2) {
            assert!(w[1].ff_insts > w[0].ff_insts);
        }
        // Each checkpoint's interpreter, resumed, reaches the same final
        // architectural state as the master run.
        let mut resumed = set.checkpoints[0].interp.clone();
        resumed.run(u64::MAX / 2).unwrap();
        assert_eq!(resumed.regs(), set.final_interp.regs());
        assert_eq!(resumed.retired(), set.total_insts);
    }

    #[test]
    fn watchdog_surfaces_stall_through_sampled_windows() {
        // A wedged detailed window must abort with `Stalled` after one
        // watchdog window instead of burning the whole per-phase cycle
        // budget: with every cold DRAM fetch taking 50M cycles, waiting
        // out `budget_per_phase` (200M) would dwarf the 500-cycle window.
        let p = looped_program(2_000);
        let mut cfg = SimConfig::ooo();
        cfg.mem.dram_latency = 50_000_000;
        cfg.watchdog_window = Some(500);
        let err = run_sampled(cfg, &p, SampledParams::new(500, 100, 100), u64::MAX).unwrap_err();
        match err {
            SimError::Stalled { cycles, window, .. } => {
                assert_eq!(window, 500);
                assert!(cycles < 1_000_000, "watchdog fired late: cycle {cycles}");
            }
            other => panic!("expected SimError::Stalled, got: {other}"),
        }
    }

    #[test]
    fn sampled_cpi_close_to_full_detail() {
        let p = looped_program(5_000);
        let full = crate::run::run_variant(Variant::Ooo, &p, 200_000_000).unwrap();
        let r = run_sampled(
            SimConfig::ooo(),
            &p,
            SampledParams::new(2_000, 500, 500),
            u64::MAX,
        )
        .unwrap();
        let info = r.sampled.expect("sampled info attached");
        assert!(info.windows >= 2);
        assert_eq!(r.regs, full.regs, "architectural state must be exact");
        assert_eq!(r.stats.committed_insts, full.stats.committed_insts);
        // The homogeneous loop body should sample to within its own CI
        // (generous slack: the loop is uniform, so windows are tight).
        let full_cpi = full.cpi();
        assert!(
            (info.cpi.mean - full_cpi).abs() <= (info.cpi.ci95 + 0.05 * full_cpi),
            "sampled {} ± {} vs full {}",
            info.cpi.mean,
            info.cpi.ci95,
            full_cpi
        );
    }

    #[test]
    fn short_program_falls_back_to_full_detail() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 7).halt();
        let p = asm.assemble().unwrap();
        let r = run_sampled(SimConfig::ooo(), &p, SampledParams::default(), u64::MAX).unwrap();
        assert!(r.sampled.is_none(), "too short to sample");
        assert_eq!(r.regs[2], 7);
        assert!(r.halted);
    }

    #[test]
    fn checkpoint_reuse_across_variants_preserves_architecture() {
        let p = looped_program(1_500);
        let cfg = SimConfig::for_variant(Variant::Ooo);
        let params = SampledParams::new(1_000, 200, 200);
        let set = collect_checkpoints(&cfg, &p, params, u64::MAX).unwrap();
        for v in Variant::all() {
            let r = run_sampled_with(SimConfig::for_variant(v), &p, &set, params)
                .unwrap_or_else(|e| panic!("{v}: {e}"));
            assert_eq!(r.regs, *set.final_interp.regs(), "{v}");
            assert!(r.halted, "{v}");
        }
    }
}
