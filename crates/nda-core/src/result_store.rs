//! Persistent, content-addressed store of finished [`RunResult`]s — the
//! service-side sibling of [`ckpt_store`](crate::ckpt_store).
//!
//! A simulation result is a pure function of (program bytes, variant,
//! schedule, budget): nothing host-dependent enters the deterministic
//! fields, and the wall-clock instrumentation (`host_ns`,
//! `SampledInfo::{ff_wall_ns, detail_wall_ns}`) is explicitly *excluded*
//! from the encoding — a stored result decodes with those fields zeroed,
//! exactly like a journaled record. That makes a warm hit bit-identical
//! to a fresh run for every consumer that matters (metrics documents,
//! fingerprints, differential tests), which is the property the serve
//! layer's response cache is built on.
//!
//! ## On-disk format
//!
//! One entry per file, `<key:016x>.res` under the store directory:
//!
//! ```text
//! nda-result-v1 <checksum:016x>\n     ASCII header line
//! <key material, length-prefixed>     the exact bytes that were hashed
//! <RunResult encoding>                fixed little-endian layout
//! ```
//!
//! Unlike [`StoreKey`](crate::StoreKey), which knows how to derive its
//! material from a `(config, program, schedule)` triple, a [`ResultKey`]
//! is built from caller-supplied material ([`ResultKey::from_material`]):
//! the serve layer owns the request vocabulary (workload names, variant
//! sets, chaos knobs, ...) and this module should not. The contract is
//! the same — the material must cover *every* input that can change the
//! result — and the same collision discipline applies: material is
//! stored and verified byte-for-byte, so an FNV collision degrades to a
//! clean miss.
//!
//! Durability mirrors the checkpoint store: atomic tmp + fsync + rename
//! writes, corrupt entries quarantined into `quarantine/` and treated as
//! misses, and an optional size cap ([`ResultStore::with_max_bytes`])
//! enforced by oldest-mtime eviction after each save.

use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::{fnv1a64, gc_dir, Dec, Enc, GcStats};
use crate::run::{RunResult, SampledInfo};
use nda_mem::{CacheStats, MemStats};
use nda_stats::{CpiClass, Hist, Sample, SimStats, HIST_BUCKETS};

const MAGIC: &str = "nda-result-v1";
const NUM_REGS: usize = nda_isa::reg::NUM_REGS;

// ---------------------------------------------------------------------
// Bit-exact RunResult codec
// ---------------------------------------------------------------------

fn enc_hist(e: &mut Enc, h: &Hist) {
    e.u64(h.count);
    e.u64(h.sum);
    for b in h.buckets {
        e.u64(b);
    }
}

fn dec_hist(d: &mut Dec) -> Option<Hist> {
    let count = d.u64()?;
    let sum = d.u64()?;
    let mut buckets = [0u64; HIST_BUCKETS];
    for b in &mut buckets {
        *b = d.u64()?;
    }
    Some(Hist {
        count,
        sum,
        buckets,
    })
}

fn enc_cache(e: &mut Enc, c: &CacheStats) {
    e.u64(c.hits);
    e.u64(c.misses);
}

fn dec_cache(d: &mut Dec) -> Option<CacheStats> {
    Some(CacheStats {
        hits: d.u64()?,
        misses: d.u64()?,
    })
}

/// Encode every deterministic field of `r` into a fixed little-endian
/// layout (floats by their IEEE-754 bits). Wall-clock instrumentation is
/// not encoded; see the [module docs](self).
pub fn encode_result(r: &RunResult) -> Vec<u8> {
    let s = &r.stats;
    let mut e = Enc::default();
    e.u64(s.cycles);
    e.u64(s.committed_insts);
    e.u64(s.committed_loads);
    e.u64(s.committed_stores);
    e.u64(s.committed_branches);
    e.u64(s.branch_mispredicts);
    e.u64(s.mem_order_violations);
    e.u64(s.squashes);
    e.u64(s.faults);
    e.u64(s.wrong_path_executed);
    e.u64(s.commit_cycles);
    e.u64(s.memory_stall_cycles);
    e.u64(s.backend_stall_cycles);
    e.u64(s.frontend_stall_cycles);
    e.u64(s.dispatch_to_issue_total);
    e.u64(s.issued_insts);
    e.u64(s.issue_active_cycles);
    e.u64(s.deferred_broadcasts);
    e.u64(s.broadcasts);
    e.u64(s.store_bypasses);
    for class in CpiClass::all() {
        e.u64(s.cpi_stack.get(class));
    }
    enc_hist(&mut e, &s.d2i_hist);
    enc_hist(&mut e, &s.defer_hist);

    let m = &r.mem_stats;
    enc_cache(&mut e, &m.l1i);
    enc_cache(&mut e, &m.l1d);
    enc_cache(&mut e, &m.l2);
    e.u64(m.dram_accesses);
    e.u64(m.prefetches);
    e.bool(m.mlp.is_some());
    if let Some(mlp) = m.mlp {
        e.f64(mlp);
    }

    for reg in r.regs {
        e.u64(reg);
    }
    e.bool(r.halted);
    e.bool(r.sampled.is_some());
    if let Some(sp) = &r.sampled {
        e.f64(sp.cpi.mean);
        e.f64(sp.cpi.ci95);
        e.usize(sp.cpi.n);
        e.u64(sp.detailed_insts);
        e.u64(sp.fast_forwarded_insts);
        e.usize(sp.windows);
    }
    e.buf
}

/// Decode one [`encode_result`] body. `None` on truncation, a malformed
/// tag, or trailing garbage — all quarantine cases for the store.
pub fn decode_result(bytes: &[u8]) -> Option<RunResult> {
    let mut d = Dec::new(bytes);
    let r = dec_result(&mut d)?;
    d.done().then_some(r)
}

fn dec_result(d: &mut Dec) -> Option<RunResult> {
    let mut stats = SimStats::new();
    stats.cycles = d.u64()?;
    stats.committed_insts = d.u64()?;
    stats.committed_loads = d.u64()?;
    stats.committed_stores = d.u64()?;
    stats.committed_branches = d.u64()?;
    stats.branch_mispredicts = d.u64()?;
    stats.mem_order_violations = d.u64()?;
    stats.squashes = d.u64()?;
    stats.faults = d.u64()?;
    stats.wrong_path_executed = d.u64()?;
    stats.commit_cycles = d.u64()?;
    stats.memory_stall_cycles = d.u64()?;
    stats.backend_stall_cycles = d.u64()?;
    stats.frontend_stall_cycles = d.u64()?;
    stats.dispatch_to_issue_total = d.u64()?;
    stats.issued_insts = d.u64()?;
    stats.issue_active_cycles = d.u64()?;
    stats.deferred_broadcasts = d.u64()?;
    stats.broadcasts = d.u64()?;
    stats.store_bypasses = d.u64()?;
    for class in CpiClass::all() {
        stats.cpi_stack.set(class, d.u64()?);
    }
    stats.d2i_hist = dec_hist(d)?;
    stats.defer_hist = dec_hist(d)?;

    let mem_stats = MemStats {
        l1i: dec_cache(d)?,
        l1d: dec_cache(d)?,
        l2: dec_cache(d)?,
        dram_accesses: d.u64()?,
        prefetches: d.u64()?,
        mlp: if d.bool()? { Some(d.f64()?) } else { None },
    };

    let mut regs = [0u64; NUM_REGS];
    for reg in &mut regs {
        *reg = d.u64()?;
    }
    let halted = d.bool()?;
    let sampled = if d.bool()? {
        Some(SampledInfo {
            cpi: Sample {
                mean: d.f64()?,
                ci95: d.f64()?,
                n: d.usize()?,
            },
            detailed_insts: d.u64()?,
            fast_forwarded_insts: d.u64()?,
            windows: d.usize()?,
            // Wall-clock instrumentation is never stored.
            ff_wall_ns: 0,
            detail_wall_ns: 0,
        })
    } else {
        None
    };

    Some(RunResult {
        stats,
        mem_stats,
        regs,
        halted,
        host_ns: 0,
        sampled,
    })
}

/// Strip the wall-clock instrumentation fields from `r`, leaving exactly
/// what [`encode_result`] preserves. The serve layer canonicalizes every
/// result through this before caching or rendering, so a warm response is
/// bit-identical to a cold one.
pub fn sanitize_result(mut r: RunResult) -> RunResult {
    r.host_ns = 0;
    if let Some(sp) = &mut r.sampled {
        sp.ff_wall_ns = 0;
        sp.detail_wall_ns = 0;
    }
    r
}

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

/// The content-addressed identity of one result: caller-supplied key
/// material plus its FNV-1a hash (the filename, and the serve layer's
/// shard selector). The material must cover every input that can change
/// the result; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultKey {
    hash: u64,
    material: Vec<u8>,
}

impl ResultKey {
    /// Build a key over `material`.
    pub fn from_material(material: Vec<u8>) -> ResultKey {
        ResultKey {
            hash: fnv1a64(&material),
            material,
        }
    }

    /// The 64-bit content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The exact bytes the hash covers.
    pub fn material(&self) -> &[u8] {
        &self.material
    }

    /// The entry filename, `<hash:016x>.res`.
    pub fn filename(&self) -> String {
        format!("{:016x}.res", self.hash)
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// A directory of cached [`RunResult`]s. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

impl ResultStore {
    /// Open (creating if necessary) a store rooted at `dir`, uncapped.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            max_bytes: None,
        })
    }

    /// Set (or clear) the size cap. A capped store garbage-collects after
    /// every save, evicting oldest-mtime entries.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> ResultStore {
        self.max_bytes = max_bytes;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key` (whether or not it exists).
    pub fn entry_path(&self, key: &ResultKey) -> PathBuf {
        self.dir.join(key.filename())
    }

    /// Evict oldest-mtime entries until the store's `*.res` bytes are at
    /// or under `max_bytes`.
    ///
    /// # Errors
    ///
    /// Propagates a directory-scan failure; individual file races are
    /// skipped.
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcStats> {
        gc_dir(&self.dir, "res", max_bytes)
    }

    /// Move a bad entry into `quarantine/` (best-effort: if even that
    /// fails, fall back to removing it so it cannot poison every
    /// subsequent run).
    fn quarantine(&self, path: &Path) {
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir).is_ok()
            && path
                .file_name()
                .is_some_and(|name| fs::rename(path, qdir.join(name)).is_ok());
        if !moved {
            let _ = fs::remove_file(path);
        }
    }

    /// Load the entry for `key`. `None` is a clean miss; corrupt entries
    /// are quarantined and also report a miss.
    pub fn load(&self, key: &ResultKey) -> Option<RunResult> {
        let path = self.entry_path(key);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(_) => return None,
        };
        match Self::parse(&data, key) {
            Ok(r) => r,
            Err(()) => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// `Ok(Some)` = valid entry for this key; `Ok(None)` = valid entry for
    /// a *different* key (hash collision — a miss, but not corruption);
    /// `Err(())` = corrupt, quarantine.
    fn parse(data: &[u8], key: &ResultKey) -> Result<Option<RunResult>, ()> {
        let nl = data.iter().position(|&b| b == b'\n').ok_or(())?;
        let header = std::str::from_utf8(&data[..nl]).map_err(|_| ())?;
        let checksum_hex = header.strip_prefix(MAGIC).ok_or(())?.trim();
        let checksum = u64::from_str_radix(checksum_hex, 16).map_err(|_| ())?;
        let body = &data[nl + 1..];
        if fnv1a64(body) != checksum {
            return Err(());
        }
        let mut d = Dec::new(body);
        let material = d.bytes().ok_or(())?;
        if material != key.material.as_slice() {
            return Ok(None);
        }
        let r = dec_result(&mut d).ok_or(())?;
        if !d.done() {
            return Err(());
        }
        Ok(Some(r))
    }

    /// Write the entry for `key` atomically (tmp + fsync + rename). The
    /// stored bytes are of [`sanitize_result`]`(*r)` — wall-clock fields
    /// never reach disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers on the hot path treat a
    /// failed save as "cache disabled", never as a job failure.
    pub fn save(&self, key: &ResultKey, r: &RunResult) -> std::io::Result<PathBuf> {
        let mut e = Enc::default();
        e.bytes(&key.material);
        e.buf.extend_from_slice(&encode_result(r));
        let body = e.buf;
        let mut data = format!("{MAGIC} {:016x}\n", fnv1a64(&body)).into_bytes();
        data.extend_from_slice(&body);

        let final_path = self.entry_path(key);
        let tmp = self
            .dir
            .join(format!(".tmp.{}.{}", std::process::id(), key.filename()));
        fs::write(&tmp, &data)?;
        let f = fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        match fs::rename(&tmp, &final_path) {
            Ok(()) => {
                if let Some(cap) = self.max_bytes {
                    let _ = self.gc(cap);
                }
                Ok(final_path)
            }
            Err(err) => {
                let _ = fs::remove_file(&tmp);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::run::run_variant;
    use nda_isa::{Asm, Reg};

    fn result() -> RunResult {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 200).li(Reg::X5, 0x2_0000);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.st8(Reg::X2, Reg::X5, 0);
        asm.ld8(Reg::X4, Reg::X5, 0);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        let p = asm.assemble().unwrap();
        run_variant(Variant::Ooo, &p, 1_000_000).unwrap()
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let r = result();
        let back = decode_result(&encode_result(&r)).expect("decodes");
        assert_eq!(sanitize_result(r), back);
    }

    #[test]
    fn codec_round_trips_sampled_and_mlp() {
        let mut r = sanitize_result(result());
        r.mem_stats.mlp = Some(1.5f64.sqrt());
        r.sampled = Some(SampledInfo {
            cpi: Sample {
                mean: 1.25,
                ci95: 0.03,
                n: 7,
            },
            detailed_insts: 1234,
            fast_forwarded_insts: 99999,
            windows: 7,
            ff_wall_ns: 0,
            detail_wall_ns: 0,
        });
        let back = decode_result(&encode_result(&r)).expect("decodes");
        assert_eq!(r, back);
    }

    #[test]
    fn store_round_trip_and_miss_semantics() {
        let dir = std::env::temp_dir().join(format!("nda-res-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let r = result();
        let key = ResultKey::from_material(b"job-a".to_vec());
        assert!(store.load(&key).is_none(), "empty store misses");
        store.save(&key, &r).unwrap();
        assert_eq!(store.load(&key), Some(sanitize_result(r)));

        // A valid entry for a *different* key is a clean miss, not
        // corruption: copy key-a's entry onto key-b's filename.
        let other = ResultKey::from_material(b"job-b".to_vec());
        fs::copy(store.entry_path(&key), store.entry_path(&other)).unwrap();
        assert!(store.load(&other).is_none());
        assert!(
            store.entry_path(&other).exists(),
            "collision must not quarantine"
        );

        // A corrupt entry is quarantined and misses.
        fs::write(store.entry_path(&key), b"nda-result-v1 0000\ngarbage").unwrap();
        assert!(store.load(&key).is_none());
        assert!(!store.entry_path(&key).exists());
        assert!(dir.join("quarantine").join(key.filename()).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_store_evicts_oldest_first() {
        let dir = std::env::temp_dir().join(format!("nda-res-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let r = result();
        let entry_size = {
            let probe = ResultStore::open(&dir).unwrap();
            let key = ResultKey::from_material(b"probe".to_vec());
            let path = probe.save(&key, &r).unwrap();
            let n = fs::metadata(&path).unwrap().len();
            fs::remove_file(&path).unwrap();
            n
        };
        // Room for roughly three entries.
        let cap = entry_size * 3 + entry_size / 2;
        let store = ResultStore::open(&dir).unwrap().with_max_bytes(Some(cap));
        let keys: Vec<ResultKey> = (0..6)
            .map(|i| ResultKey::from_material(format!("job-{i}").into_bytes()))
            .collect();
        for key in &keys {
            store.save(key, &r).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let total: u64 = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "res"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= cap, "store size {total} exceeds cap {cap}");
        // Newest survivors still hit, bit-identically.
        assert_eq!(store.load(&keys[5]), Some(sanitize_result(r)));
        assert!(store.load(&keys[0]).is_none(), "oldest entry evicted");
        let _ = fs::remove_dir_all(&dir);
    }
}
