//! Per-cycle pipeline tracing (gem5 "O3 pipeview" style).
//!
//! Enable with [`crate::OooCore::enable_trace`]; every dispatched micro-op
//! then logs its dispatch / issue / complete / broadcast / commit / squash
//! cycles. [`render_pipeline`] draws the classic timeline:
//!
//! ```text
//! seq    pc  disasm                 |D..I...C.B..R      |
//! ```
//!
//! `D` dispatch, `I` issue, `C` complete (writeback), `B` tag broadcast,
//! `R` retire (commit), `x` squash. The gap between `C` and `B` is NDA's
//! deferred broadcast made visible.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A pipeline lifecycle point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStage {
    /// Entered the ROB.
    Dispatch,
    /// Began execution.
    Issue,
    /// Finished execution (writeback).
    Complete,
    /// Woke dependents (tag broadcast).
    Broadcast,
    /// Retired.
    Commit,
    /// Squashed (wrong path, replay or fault).
    Squash,
    /// Instant: the micro-op's data access missed the L1 (annotated on
    /// the cache track by exporters).
    CacheMiss,
    /// Instant: a branch resolved mispredicted (predictor track).
    Mispredict,
    /// Instant: the STT/ShadowBinding transmit gate withheld an otherwise
    /// ready transmitting micro-op because a transmit operand was tainted
    /// (emitted once per dynamic instance, on the first withheld cycle).
    TaintGated,
}

impl TraceStage {
    /// One-character marker used by the renderer.
    pub fn marker(self) -> char {
        match self {
            TraceStage::Dispatch => 'D',
            TraceStage::Issue => 'I',
            TraceStage::Complete => 'C',
            TraceStage::Broadcast => 'B',
            TraceStage::Commit => 'R',
            TraceStage::Squash => 'x',
            TraceStage::CacheMiss => 'M',
            TraceStage::Mispredict => '!',
            TraceStage::TaintGated => 'T',
        }
    }

    /// Stable lowercase name (exporter track/category labels).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Dispatch => "dispatch",
            TraceStage::Issue => "issue",
            TraceStage::Complete => "complete",
            TraceStage::Broadcast => "broadcast",
            TraceStage::Commit => "commit",
            TraceStage::Squash => "squash",
            TraceStage::CacheMiss => "cache-miss",
            TraceStage::Mispredict => "mispredict",
            TraceStage::TaintGated => "taint-gated",
        }
    }
}

/// A consumer of pipeline events.
///
/// The core itself never holds a sink: tracing appends to an internal
/// buffer behind one `Option` check (zero cost when off), and a driver
/// loop drains that buffer into a sink incrementally via
/// [`crate::OooCore::take_trace_events`] (see
/// [`crate::OooCore::run_with_sink`]). This keeps sinks strictly
/// observer-only — they can not perturb simulated state — and keeps
/// memory bounded on long runs.
pub trait EventSink {
    /// Consume one event. Events arrive in emission order; cycles are
    /// monotonically non-decreasing.
    fn event(&mut self, ev: &TraceEvent);

    /// Called once after the final event of a run.
    fn finish(&mut self) {}
}

/// An [`EventSink`] that buffers every event (tests and tooling).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected events.
    pub events: Vec<TraceEvent>,
}

impl EventSink for VecSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// One logged event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// Dynamic instance id: (sequence number, dispatch cycle) pairs are
    /// unique even though sequence numbers are reused after squashes.
    pub seq: u64,
    /// Instruction index.
    pub pc: usize,
    /// Disassembly.
    pub disasm: String,
    /// Lifecycle point.
    pub stage: TraceStage,
    /// Effective `(address, bytes)` of a memory micro-op, known from
    /// [`TraceStage::Issue`] onward (`None` for non-memory micro-ops and
    /// for stages before the address resolves). Wrong-path instances
    /// carry their transient address — which is exactly what leak
    /// observers need.
    pub mem: Option<(u64, u64)>,
}

/// Render events as one row per dynamic micro-op instance.
///
/// `window` optionally restricts the rendered cycle range; `max_rows`
/// bounds the output.
pub fn render_pipeline(
    events: &[TraceEvent],
    window: Option<(u64, u64)>,
    max_rows: usize,
) -> String {
    // Group by dynamic instance: (seq, dispatch cycle). Events arrive in
    // time order, so a new Dispatch for a seq starts a new instance.
    #[derive(Default, Clone)]
    struct Row {
        pc: usize,
        disasm: String,
        points: Vec<(u64, char)>,
        first: u64,
        last: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut open: BTreeMap<u64, usize> = BTreeMap::new(); // seq -> row idx
    for e in events {
        if let Some((lo, hi)) = window {
            if e.cycle < lo || e.cycle > hi {
                continue;
            }
        }
        let idx = match e.stage {
            TraceStage::Dispatch => {
                let idx = rows.len();
                rows.push(Row {
                    pc: e.pc,
                    disasm: e.disasm.clone(),
                    points: Vec::new(),
                    first: e.cycle,
                    last: e.cycle,
                });
                open.insert(e.seq, idx);
                idx
            }
            _ => match open.get(&e.seq) {
                Some(&i) => i,
                None => continue, // dispatched outside the window
            },
        };
        let row = &mut rows[idx];
        row.points.push((e.cycle, e.stage.marker()));
        row.last = row.last.max(e.cycle);
        if matches!(e.stage, TraceStage::Commit | TraceStage::Squash) {
            open.remove(&e.seq);
        }
    }
    if rows.is_empty() {
        return "(no events in window)\n".to_string();
    }
    let t0 = rows.iter().map(|r| r.first).min().unwrap_or(0);
    let t1 = rows.iter().map(|r| r.last).max().unwrap_or(0);
    let span = (t1 - t0 + 1).min(2000) as usize;
    let mut out = String::new();
    let _ = writeln!(out, "cycles {t0}..{t1} ({} micro-op instances)", rows.len());
    for r in rows.iter().take(max_rows) {
        let mut lane = vec!['.'; span];
        for &(c, m) in &r.points {
            let off = (c - t0) as usize;
            if off < span {
                // Later markers overwrite earlier ones in the same cycle
                // except never overwrite a squash.
                if lane[off] != 'x' {
                    lane[off] = m;
                }
            }
        }
        let lane: String = lane.into_iter().collect();
        let _ = writeln!(
            out,
            "@{:>4} {:28} |{}|",
            r.pc,
            truncate(&r.disasm, 28),
            lane
        );
    }
    if rows.len() > max_rows {
        let _ = writeln!(out, "... {} more rows", rows.len() - max_rows);
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, pc: usize, stage: TraceStage) -> TraceEvent {
        TraceEvent {
            cycle,
            seq,
            pc,
            disasm: format!("i{pc}"),
            stage,
            mem: None,
        }
    }

    #[test]
    fn renders_lifecycle_markers() {
        let events = vec![
            ev(10, 0, 5, TraceStage::Dispatch),
            ev(11, 0, 5, TraceStage::Issue),
            ev(13, 0, 5, TraceStage::Complete),
            ev(15, 0, 5, TraceStage::Broadcast),
            ev(16, 0, 5, TraceStage::Commit),
        ];
        let s = render_pipeline(&events, None, 10);
        assert!(s.contains("D"), "{s}");
        let lane = s.lines().nth(1).unwrap();
        assert!(lane.contains("DI.C.BR"), "{lane}");
    }

    #[test]
    fn squash_marks_x() {
        let events = vec![
            ev(1, 3, 9, TraceStage::Dispatch),
            ev(2, 3, 9, TraceStage::Issue),
            ev(4, 3, 9, TraceStage::Squash),
        ];
        let s = render_pipeline(&events, None, 10);
        assert!(s.contains('x'), "{s}");
    }

    #[test]
    fn seq_reuse_makes_separate_rows() {
        let events = vec![
            ev(1, 7, 1, TraceStage::Dispatch),
            ev(2, 7, 1, TraceStage::Squash),
            ev(5, 7, 2, TraceStage::Dispatch),
            ev(6, 7, 2, TraceStage::Commit),
        ];
        let s = render_pipeline(&events, None, 10);
        assert!(s.contains("2 micro-op instances"), "{s}");
    }

    #[test]
    fn window_filters() {
        let events = vec![
            ev(1, 0, 1, TraceStage::Dispatch),
            ev(100, 1, 2, TraceStage::Dispatch),
            ev(101, 1, 2, TraceStage::Commit),
        ];
        let s = render_pipeline(&events, Some((90, 200)), 10);
        assert!(s.contains("1 micro-op instances"), "{s}");
    }

    #[test]
    fn empty_window_reports() {
        let s = render_pipeline(&[], None, 10);
        assert!(s.contains("no events"));
    }
}
