//! # CPU timing models with NDA: the heart of the reproduction
//!
//! This crate implements the paper's experimental platform from scratch:
//!
//! * [`OooCore`] — a cycle-level out-of-order core in the style of gem5's
//!   O3 (8-wide, 192-entry ROB, 32+32 LSQ, physical-register renaming, true
//!   wrong-path execution), parameterised by an [`NdaPolicy`] implementing
//!   the six data-propagation policies of Table 2, plus the two
//!   [`InvisiSpec`](IsVariant) comparison models.
//! * [`InOrderCore`] — the blocking in-order baseline (gem5
//!   `TimingSimpleCPU` analogue), the only other model that defeats all
//!   known speculative-execution attacks.
//! * [`Variant`] — the ten evaluated configurations of Fig 7, and
//!   [`run_variant`] to execute a program on any of them.
//!
//! ```
//! use nda_core::{run_variant, Variant};
//! use nda_isa::{Asm, Reg};
//!
//! let mut asm = Asm::new();
//! asm.li(Reg::X2, 21);
//! asm.add(Reg::X3, Reg::X2, Reg::X2);
//! asm.halt();
//! let prog = asm.assemble()?;
//! let insecure = run_variant(Variant::Ooo, &prog, 100_000)?;
//! let protected = run_variant(Variant::FullProtection, &prog, 100_000)?;
//! // NDA changes timing, never architecture:
//! assert_eq!(insecure.regs[3], 42);
//! assert_eq!(protected.regs[3], 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod ckpt_store;
mod codec;
pub mod config;
pub mod inorder;
pub mod ooo;
pub mod policy;
pub mod result_store;
pub mod run;
pub mod sampled;
pub mod snapshot;
pub mod trace;

pub use ckpt_store::{collect_checkpoints_cached, CheckpointStore, StoreKey};
pub use codec::GcStats;
pub use config::{CoreConfig, SimConfig, Variant};
pub use inorder::InOrderCore;
pub use ooo::core::{OooCore, RobCellState, RobView};
pub use ooo::invariants::{InvariantKind, InvariantViolation};
pub use policy::{IsVariant, NdaPolicy, Propagation, TaintPolicy, TaintThreat, UntaintTiming};
pub use result_store::{sanitize_result, ResultKey, ResultStore};
pub use run::{
    run_smarts, run_smarts_with, run_variant, run_with_config, RunResult, SampledInfo, SimError,
    SmartsInterrupted, SmartsParams,
};
pub use sampled::{
    collect_checkpoints, collect_checkpoints_with, run_sampled, run_sampled_with, Checkpoint,
    CheckpointSet, FfEngine, SampledParams,
};
pub use snapshot::{HeadInfo, HeadWait, PipelineSnapshot};
pub use trace::{render_pipeline, EventSink, TraceEvent, TraceStage, VecSink};
