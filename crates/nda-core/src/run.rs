//! Top-level entry points: run a program on any evaluated variant.

use crate::config::{CoreModel, SimConfig, Variant};
use crate::inorder::InOrderCore;
use crate::ooo::core::OooCore;
use nda_isa::{Fault, Program};
use nda_mem::MemStats;
use nda_stats::SimStats;
use std::error::Error;
use std::fmt;

/// Abnormal simulation termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget was exhausted before `Halt` committed.
    CycleLimit {
        /// Cycles simulated when the budget ran out.
        cycles: u64,
    },
    /// A fault committed and the program has no fault handler.
    UnhandledFault(Fault),
    /// The architectural PC left the text segment.
    PcOutOfRange {
        /// The out-of-range PC.
        pc: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { cycles } => {
                write!(f, "cycle budget exhausted after {cycles} cycles")
            }
            SimError::UnhandledFault(fault) => write!(f, "unhandled fault: {fault}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
        }
    }
}

impl Error for SimError {}

/// The outcome of a completed simulation.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Core counters (cycles, CPI, stalls, ILP, broadcasts, ...).
    pub stats: SimStats,
    /// Memory-hierarchy counters (hits, misses, MLP).
    pub mem_stats: MemStats,
    /// Final architectural register values.
    pub regs: [u64; 32],
    /// `true` if `Halt` committed.
    pub halted: bool,
}

impl RunResult {
    /// Convenience: cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        self.stats.cpi()
    }
}

/// Run `program` under an explicit [`SimConfig`].
///
/// # Errors
///
/// See [`SimError`].
pub fn run_with_config(
    cfg: SimConfig,
    program: &Program,
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    match cfg.model {
        CoreModel::OutOfOrder => OooCore::new(cfg, program).run(max_cycles),
        CoreModel::InOrder => InOrderCore::new(cfg, program).run(max_cycles),
    }
}

/// SMARTS-style sampled measurement (paper §6.1 / Wunderlich et al.):
/// within ONE run, alternate functional warming and measurement windows,
/// returning the per-window CPIs. The caller aggregates them with
/// `nda_stats::Sample` for a confidence interval.
///
/// `warmup_insts` instructions are executed (detailed, warming caches and
/// predictors) before each `measure_insts`-instruction window is scored.
/// Sampling stops at `max_windows` or when the program halts.
///
/// # Errors
///
/// See [`SimError`]. A program that halts before the first window
/// completes yields however many windows finished (possibly none).
pub fn run_smarts(
    cfg: SimConfig,
    program: &Program,
    warmup_insts: u64,
    measure_insts: u64,
    max_windows: usize,
) -> Result<Vec<f64>, SimError> {
    let mut core = match cfg.model {
        CoreModel::OutOfOrder => crate::OooCore::new(cfg, program),
        CoreModel::InOrder => {
            // The blocking core has no sampling need (no warm-up-sensitive
            // speculation state); fall back to whole-run CPI.
            let mut c = crate::InOrderCore::new(cfg, program);
            let r = c.run(u64::MAX / 2)?;
            return Ok(vec![r.cpi()]);
        }
    };
    let mut windows = Vec::new();
    let budget_per_phase: u64 = 200_000_000;
    'outer: while windows.len() < max_windows && !core.halted() {
        // Warm.
        core.reset_stats();
        let warm_deadline = core.cycle() + budget_per_phase;
        while core.stats.committed_insts < warmup_insts {
            if core.halted() {
                break 'outer;
            }
            if core.cycle() >= warm_deadline {
                return Err(SimError::CycleLimit { cycles: core.cycle() });
            }
            core.step_cycle();
        }
        // Measure.
        core.reset_stats();
        let measure_deadline = core.cycle() + budget_per_phase;
        while core.stats.committed_insts < measure_insts {
            if core.halted() {
                break 'outer;
            }
            if core.cycle() >= measure_deadline {
                return Err(SimError::CycleLimit { cycles: core.cycle() });
            }
            core.step_cycle();
        }
        windows.push(core.stats.cpi());
    }
    Ok(windows)
}

/// Run `program` on one of the ten evaluated variants (Fig 7).
///
/// # Errors
///
/// See [`SimError`].
///
/// ```
/// use nda_core::{run_variant, Variant};
/// use nda_isa::{Asm, Reg};
///
/// let mut asm = Asm::new();
/// asm.li(Reg::X2, 7);
/// asm.halt();
/// let prog = asm.assemble()?;
/// let r = run_variant(Variant::InOrder, &prog, 100_000)?;
/// assert_eq!(r.regs[2], 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_variant(v: Variant, program: &Program, max_cycles: u64) -> Result<RunResult, SimError> {
    run_with_config(SimConfig::for_variant(v), program, max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::{Asm, Reg};

    #[test]
    fn every_variant_runs_the_same_program() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 6).li(Reg::X3, 7).alu(nda_isa::AluOp::Mul, Reg::X4, Reg::X2, Reg::X3);
        asm.halt();
        let p = asm.assemble().unwrap();
        for v in Variant::all() {
            let r = run_variant(v, &p, 1_000_000).unwrap_or_else(|e| panic!("{v}: {e}"));
            assert_eq!(r.regs[4], 42, "{v}");
            assert!(r.halted);
            assert_eq!(r.stats.committed_insts, 4, "{v}");
        }
    }

    #[test]
    fn cycle_limit_reported() {
        let mut asm = Asm::new();
        let top = asm.here_label();
        asm.jmp(top);
        let p = asm.assemble().unwrap();
        let err = run_variant(Variant::Ooo, &p, 500).unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!SimError::CycleLimit { cycles: 5 }.to_string().is_empty());
        assert!(!SimError::PcOutOfRange { pc: 3 }.to_string().is_empty());
    }
}
