//! Top-level entry points: run a program on any evaluated variant.

use crate::config::{CoreModel, SimConfig, Variant};
use crate::inorder::InOrderCore;
use crate::ooo::core::OooCore;
use crate::ooo::invariants::InvariantViolation;
use crate::snapshot::PipelineSnapshot;
use nda_isa::{Fault, Program};
use nda_mem::MemStats;
use nda_stats::SimStats;
use std::error::Error;
use std::fmt;

/// Abnormal simulation termination.
///
/// Non-exhaustive: robustness checks may grow new failure modes, so callers
/// must keep a wildcard arm.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SimError {
    /// The cycle budget was exhausted before `Halt` committed.
    CycleLimit {
        /// Cycles simulated when the budget ran out.
        cycles: u64,
        /// Pipeline state at the limit (out-of-order core only).
        snapshot: Option<Box<PipelineSnapshot>>,
    },
    /// The forward-progress watchdog fired: no instruction committed for a
    /// whole [`watchdog_window`](crate::SimConfig::watchdog_window) even
    /// though the cycle budget had room left. Distinguishes a wedged
    /// pipeline (this) from a program that is merely slow or looping
    /// ([`SimError::CycleLimit`]).
    Stalled {
        /// Cycles simulated when the watchdog fired.
        cycles: u64,
        /// The configured no-commit window that elapsed.
        window: u64,
        /// What the pipeline looked like, including the stuck ROB head.
        snapshot: Box<PipelineSnapshot>,
    },
    /// The cycle-level invariant checker
    /// ([`check_invariants`](crate::SimConfig::check_invariants)) found a
    /// broken micro-architectural conservation law.
    InvariantViolation(Box<InvariantViolation>),
    /// A fault committed and the program has no fault handler.
    UnhandledFault(Fault),
    /// The architectural PC left the text segment.
    PcOutOfRange {
        /// The out-of-range PC.
        pc: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { cycles, snapshot } => {
                write!(f, "cycle budget exhausted after {cycles} cycles")?;
                if let Some(s) = snapshot {
                    write!(f, "\n{s}")?;
                }
                Ok(())
            }
            SimError::Stalled {
                cycles,
                window,
                snapshot,
            } => {
                write!(
                    f,
                    "pipeline stalled: no commit for {window} cycles (at cycle {cycles})\n{snapshot}"
                )
            }
            SimError::InvariantViolation(v) => write!(f, "invariant violation: {v}"),
            SimError::UnhandledFault(fault) => write!(f, "unhandled fault: {fault}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvariantViolation(v) => Some(v.as_ref()),
            _ => None,
        }
    }
}

/// Sampled-simulation summary attached to a [`RunResult`] by
/// [`run_sampled`](crate::run_sampled): how the run split between the fast
/// functional path and the detailed windows, and the CPI estimate with its
/// confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledInfo {
    /// Per-window CPI mean ± 95 % CI (Student-t over measurement windows).
    pub cpi: nda_stats::Sample,
    /// Instructions committed through the detailed core across every warm
    /// and measurement window.
    pub detailed_insts: u64,
    /// Instructions executed on the functional fast-forward path (the whole
    /// program retires functionally; detailed windows run on the side from
    /// checkpoints).
    pub fast_forwarded_insts: u64,
    /// Measurement windows that contributed a CPI.
    pub windows: usize,
    /// Host wall-clock nanoseconds spent collecting checkpoints (the
    /// functional fast-forward + warming pass). Zero when the checkpoints
    /// came from the persistent store (a warm hit skips fast-forward) or
    /// when timing was not captured. Host-side instrumentation only — like
    /// [`RunResult::host_ns`], never part of determinism comparisons and
    /// never serialized into the sweep journal.
    pub ff_wall_ns: u64,
    /// Host wall-clock nanoseconds spent in the detailed warm+measure
    /// windows. Same instrumentation-only caveats as
    /// [`SampledInfo::ff_wall_ns`].
    pub detail_wall_ns: u64,
}

/// The outcome of a completed simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Core counters (cycles, CPI, stalls, ILP, broadcasts, ...).
    pub stats: SimStats,
    /// Memory-hierarchy counters (hits, misses, MLP).
    pub mem_stats: MemStats,
    /// Final architectural register values.
    pub regs: [u64; 32],
    /// `true` if `Halt` committed.
    pub halted: bool,
    /// Host wall-clock nanoseconds the simulation took (captured by
    /// [`run_with_config`]; zero when a core's `result()` is snapshotted
    /// directly). Host-side instrumentation only — NOT architectural
    /// state, and never part of determinism comparisons.
    pub host_ns: u64,
    /// `Some` when the result came from sampled simulation
    /// ([`run_sampled`](crate::run_sampled)): `stats.cycles` is then the
    /// *estimated* whole-run cycle count (`cpi.mean × committed_insts`) and
    /// `mem_stats` covers only the detailed windows.
    pub sampled: Option<SampledInfo>,
}

impl RunResult {
    /// Convenience: cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        self.stats.cpi()
    }

    /// Export every counter and histogram of this run into a fresh
    /// [`nda_stats::MetricsRegistry`] (the `--metrics-out` document).
    pub fn metrics(&self) -> nda_stats::MetricsRegistry {
        let mut reg = nda_stats::MetricsRegistry::new();
        self.stats.export(&mut reg);
        self.mem_stats.export(&mut reg);
        reg.counter("run.halted", u64::from(self.halted));
        if let Some(s) = &self.sampled {
            reg.counter("sim.ff_wall_ns", s.ff_wall_ns);
            reg.counter("sim.detail_wall_ns", s.detail_wall_ns);
        }
        reg
    }

    /// Host wall-clock seconds (0.0 when not captured).
    pub fn host_seconds(&self) -> f64 {
        self.host_ns as f64 / 1e9
    }

    /// Simulated cycles per host second — the simulator's throughput.
    /// `None` when host time was not captured.
    pub fn sim_cycles_per_host_sec(&self) -> Option<f64> {
        (self.host_ns > 0).then(|| self.stats.cycles as f64 * 1e9 / self.host_ns as f64)
    }

    /// Committed instructions per host microsecond (simulation MIPS).
    /// `None` when host time was not captured.
    pub fn committed_mips(&self) -> Option<f64> {
        (self.host_ns > 0).then(|| self.stats.committed_insts as f64 * 1e3 / self.host_ns as f64)
    }
}

/// Run `program` under an explicit [`SimConfig`].
///
/// # Errors
///
/// See [`SimError`].
pub fn run_with_config(
    cfg: SimConfig,
    program: &Program,
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    let start = std::time::Instant::now();
    let mut r = match cfg.model {
        CoreModel::OutOfOrder => OooCore::new(cfg, program).run(max_cycles),
        CoreModel::InOrder => InOrderCore::new(cfg, program).run(max_cycles),
    }?;
    r.host_ns = start.elapsed().as_nanos() as u64;
    Ok(r)
}

/// Tuning knobs for [`run_smarts_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmartsParams {
    /// Instructions executed (detailed, warming caches and predictors)
    /// before each measurement window.
    pub warmup_insts: u64,
    /// Instructions scored per measurement window.
    pub measure_insts: u64,
    /// Stop after this many windows (or when the program halts).
    pub max_windows: usize,
    /// Cycle budget for any single warm or measure phase; a phase that
    /// exceeds it aborts the run with [`SimError::CycleLimit`].
    pub budget_per_phase: u64,
}

impl SmartsParams {
    /// Default per-phase cycle budget (the historical hard-coded value).
    pub const DEFAULT_BUDGET_PER_PHASE: u64 = 200_000_000;

    /// Parameters with the default per-phase budget.
    pub fn new(warmup_insts: u64, measure_insts: u64, max_windows: usize) -> SmartsParams {
        SmartsParams {
            warmup_insts,
            measure_insts,
            max_windows,
            budget_per_phase: SmartsParams::DEFAULT_BUDGET_PER_PHASE,
        }
    }
}

/// A SMARTS run that died mid-sampling: the error plus every window that
/// completed before it, so a long measurement is not a total loss.
#[derive(Debug, Clone)]
pub struct SmartsInterrupted {
    /// Per-window CPIs completed before the failure.
    pub completed_windows: Vec<f64>,
    /// What stopped the run.
    pub error: SimError,
}

impl fmt::Display for SmartsInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SMARTS sampling interrupted after {} complete window(s): {}",
            self.completed_windows.len(),
            self.error
        )
    }
}

impl Error for SmartsInterrupted {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// SMARTS-style sampled measurement (paper §6.1 / Wunderlich et al.):
/// within ONE run, alternate functional warming and measurement windows,
/// returning the per-window CPIs. The caller aggregates them with
/// `nda_stats::Sample` for a confidence interval.
///
/// # Errors
///
/// On failure the windows that did complete are returned alongside the
/// [`SimError`] in [`SmartsInterrupted`]. A program that halts before the
/// first window completes yields `Ok` with however many windows finished
/// (possibly none).
pub fn run_smarts_with(
    cfg: SimConfig,
    program: &Program,
    params: SmartsParams,
) -> Result<Vec<f64>, SmartsInterrupted> {
    let mut core = match cfg.model {
        CoreModel::OutOfOrder => crate::OooCore::new(cfg, program),
        CoreModel::InOrder => {
            // The blocking core has no sampling need (no warm-up-sensitive
            // speculation state); fall back to whole-run CPI.
            let mut c = crate::InOrderCore::new(cfg, program);
            let r = c.run(u64::MAX / 2).map_err(|error| SmartsInterrupted {
                completed_windows: Vec::new(),
                error,
            })?;
            return Ok(vec![r.cpi()]);
        }
    };
    let mut windows = Vec::new();
    'outer: while windows.len() < params.max_windows && !core.halted() {
        // Warm.
        core.reset_stats();
        let warm_deadline = core.cycle() + params.budget_per_phase;
        while core.stats.committed_insts < params.warmup_insts {
            if core.halted() {
                break 'outer;
            }
            if core.cycle() >= warm_deadline {
                return Err(SmartsInterrupted {
                    completed_windows: windows,
                    error: core.cycle_limit_error(),
                });
            }
            core.step_cycle();
        }
        // Measure.
        core.reset_stats();
        let measure_deadline = core.cycle() + params.budget_per_phase;
        while core.stats.committed_insts < params.measure_insts {
            if core.halted() {
                break 'outer;
            }
            if core.cycle() >= measure_deadline {
                return Err(SmartsInterrupted {
                    completed_windows: windows,
                    error: core.cycle_limit_error(),
                });
            }
            core.step_cycle();
        }
        windows.push(core.stats.cpi());
    }
    Ok(windows)
}

/// [`run_smarts_with`] with the default per-phase cycle budget, discarding
/// partial windows on failure. Kept for callers that only need the
/// happy-path window list.
///
/// # Errors
///
/// See [`SimError`].
pub fn run_smarts(
    cfg: SimConfig,
    program: &Program,
    warmup_insts: u64,
    measure_insts: u64,
    max_windows: usize,
) -> Result<Vec<f64>, SimError> {
    run_smarts_with(
        cfg,
        program,
        SmartsParams::new(warmup_insts, measure_insts, max_windows),
    )
    .map_err(|i| i.error)
}

/// Run `program` on one of the ten evaluated variants (Fig 7).
///
/// # Errors
///
/// See [`SimError`].
///
/// ```
/// use nda_core::{run_variant, Variant};
/// use nda_isa::{Asm, Reg};
///
/// let mut asm = Asm::new();
/// asm.li(Reg::X2, 7);
/// asm.halt();
/// let prog = asm.assemble()?;
/// let r = run_variant(Variant::InOrder, &prog, 100_000)?;
/// assert_eq!(r.regs[2], 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_variant(v: Variant, program: &Program, max_cycles: u64) -> Result<RunResult, SimError> {
    run_with_config(SimConfig::for_variant(v), program, max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::{Asm, Reg};

    #[test]
    fn every_variant_runs_the_same_program() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 6)
            .li(Reg::X3, 7)
            .alu(nda_isa::AluOp::Mul, Reg::X4, Reg::X2, Reg::X3);
        asm.halt();
        let p = asm.assemble().unwrap();
        for v in Variant::all() {
            let r = run_variant(v, &p, 1_000_000).unwrap_or_else(|e| panic!("{v}: {e}"));
            assert_eq!(r.regs[4], 42, "{v}");
            assert!(r.halted);
            assert_eq!(r.stats.committed_insts, 4, "{v}");
        }
    }

    #[test]
    fn cycle_limit_reported_with_snapshot() {
        let mut asm = Asm::new();
        let top = asm.here_label();
        asm.jmp(top);
        let p = asm.assemble().unwrap();
        let err = run_variant(Variant::Ooo, &p, 500).unwrap_err();
        match err {
            SimError::CycleLimit { cycles, snapshot } => {
                assert!(cycles >= 500);
                let snap = snapshot.expect("ooo core attaches a snapshot");
                assert_eq!(snap.cycle, cycles);
            }
            other => panic!("expected CycleLimit, got {other:?}"),
        }
    }

    #[test]
    fn smarts_interrupted_keeps_partial_windows() {
        // An infinite loop: the first warm phase blows its (tiny) budget.
        let mut asm = Asm::new();
        let top = asm.here_label();
        asm.jmp(top);
        let p = asm.assemble().unwrap();
        let params = SmartsParams {
            budget_per_phase: 300,
            ..SmartsParams::new(1_000, 1_000, 4)
        };
        let err = run_smarts_with(SimConfig::ooo(), &p, params).unwrap_err();
        assert!(err.completed_windows.is_empty());
        assert!(matches!(err.error, SimError::CycleLimit { .. }));
        assert!(err.to_string().contains("0 complete window(s)"));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!SimError::CycleLimit {
            cycles: 5,
            snapshot: None
        }
        .to_string()
        .is_empty());
        assert!(!SimError::PcOutOfRange { pc: 3 }.to_string().is_empty());
    }
}
