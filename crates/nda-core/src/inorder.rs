//! The blocking in-order baseline (gem5 `TimingSimpleCPU` analogue).
//!
//! One instruction at a time, no speculation of any kind: branches resolve
//! before the next fetch, memory accesses block for their full latency.
//! This is the paper's lower bound — the only pre-NDA execution model known
//! to defeat all 25 documented speculative-execution attacks — and the
//! other end of the performance gap NDA closes 68-96 % of.

use crate::config::SimConfig;
use crate::run::{RunResult, SimError};
use nda_isa::inst::{Src2, UopClass};
use nda_isa::{Fault, Inst, MsrFile, PrivilegeMap, Program, Reg, SparseMem};
use nda_mem::MemHier;
use nda_stats::{CpiClass, SimStats};

/// The in-order core. Construct with [`InOrderCore::new`], drive with
/// [`InOrderCore::run`].
#[derive(Debug, Clone)]
pub struct InOrderCore {
    cfg: SimConfig,
    program: Program,
    /// Architectural memory.
    pub mem: SparseMem,
    /// Model-specific registers.
    pub msrs: MsrFile,
    priv_map: PrivilegeMap,
    /// Cache/DRAM timing.
    pub hier: MemHier,
    regs: [u64; 32],
    pc: usize,
    cycle: u64,
    halted: bool,
    last_line: Option<u64>,
    /// Cycle the multiply unit last finished (FPU power model).
    fpu_busy_until: Option<u64>,
    /// Statistics for the run.
    pub stats: SimStats,
}

impl InOrderCore {
    /// Build a core with the program loaded.
    pub fn new(cfg: SimConfig, program: &Program) -> InOrderCore {
        let mut mem = SparseMem::new();
        for init in &program.data {
            mem.write_bytes(init.addr, &init.bytes);
        }
        InOrderCore {
            mem,
            msrs: MsrFile::from_program(program),
            priv_map: PrivilegeMap,
            hier: MemHier::new(cfg.mem),
            regs: [0; 32],
            pc: program.entry,
            cycle: 0,
            halted: false,
            last_line: None,
            fpu_busy_until: None,
            stats: SimStats::new(),
            program: program.clone(),
            cfg,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` once `Halt` executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Architectural register value.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// All architectural registers.
    pub fn regs(&self) -> [u64; 32] {
        self.regs
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn fault(&mut self, f: Fault) -> Result<(), SimError> {
        self.stats.faults += 1;
        match self.program.fault_handler {
            Some(h) => {
                self.pc = h;
                self.last_line = None;
                Ok(())
            }
            None => Err(SimError::UnhandledFault(f)),
        }
    }

    /// Data access that blocks for its full latency; the blocking core can
    /// never exhaust the MSHR file, so refusal retries immediately.
    fn blocking_access(&mut self, addr: u64) -> u64 {
        loop {
            if let Some(acc) = self.hier.access_data(addr, self.cycle) {
                let class = match acc.level {
                    nda_mem::Level::L1 => CpiClass::MemL1,
                    nda_mem::Level::L2 => CpiClass::MemL2,
                    nda_mem::Level::Mem => CpiClass::MemDram,
                };
                self.stats.add_cycles(class, acc.latency);
                return acc.latency;
            }
            self.cycle += 1;
        }
    }

    /// Execute one instruction, advancing the cycle counter by its full
    /// blocking cost.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        let inst = self
            .program
            .fetch(self.pc)
            .ok_or(SimError::PcOutOfRange { pc: self.pc })?;

        // I-fetch: charge the i-cache on line transitions.
        let iaddr = self.program.inst_addr(self.pc);
        let line = iaddr / 64;
        if self.last_line != Some(line) {
            let acc = self.hier.access_inst(iaddr);
            self.cycle += acc.latency;
            self.stats.add_cycles(CpiClass::FrontendFetch, acc.latency);
            self.last_line = Some(line);
        }

        let mut next = self.pc + 1;
        let mut exec_cycles = inst.exec_latency();
        match inst {
            Inst::Li { rd, imm } => self.set_reg(rd, imm),
            Inst::Alu { op, rd, rs1, src2 } => {
                let a = self.reg(rs1);
                let b = match src2 {
                    Src2::Reg(r) => self.reg(r),
                    Src2::Imm(i) => i,
                };
                exec_cycles = op.latency();
                if self.cfg.core.fpu_power_model
                    && matches!(
                        op,
                        nda_isa::AluOp::Mul | nda_isa::AluOp::Div | nda_isa::AluOp::Rem
                    )
                {
                    let awake = self
                        .fpu_busy_until
                        .map(|t| self.cycle.saturating_sub(t) <= self.cfg.core.fpu_power_down_after)
                        .unwrap_or(false);
                    if !awake {
                        exec_cycles += self.cfg.core.fpu_wake_penalty;
                    }
                    self.fpu_busy_until = Some(self.cycle + exec_cycles);
                }
                self.set_reg(rd, op.apply(a, b));
            }
            Inst::Load {
                rd,
                base,
                off,
                size,
            } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                if self.priv_map.is_privileged(addr) {
                    self.cycle += 1;
                    self.bump_issue(1);
                    return self.fault(Fault::PrivilegedAccess { addr });
                }
                let v = self.mem.read(addr, size.bytes());
                exec_cycles += self.blocking_access(addr);
                self.set_reg(rd, v);
            }
            Inst::Store {
                src,
                base,
                off,
                size,
            } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                if self.priv_map.is_privileged(addr) {
                    self.cycle += 1;
                    self.bump_issue(1);
                    return self.fault(Fault::PrivilegedAccess { addr });
                }
                let v = self.reg(src);
                self.mem.write(addr, v, size.bytes());
                exec_cycles += self.blocking_access(addr);
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    next = target;
                }
            }
            Inst::Jmp { target } => next = target,
            Inst::JmpInd { base } => next = self.reg(base) as usize,
            Inst::Call { target } => {
                self.set_reg(nda_isa::reg::RA, (self.pc + 1) as u64);
                next = target;
            }
            Inst::CallInd { base } => {
                let t = self.reg(base) as usize;
                self.set_reg(nda_isa::reg::RA, (self.pc + 1) as u64);
                next = t;
            }
            Inst::Ret => next = self.reg(nda_isa::reg::RA) as usize,
            Inst::RdCycle { rd } => {
                let now = self.cycle;
                self.set_reg(rd, now);
            }
            Inst::RdMsr { rd, idx } => {
                if !self.msrs.user_may_read(idx) {
                    self.cycle += 1;
                    self.bump_issue(1);
                    return self.fault(Fault::PrivilegedMsr { idx });
                }
                let v = self.msrs.read(idx);
                self.set_reg(rd, v);
            }
            Inst::ClFlush { base, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                self.hier.flush_line(addr);
            }
            Inst::Fence | Inst::SpecOff | Inst::SpecOn | Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
            }
        }
        self.cycle += exec_cycles;
        self.bump_issue(exec_cycles);
        self.stats.committed_insts += 1;
        self.stats.add_cycles(CpiClass::Commit, 1);
        match inst.class() {
            UopClass::Load | UopClass::LoadLike => self.stats.committed_loads += 1,
            UopClass::Store => self.stats.committed_stores += 1,
            UopClass::Branch => self.stats.committed_branches += 1,
            _ => {}
        }
        if !self.halted {
            self.pc = next;
        }
        Ok(())
    }

    /// Record one issued instruction spanning `cycles` of execution (keeps
    /// the ILP metric <= 1.0 by construction).
    fn bump_issue(&mut self, _cycles: u64) {
        self.stats.issued_insts += 1;
        self.stats.issue_active_cycles += 1;
    }

    /// Run until `Halt` or the cycle budget is exhausted.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit {
                    cycles: self.cycle,
                    snapshot: None,
                });
            }
            self.step()?;
        }
        self.stats.cycles = self.cycle;
        // The in-order machine issues exactly one instruction per "active"
        // window; classify every remaining cycle (non-unit execution
        // latencies) as backend execution so the stack partitions exactly.
        // The blocking model never delays a broadcast: nda-delay stays 0.
        let rem = self.cycle.saturating_sub(self.stats.cpi_stack.total());
        self.stats.add_cycles(CpiClass::BackendExec, rem);
        Ok(self.result())
    }

    /// Snapshot the run result.
    pub fn result(&self) -> RunResult {
        RunResult {
            stats: self.stats,
            mem_stats: self.hier.stats(),
            regs: self.regs,
            halted: self.halted,
            host_ns: 0,
            sampled: None,
        }
    }

    /// Load architectural state and a warmed cache hierarchy from a
    /// sampled-simulation checkpoint (see [`crate::sampled`]). The blocking
    /// core has no predictors, so the checkpoint's predictor state does not
    /// apply.
    ///
    /// # Panics
    ///
    /// Panics unless the core is freshly constructed (cycle 0).
    pub fn restore_checkpoint(&mut self, interp: &nda_isa::Interp, hier: &MemHier) {
        assert!(
            self.cycle == 0 && self.stats.committed_insts == 0,
            "checkpoint restore requires a freshly constructed core"
        );
        self.regs = *interp.regs();
        self.pc = interp.pc();
        self.mem = interp.mem.clone();
        self.msrs = interp.msrs.clone();
        self.hier = hier.clone();
        self.halted = interp.halted();
        self.last_line = None;
    }

    /// Record a cycle-class (used by the shared reporting path; the
    /// in-order model accounts stalls inline instead).
    pub fn record_cycle(&mut self, class: CpiClass) {
        self.stats.record_cycle(class);
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use nda_isa::Asm;

    fn run(asm: &Asm) -> InOrderCore {
        let p = asm.assemble().unwrap();
        let mut c = InOrderCore::new(SimConfig::for_variant(crate::Variant::InOrder), &p);
        c.run(10_000_000).unwrap();
        c
    }

    #[test]
    fn arithmetic() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 40).addi(Reg::X3, Reg::X2, 2).halt();
        let c = run(&asm);
        assert_eq!(c.reg(Reg::X3), 42);
    }

    #[test]
    fn memory_blocks_for_latency() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 0x5_0000);
        asm.ld8(Reg::X3, Reg::X2, 0); // cold miss: 144 cycles
        asm.halt();
        let c = run(&asm);
        assert!(
            c.cycle() > 144,
            "blocking load must pay the full miss ({})",
            c.cycle()
        );
    }

    #[test]
    fn ilp_cannot_exceed_one() {
        let mut asm = Asm::new();
        for i in 0..50 {
            asm.li(Reg::X2, i);
        }
        asm.halt();
        let c = run(&asm);
        assert!(c.stats.ilp() <= 1.0);
    }

    #[test]
    fn branches_have_no_misprediction() {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 50);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        let c = run(&asm);
        assert_eq!(c.stats.branch_mispredicts, 0);
        assert_eq!(c.reg(Reg::X2), 0);
    }

    #[test]
    fn fault_with_handler() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.li(Reg::X2, nda_isa::KERNEL_BASE);
        asm.ld8(Reg::X3, Reg::X2, 0);
        asm.halt();
        asm.bind(h);
        asm.li(Reg::X4, 5);
        asm.halt();
        let c = run(&asm);
        assert_eq!(c.reg(Reg::X4), 5);
        assert_eq!(c.reg(Reg::X3), 0);
        assert_eq!(c.stats.faults, 1);
    }

    #[test]
    fn rdcycle_monotonic() {
        let mut asm = Asm::new();
        asm.rdcycle(Reg::X2);
        asm.rdcycle(Reg::X3);
        asm.halt();
        let c = run(&asm);
        assert!(c.reg(Reg::X3) > c.reg(Reg::X2));
    }
}
