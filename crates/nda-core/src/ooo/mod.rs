//! The out-of-order core.
//!
//! Module layout mirrors the pipeline:
//!
//! * [`rename`] — physical register file, free list, map table.
//! * [`rob`] — reorder buffer entries and the NDA safety bits.
//! * [`frontend`] — fetch, predict, and the fetch→dispatch pipe.
//! * [`core`] — the cycle loop: commit, writeback, safety update,
//!   broadcast, issue, dispatch, fetch.
//! * [`invariants`] — end-of-cycle conservation-law checker.
//! * [`inject`] — fault-injection hooks for the differential harness.

pub mod core;
pub mod frontend;
pub mod inject;
pub mod invariants;
pub mod rename;
pub mod rob;
