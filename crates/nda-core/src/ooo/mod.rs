//! The out-of-order core.
//!
//! Module layout mirrors the pipeline:
//!
//! * [`rename`] — physical register file, free list, map table.
//! * [`rob`] — reorder buffer entries and the NDA safety bits.
//! * [`frontend`] — fetch, predict, and the fetch→dispatch pipe.
//! * [`core`] — the cycle loop: commit, writeback, safety update,
//!   broadcast, issue, dispatch, fetch.

pub mod core;
pub mod frontend;
pub mod rename;
pub mod rob;
