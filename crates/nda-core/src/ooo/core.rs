//! The out-of-order core's cycle loop.
//!
//! Stage order within a cycle (reverse pipeline order, so state written by
//! a younger stage is seen by older stages only next cycle):
//!
//! 1. **commit** — retire completed head entries; deliver faults; apply
//!    stores to architectural memory; train predictors.
//! 2. **writeback** — finish executions due this cycle; resolve branches
//!    (squash + redirect on mispredict); resolve store addresses (replay
//!    squash on memory-order violation); update the BTB speculatively.
//! 3. **safety walk** — recompute every entry's NDA `safe` bit (§5).
//! 4. **broadcast** — port-limited tag broadcast; completing instructions
//!    have priority, newly-safe deferred broadcasts take leftover ports.
//! 5. **issue** — wake-up/select: only *visible* operands can be read.
//! 6. **dispatch/rename** — consume the fetch queue into the ROB.
//! 7. **fetch** — predict and follow (possibly wrong) paths.

use super::frontend::{FrontEnd, FrontEndConfig};
use super::invariants::{InvariantKind, InvariantViolation};
use super::rename::{FreeList, PReg, PhysRegFile, RenameTable};
use super::rob::{Rob, RobEntry};
use crate::config::SimConfig;
use crate::policy::{IsVariant, Propagation, TaintThreat, UntaintTiming};
use crate::run::{RunResult, SimError};
use crate::snapshot::{HeadInfo, HeadWait, PipelineSnapshot};
use nda_isa::inst::{Src2, UopClass};
use nda_isa::{Fault, Inst, Interp, MsrFile, PrivilegeMap, Program, SparseMem};
use nda_mem::MemHier;
use nda_predict::{Btb, DirPredictor};
use nda_stats::{CpiClass, SimStats};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The out-of-order core. Construct with [`OooCore::new`], drive with
/// [`OooCore::run`] (or [`OooCore::step_cycle`] for tracing).
#[derive(Debug, Clone)]
pub struct OooCore {
    pub(crate) cfg: SimConfig,
    pub(crate) program: Program,

    /// Architectural memory (committed state + data the wrong path may
    /// read).
    pub mem: SparseMem,
    /// Model-specific registers.
    pub msrs: MsrFile,
    priv_map: PrivilegeMap,
    /// The cache/DRAM timing model.
    pub hier: MemHier,

    pub(crate) prf: PhysRegFile,
    pub(crate) free: FreeList,
    pub(crate) rename: RenameTable,
    pub(crate) rob: Rob,
    /// Dispatched-but-unissued sequence numbers, ascending.
    pub(crate) iq: Vec<u64>,
    /// In-flight load sequence numbers, ascending.
    pub(crate) lq: Vec<u64>,
    /// In-flight store sequence numbers, ascending.
    pub(crate) sq: Vec<u64>,
    pub(crate) fe: FrontEnd,

    cycle: u64,
    next_seq: u64,
    halted: bool,
    pending_error: Option<SimError>,
    /// Cycle of the most recent successful commit (forward-progress
    /// watchdog).
    last_commit_cycle: u64,
    /// Shadow reference interpreter, stepped in lockstep with retirement
    /// when `check_invariants` is on: any wrong-path instruction reaching
    /// commit, or a committed result diverging from architecture, is caught
    /// at the exact retiring instruction.
    oracle: Option<Box<Interp>>,
    /// Completion event queue: `(done_cycle, seq)` min-heap. Writeback pops
    /// due events instead of scanning the whole ROB every cycle. Events are
    /// never cancelled on squash; staleness (a squashed entry, or a re-used
    /// sequence number) is filtered at pop time by re-checking the entry's
    /// own `done_cycle` against the event.
    events: BinaryHeap<Reverse<(u64, u64)>>,
    /// Pending `Fence` sequence numbers, ascending; the front is the fence
    /// border (younger micro-ops may not issue past it). Fences issue only
    /// from the ROB head, so they complete strictly in queue order.
    pending_fences: VecDeque<u64>,
    /// Policy pre-computation: every micro-op is safe at dispatch (baseline
    /// OoO / InvisiSpec / delay-on-miss), so the per-cycle safety walk is
    /// skipped entirely.
    policy_all_safe: bool,
    /// Policy pre-computation: a [`crate::policy::TaintPolicy`] is active —
    /// run the per-cycle taint walk and the transmit-side issue gate.
    /// Orthogonal to `policy_all_safe` (taint variants keep every wakeup
    /// unrestricted; only *transmitting* issues are withheld).
    taint_on: bool,
    /// `Propagated`-untaint scratch (empty otherwise): last cycle's PRF
    /// taint image. Taint *set* is immediate, but an untaint ripples one
    /// dependency level per cycle by OR-ing this image into each
    /// consumer's recomputed bit (STT reuses wakeup bandwidth to untaint).
    taint_prev: Vec<bool>,
    /// Entries that are completed, have a destination, and have not yet
    /// broadcast — the two broadcast passes walk the ROB only when this is
    /// non-zero.
    pending_bcast: usize,
    /// Inside a Listing-4 no-speculation window (`SpecOff` committed, no
    /// `SpecOn` yet): dispatch admits one instruction at a time.
    spec_window: bool,
    /// `SpecOff` micro-ops in flight: like an x86 serialising instruction,
    /// dispatch stalls behind one until it commits (or squashes) — the
    /// window must engage before anything younger enters the back end.
    specoff_pending: u32,
    /// Cycle the multiply/divide unit last finished work (`None` = powered
    /// down). Only consulted when the FPU power model is on.
    fpu_busy_until: Option<u64>,
    /// The (non-pipelined) divider is occupied until this cycle — the
    /// port-contention covert channel of SMoTherSpectre.
    div_busy_until: u64,
    /// Pipeline event log (None unless tracing is enabled).
    tracer: Option<Vec<crate::trace::TraceEvent>>,
    /// Cycle of the most recent front-end redirect (mispredict, replay or
    /// fault): an empty ROB within `fetch_to_dispatch + 1` cycles of it is
    /// squash refill, not an i-cache miss (CPI-stack attribution).
    last_redirect_cycle: Option<u64>,
    /// Why dispatch stopped this cycle, if a back-end structure was full.
    dispatch_block: Option<DispatchBlock>,
    /// Scratch buffers reused across cycles so the hot loop performs no
    /// heap allocation in steady state.
    scratch_due: Vec<(u64, u64)>,
    scratch_seqs: Vec<u64>,
    scratch_traced: Vec<(u64, usize, Inst)>,
    scratch_issued_idx: Vec<usize>,
    /// Cycle at the last `reset_stats` (stats.cycles is relative to it).
    stats_base_cycle: u64,
    /// Statistics for the run.
    pub stats: SimStats,
}

impl OooCore {
    /// Build a core with the program's data segment and MSR file loaded.
    pub fn new(cfg: SimConfig, program: &Program) -> OooCore {
        let mut mem = SparseMem::new();
        for init in &program.data {
            mem.write_bytes(init.addr, &init.bytes);
        }
        let fe_cfg = FrontEndConfig {
            fetch_width: cfg.core.fetch_width,
            fetch_to_dispatch: cfg.core.fetch_to_dispatch,
            fetch_buffer: cfg.core.fetch_buffer,
        };
        OooCore {
            mem,
            msrs: MsrFile::from_program(program),
            priv_map: PrivilegeMap,
            hier: MemHier::new(cfg.mem),
            prf: PhysRegFile::new(cfg.core.num_pregs),
            free: FreeList::new(cfg.core.num_pregs),
            rename: RenameTable::new(),
            rob: Rob::new(cfg.core.rob_entries),
            iq: Vec::new(),
            lq: Vec::new(),
            sq: Vec::new(),
            fe: FrontEnd::new(
                fe_cfg,
                DirPredictor::new(cfg.core.predictor_kind, cfg.core.gshare),
                Btb::new(cfg.core.btb),
                program.entry,
            ),
            cycle: 0,
            next_seq: 0,
            halted: false,
            pending_error: None,
            last_commit_cycle: 0,
            oracle: cfg.check_invariants.then(|| Box::new(Interp::new(program))),
            events: BinaryHeap::new(),
            pending_fences: VecDeque::new(),
            policy_all_safe: cfg.policy.propagation == Propagation::Off
                && !cfg.policy.bypass_restriction
                && !cfg.policy.load_restriction,
            taint_on: cfg.taint.is_some(),
            taint_prev: if cfg.taint.map(|t| t.untaint) == Some(UntaintTiming::Propagated) {
                vec![false; cfg.core.num_pregs]
            } else {
                Vec::new()
            },
            pending_bcast: 0,
            spec_window: false,
            specoff_pending: 0,
            fpu_busy_until: None,
            div_busy_until: 0,
            tracer: None,
            last_redirect_cycle: None,
            dispatch_block: None,
            scratch_due: Vec::new(),
            scratch_seqs: Vec::new(),
            scratch_traced: Vec::new(),
            scratch_issued_idx: Vec::new(),
            stats_base_cycle: 0,
            stats: SimStats::new(),
            program: program.clone(),
            cfg,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` once `Halt` has committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Free physical registers (for the conservation invariants in tests:
    /// with an empty ROB every non-architectural register must be free).
    pub fn free_pregs(&self) -> usize {
        self.free.available()
    }

    /// In-flight ROB entries.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// `true` if any physical register currently carries an STT taint bit
    /// (for the untaint-drain property: an empty ROB implies no taint).
    pub fn any_preg_tainted(&self) -> bool {
        self.prf.any_tainted()
    }

    /// Reset the statistics counters mid-run (SMARTS-style sampling:
    /// warm up, reset, measure). Architectural and micro-architectural
    /// state (caches, predictors, ROB) is untouched.
    ///
    /// Note: `stats.cycles` restarts from zero while [`OooCore::cycle`]
    /// keeps counting, so CPI over the measurement window is
    /// `stats.cycles / stats.committed_insts` as usual.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new();
        self.stats_base_cycle = self.cycle;
    }

    /// Start logging pipeline events (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.tracer = Some(Vec::new());
    }

    /// The logged pipeline events (empty unless tracing is enabled).
    pub fn trace_events(&self) -> &[crate::trace::TraceEvent] {
        self.tracer.as_deref().unwrap_or(&[])
    }

    /// Drain the logged pipeline events, leaving the buffer empty but
    /// tracing enabled. Lets long-running consumers (e.g. `nda-verify`'s
    /// transient-taint tracker) process events incrementally with bounded
    /// memory instead of accumulating a whole run's trace.
    pub fn take_trace_events(&mut self) -> Vec<crate::trace::TraceEvent> {
        match &mut self.tracer {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    #[inline]
    fn trace_event(&mut self, seq: u64, pc: usize, inst: Inst, stage: crate::trace::TraceStage) {
        self.trace_event_mem(seq, pc, inst, stage, None);
    }

    #[inline]
    fn trace_event_mem(
        &mut self,
        seq: u64,
        pc: usize,
        inst: Inst,
        stage: crate::trace::TraceStage,
        mem: Option<(u64, u64)>,
    ) {
        if let Some(t) = &mut self.tracer {
            t.push(crate::trace::TraceEvent {
                cycle: self.cycle,
                seq,
                pc,
                disasm: inst.to_string(),
                stage,
                mem,
            });
        }
    }

    /// Committed architectural value of register `r`.
    pub fn reg(&self, r: nda_isa::Reg) -> u64 {
        self.prf.value(self.committed_preg(r))
    }

    /// All 32 committed architectural register values.
    pub fn regs(&self) -> [u64; 32] {
        let mut out = [0u64; 32];
        for r in nda_isa::Reg::all() {
            out[r.index()] = self.reg(r);
        }
        out
    }

    /// The physical register holding the *committed* value of `r`: walk the
    /// ROB youngest-first to skip in-flight renames.
    pub(crate) fn committed_preg(&self, r: nda_isa::Reg) -> PReg {
        // The speculative map minus every in-flight rename of r: the oldest
        // in-flight entry renaming r stores the committed mapping.
        let mut committed = self.rename.lookup(r);
        for e in self.rob.iter() {
            if e.arch_rd == Some(r) {
                committed = e.old_prd.expect("renamed entry has old mapping");
                break;
            }
        }
        committed
    }

    /// Run until `Halt` commits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the budget is exhausted,
    /// [`SimError::UnhandledFault`] if a fault commits with no handler,
    /// [`SimError::Stalled`] if the forward-progress watchdog fires,
    /// [`SimError::InvariantViolation`] if the invariant checker is enabled
    /// and a conservation law breaks.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        self.run_hooked(max_cycles, |_| {})
    }

    /// [`OooCore::run`] with a hook called before every cycle — the
    /// fault-injection point of the differential harness (`nda-verify`):
    /// the hook may squash, corrupt predictors or perturb memory latency,
    /// and the run must still retire the architecturally correct stream.
    ///
    /// # Errors
    ///
    /// See [`OooCore::run`].
    pub fn run_hooked(
        &mut self,
        max_cycles: u64,
        mut hook: impl FnMut(&mut OooCore),
    ) -> Result<RunResult, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(self.cycle_limit_error());
            }
            hook(self);
            self.step_cycle();
            if let Some(err) = self.pending_error.take() {
                return Err(err);
            }
            if self.cfg.check_invariants {
                if let Err(v) = super::invariants::check(self) {
                    return Err(SimError::InvariantViolation(v));
                }
            }
            if let Some(err) = self.watchdog_error() {
                return Err(err);
            }
        }
        Ok(self.result())
    }

    /// [`OooCore::run`] while streaming pipeline events into `sink`
    /// (enabling tracing if it is off). The sink is a pure observer: the
    /// committed state and cycle counts are identical with or without it
    /// (pinned by the `cycle_exact` and exporter golden tests).
    ///
    /// # Errors
    ///
    /// See [`OooCore::run`]. Events already emitted (including those of the
    /// failing cycle) are flushed to the sink before the error returns.
    pub fn run_with_sink(
        &mut self,
        max_cycles: u64,
        sink: &mut dyn crate::trace::EventSink,
    ) -> Result<RunResult, SimError> {
        if self.tracer.is_none() {
            self.enable_trace();
        }
        let result = self.run_hooked(max_cycles, |core| {
            for ev in core.take_trace_events() {
                sink.event(&ev);
            }
        });
        for ev in self.take_trace_events() {
            sink.event(&ev);
        }
        sink.finish();
        result
    }

    /// A [`SimError::CycleLimit`] carrying the current pipeline snapshot.
    pub(crate) fn cycle_limit_error(&mut self) -> SimError {
        SimError::CycleLimit {
            cycles: self.cycle,
            snapshot: Some(Box::new(self.snapshot())),
        }
    }

    /// The forward-progress watchdog check: `Some(SimError::Stalled)` when
    /// a watchdog window is configured and no instruction has committed
    /// for a whole window. Every detailed-execution loop — whole-run
    /// ([`OooCore::run_hooked`]) and sampled windows
    /// (`sampled::run_window`) — must consult this each cycle, so a
    /// wedged pipeline is reported identically everywhere.
    pub(crate) fn watchdog_error(&mut self) -> Option<SimError> {
        let window = self.cfg.watchdog_window?;
        if !self.halted && self.cycle.saturating_sub(self.last_commit_cycle) >= window {
            return Some(SimError::Stalled {
                cycles: self.cycle,
                window,
                snapshot: Box::new(self.snapshot()),
            });
        }
        None
    }

    /// Capture the diagnostic pipeline state (attached to watchdog, cycle
    /// limit and invariant errors). Needs `&mut self` only to drain retired
    /// MSHR entries before counting the outstanding ones.
    pub fn snapshot(&mut self) -> PipelineSnapshot {
        let now = self.cycle;
        let head = self.rob.head().map(|e| {
            let wait = if !e.completed {
                if e.issued {
                    HeadWait::Executing
                } else {
                    HeadWait::WaitingToIssue
                }
            } else if e.fault.is_some() {
                HeadWait::FaultPending
            } else if e.is_probe && e.exposure_done.map(|d| d <= now) != Some(true) {
                HeadWait::AwaitingExposure
            } else if e.inst.is_store() {
                HeadWait::AwaitingStoreCommit
            } else {
                HeadWait::ReadyToRetire
            };
            HeadInfo {
                seq: e.seq,
                pc: e.pc,
                disasm: e.inst.to_string(),
                wait,
            }
        });
        let iq_ready = self
            .iq
            .iter()
            .filter(|&&s| self.rob.get(s).map(|e| self.srcs_visible(e)) == Some(true))
            .count();
        PipelineSnapshot {
            cycle: now,
            last_commit_cycle: self.last_commit_cycle,
            rob_occupancy: self.rob.len(),
            rob_capacity: self.cfg.core.rob_entries,
            head,
            iq_ready,
            iq_waiting: self.iq.len() - iq_ready,
            lq_occupancy: self.lq.len(),
            sq_occupancy: self.sq.len(),
            free_pregs: self.free.available(),
            fetch_queued: self.fe.queued(),
            mshrs_outstanding: self.hier.mshr_outstanding(now),
            stats: self.stats,
        }
    }

    /// Test-only sabotage hook: silently steal one physical register from
    /// the free list, as a buggy commit path that forgot to release
    /// `old_prd` would. The invariant checker must flag the broken
    /// conservation law on the very next cycle; without it the symptom is a
    /// slow free-list drain and an eventual dispatch wedge.
    pub fn debug_inject_free_list_leak(&mut self) -> Option<PReg> {
        self.free.alloc()
    }

    /// Record an invariant failure discovered outside the end-of-cycle walk
    /// (the commit-time oracle); the run loop surfaces it after this cycle.
    fn fail_invariant(&mut self, kind: InvariantKind, detail: String) {
        if self.pending_error.is_none() {
            let v = InvariantViolation {
                cycle: self.cycle,
                kind,
                detail,
                snapshot: self.snapshot(),
            };
            self.pending_error = Some(SimError::InvariantViolation(Box::new(v)));
        }
    }

    /// Snapshot the current run result.
    pub fn result(&self) -> RunResult {
        RunResult {
            stats: self.stats,
            mem_stats: self.hier.stats(),
            regs: self.regs(),
            halted: self.halted,
            host_ns: 0,
            sampled: None,
        }
    }

    /// Load architectural and warmed micro-architectural state from a
    /// sampled-simulation checkpoint (see [`crate::sampled`]).
    ///
    /// The architectural registers are written through the identity rename
    /// map, memory/MSRs are cloned from the interpreter, and the warmed
    /// cache hierarchy, direction predictor, BTB and RAS replace the cold
    /// ones. When the invariant checker is on, the commit-time oracle is
    /// re-seeded from the same interpreter so lockstep checking continues
    /// to work mid-program.
    ///
    /// # Panics
    ///
    /// Panics unless the core is freshly constructed (cycle 0, empty
    /// pipeline): restoring into a live pipeline would corrupt renaming.
    pub fn restore_checkpoint(
        &mut self,
        interp: &Interp,
        hier: &MemHier,
        dir: &DirPredictor,
        btb: &nda_predict::Btb,
        ras: &nda_predict::Ras,
    ) {
        assert!(
            self.cycle == 0 && self.rob.is_empty() && self.next_seq == 0,
            "checkpoint restore requires a freshly constructed core"
        );
        // Fresh core ⇒ identity rename map and p0..p31 ready+visible, so
        // writing through the map sets the committed architectural values.
        for r in nda_isa::Reg::all() {
            self.prf.write(self.rename.lookup(r), interp.reg(r));
        }
        self.mem = interp.mem.clone();
        self.msrs = interp.msrs.clone();
        self.hier = hier.clone();
        self.fe.fetch_pc = interp.pc();
        self.fe.dir = dir.clone();
        self.fe.btb = btb.clone();
        self.fe.ras = ras.clone();
        self.halted = interp.halted();
        if self.oracle.is_some() {
            self.oracle = Some(Box::new(interp.clone()));
        }
    }

    /// Advance one cycle.
    pub fn step_cycle(&mut self) {
        self.dispatch_block = None;
        let committed = self.commit();
        if self.halted || self.pending_error.is_some() {
            self.classify_cycle(committed);
            self.cycle += 1;
            self.stats.cycles = self.cycle - self.stats_base_cycle;
            return;
        }
        self.writeback();
        self.update_safety();
        self.update_taint();
        self.broadcast();
        self.expose_invisispec();
        self.issue();
        self.dispatch();
        self.fe
            .fetch_cycle(self.cycle, &self.program, &mut self.hier);
        self.classify_cycle(committed);
        self.cycle += 1;
        self.stats.cycles = self.cycle - self.stats_base_cycle;
    }

    // ------------------------------------------------------------------
    // Stage 1: commit
    // ------------------------------------------------------------------

    fn commit(&mut self) -> u64 {
        let mut committed = 0;
        while committed < self.cfg.core.commit_width as u64 {
            let Some(head) = self.rob.head() else { break };
            if !head.completed {
                break;
            }
            // InvisiSpec: a speculative load may not retire before its
            // exposure/validation finishes.
            if head.is_probe {
                match head.exposure_done {
                    Some(d) if d <= self.cycle => {}
                    _ => break,
                }
            }
            if let Some(fault) = head.fault {
                let head_pc = head.pc;
                self.oracle_fault(head_pc);
                self.deliver_fault(fault);
                break;
            }
            // Stores perform their architectural write and cache fill at
            // commit; an exhausted MSHR file stalls retirement.
            if head.inst.is_store() {
                let addr = head.mem_addr.expect("completed store has address");
                if self.hier.access_data(addr, self.cycle).is_none() {
                    break;
                }
                let data = head.store_data.expect("completed store has data");
                self.mem.write(addr, data, head.mem_size);
            }
            let e = self.rob.pop_head().expect("head exists");
            self.oracle_retire(&e);
            // A committed value is architectural, hence untainted by
            // definition — this is the only untaint path for a register
            // that retires tainted in the same cycle its guard resolves.
            if self.taint_on {
                if let Some(prd) = e.prd {
                    self.prf.set_taint(prd, false);
                }
            }
            // Tag broadcast at retirement is always permitted: the head of
            // the ROB is non-speculative by definition (paper §4.3).
            if let Some(prd) = e.prd {
                if !e.broadcasted {
                    self.prf.broadcast(prd);
                    self.pending_bcast -= 1;
                    self.stats.broadcasts += 1;
                    if e.complete_cycle < self.cycle {
                        self.stats.deferred_broadcasts += 1;
                        self.stats.defer_hist.observe(self.cycle - e.complete_cycle);
                    }
                    self.trace_event(e.seq, e.pc, e.inst, crate::trace::TraceStage::Broadcast);
                }
            }
            self.trace_event(e.seq, e.pc, e.inst, crate::trace::TraceStage::Commit);
            if let Some(old) = e.old_prd {
                self.free.release(old);
            }
            match e.inst.class() {
                UopClass::Load | UopClass::LoadLike => {
                    self.stats.committed_loads += 1;
                    debug_assert_eq!(self.lq.first(), Some(&e.seq));
                    self.lq.remove(0);
                }
                UopClass::Store => {
                    self.stats.committed_stores += 1;
                    debug_assert_eq!(self.sq.first(), Some(&e.seq));
                    self.sq.remove(0);
                }
                UopClass::Branch => {
                    self.stats.committed_branches += 1;
                    self.train_predictors(&e);
                }
                _ => {}
            }
            self.stats.committed_insts += 1;
            committed += 1;
            match e.inst {
                Inst::SpecOff => {
                    self.spec_window = true;
                    self.specoff_pending -= 1;
                }
                Inst::SpecOn => self.spec_window = false,
                Inst::Halt => {
                    self.halted = true;
                }
                _ => {}
            }
            if self.halted {
                break;
            }
        }
        if committed > 0 {
            self.last_commit_cycle = self.cycle;
        }
        committed
    }

    /// Step the shadow interpreter alongside a retiring instruction and
    /// compare program counter and destination value. `RdCycle` results are
    /// timing-dependent by design and are not compared (nor are any values
    /// derived from them — enable the checker only on RdCycle-free
    /// programs, which is what `genprog` emits).
    fn oracle_retire(&mut self, e: &RobEntry) {
        let Some(oracle) = self.oracle.as_mut() else {
            return;
        };
        let want_pc = oracle.pc();
        if want_pc != e.pc {
            self.fail_invariant(
                InvariantKind::CommitDivergence,
                format!(
                    "retiring seq {} pc {} `{}` but the reference pc is {want_pc} \
                     (wrong-path instruction reached commit)",
                    e.seq, e.pc, e.inst
                ),
            );
            return;
        }
        let _ = oracle.step();
        if matches!(e.inst, Inst::RdCycle { .. }) {
            return;
        }
        if let Some(rd) = e.arch_rd {
            if !rd.is_zero() {
                let want = self.oracle.as_ref().expect("oracle present").reg(rd);
                if want != e.result {
                    self.fail_invariant(
                        InvariantKind::CommitDivergence,
                        format!(
                            "seq {} pc {} `{}` committed {:#x} into {rd:?} but the \
                             reference value is {want:#x}",
                            e.seq, e.pc, e.inst, e.result
                        ),
                    );
                }
            }
        }
    }

    /// Mirror a fault delivery in the shadow interpreter: the faulting
    /// instruction does not retire; the interpreter transfers to the
    /// handler internally (or errors, when there is none — the core ends
    /// the run with `UnhandledFault` either way).
    fn oracle_fault(&mut self, head_pc: usize) {
        let Some(oracle) = self.oracle.as_mut() else {
            return;
        };
        let want_pc = oracle.pc();
        if want_pc != head_pc {
            self.fail_invariant(
                InvariantKind::CommitDivergence,
                format!("delivering a fault at pc {head_pc} but the reference pc is {want_pc}"),
            );
            return;
        }
        let _ = oracle.step();
    }

    fn train_predictors(&mut self, e: &RobEntry) {
        let addr = self.program.inst_addr(e.pc);
        match e.inst {
            Inst::Branch { .. } => {
                self.fe
                    .dir
                    .train(addr, e.ghr_before, e.actual_taken, e.pred_taken);
            }
            Inst::JmpInd { .. } | Inst::CallInd { .. } if !self.cfg.core.btb.speculative_update => {
                self.fe.btb.update(addr, e.actual_next);
            }
            _ => {}
        }
    }

    fn deliver_fault(&mut self, fault: Fault) {
        self.stats.faults += 1;
        self.squash_from(0);
        self.last_redirect_cycle = Some(self.cycle);
        match self.program.fault_handler {
            Some(h) => self.fe.redirect(self.cycle, h),
            None => {
                if self.pending_error.is_none() {
                    self.pending_error = Some(SimError::UnhandledFault(fault));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: writeback / resolution
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        let now = self.cycle;
        // Pop due completion events. The heap orders by (cycle, seq), and
        // every live event fires exactly at its cycle (writeback runs each
        // cycle), so the processing order equals the old full-ROB scan's
        // age order. Collected first to avoid borrowing fights; each entry
        // completes exactly once.
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        while let Some(&Reverse((d, _))) = self.events.peek() {
            if d > now {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            due.push(ev);
        }
        for (d, seq) in due.drain(..) {
            // A squash (younger entry removed mid-loop, or an injected one
            // in an earlier cycle) may have invalidated the event; a re-used
            // sequence number may even name a different instruction. The
            // entry's own `done_cycle` is the ground truth: only complete an
            // unfinished entry whose completion is due at this event.
            let Some(e) = self.rob.get_mut(seq) else {
                continue;
            };
            if e.completed || e.done_cycle != Some(d) {
                continue;
            }
            e.completed = true;
            e.complete_cycle = now;
            let (tpc, tinst) = (e.pc, e.inst);
            self.trace_event(seq, tpc, tinst, crate::trace::TraceStage::Complete);
            let Some(e) = self.rob.get_mut(seq) else {
                continue;
            };
            if let Some(prd) = e.prd {
                let v = e.result;
                self.prf.write(prd, v);
                self.pending_bcast += 1;
            } else {
                // Nothing to broadcast: the bcast bit is trivially done.
                e.broadcasted = true;
            }
            let inst = e.inst;
            if inst.is_branch() {
                e.branch_resolved = true;
                let mispredicted = e.actual_next != e.pred_next;
                e.mispredicted = mispredicted;
                let (ghr_before, actual_taken, actual_next, ras_after) =
                    (e.ghr_before, e.actual_taken, e.actual_next, e.ras_after);
                // Speculative BTB update: happens at execution, wrong-path
                // included, and is not reverted on squash — the covert
                // channel of paper §3.
                if matches!(inst, Inst::JmpInd { .. } | Inst::CallInd { .. })
                    && self.cfg.core.btb.speculative_update
                {
                    let addr = self.program.inst_addr(self.rob.get(seq).expect("entry").pc);
                    self.fe.btb.update(addr, actual_next);
                }
                if mispredicted {
                    self.stats.branch_mispredicts += 1;
                    self.trace_event(seq, tpc, tinst, crate::trace::TraceStage::Mispredict);
                    if matches!(inst, Inst::Branch { .. }) {
                        self.fe.dir.recover(ghr_before, actual_taken);
                    }
                    if let Some(snap) = ras_after {
                        self.fe.ras.restore(snap);
                    }
                    self.squash_from(seq + 1);
                    self.last_redirect_cycle = Some(now);
                    self.fe.redirect(now, actual_next);
                }
            } else if inst.is_store() {
                // Address now resolved: check younger executed loads for
                // memory-order violations (speculative store bypass gone
                // wrong -> replay).
                self.check_order_violation(seq);
            } else if matches!(inst, Inst::Fence) {
                // Fences issue only from the ROB head, so the completing
                // fence is always the oldest pending one.
                let popped = self.pending_fences.pop_front();
                debug_assert_eq!(popped, Some(seq));
            }
        }
        self.scratch_due = due;
    }

    /// The oldest pending `Fence` (younger micro-ops may not issue past
    /// it). Maintained incrementally: pushed at dispatch, popped when the
    /// fence completes, trimmed on squash.
    #[inline]
    fn fence_border(&self) -> Option<u64> {
        self.pending_fences.front().copied()
    }

    /// On store resolution: any younger load that already executed with an
    /// overlapping address, and whose data did not come from this store or
    /// a younger one, read stale data and must replay.
    fn check_order_violation(&mut self, store_seq: u64) {
        let (st_addr, st_size) = {
            let st = self.rob.get(store_seq).expect("store exists");
            (st.mem_addr.expect("resolved"), st.mem_size)
        };
        let mut victim: Option<(u64, usize)> = None;
        for &lseq in &self.lq {
            if lseq <= store_seq {
                continue;
            }
            let Some(l) = self.rob.get(lseq) else {
                continue;
            };
            let Some(l_addr) = l.mem_addr else { continue };
            if !overlaps(st_addr, st_size, l_addr, l.mem_size) {
                continue;
            }
            let stale = match l.forwarded_from {
                None => true,
                Some(src) => src < store_seq,
            };
            if stale {
                victim = Some((lseq, l.pc));
                break; // oldest violating load
            }
        }
        if let Some((lseq, lpc)) = victim {
            self.stats.mem_order_violations += 1;
            self.squash_from(lseq);
            self.last_redirect_cycle = Some(self.cycle);
            self.fe.redirect(self.cycle, lpc);
        }
    }

    // ------------------------------------------------------------------
    // Stage 3: the NDA safety walk (paper §5, Table 2)
    // ------------------------------------------------------------------

    fn update_safety(&mut self) {
        // Baseline policies mark every micro-op safe at dispatch (see
        // `dispatch`), so the walk has nothing to recompute. The fence
        // border is maintained incrementally for every policy.
        if self.policy_all_safe {
            return;
        }
        let policy = self.cfg.policy;
        let now = self.cycle;
        let mut older_unresolved_branch = false;
        let mut older_unresolved_store = false;
        let mut is_head = true;
        for e in self.rob.iter_mut() {
            let mut safe = match policy.propagation {
                Propagation::Off => true,
                Propagation::Permissive => !e.inst.is_load_like() || !older_unresolved_branch,
                Propagation::Strict => !older_unresolved_branch,
            };
            if policy.bypass_restriction && e.inst.is_load_like() && older_unresolved_store {
                safe = false;
            }
            if policy.load_restriction && e.inst.is_load_like() && !is_head {
                safe = false;
            }
            e.safe = safe;
            if safe {
                if e.safe_since.is_none() {
                    e.safe_since = Some(now);
                }
            } else {
                e.safe_since = None;
            }
            if e.is_unresolved_branch() {
                older_unresolved_branch = true;
            }
            if e.inst.is_store() && !e.completed {
                older_unresolved_store = true;
            }
            is_head = false;
        }
    }

    // ------------------------------------------------------------------
    // Stage 3b: the STT taint walk (STT / ShadowBinding variants)
    // ------------------------------------------------------------------

    /// Recompute every in-flight entry's taint bit and mirror it into the
    /// PRF. A load's destination is tainted while the load is *speculative*
    /// under the configured threat model (Spectre: an older branch is
    /// unresolved; Futuristic: the load is not the ROB head); taint then
    /// flows from sources to destinations through the dataflow graph.
    ///
    /// Producers are strictly older than their consumers, so one
    /// oldest→youngest pass over fresh PRF bits *is* the transitive
    /// closure — exactly ShadowBinding's eager flash untaint: the cycle
    /// the guarding branch resolves, the whole dependence tree reads
    /// untainted. The `Propagated` timing additionally ORs in last
    /// cycle's taint image, so taint *set* stays immediate while an
    /// untaint ripples one dependency level per cycle (STT's untaint
    /// reuses the existing wakeup bandwidth). The `Lazy` timing keys the
    /// guard on branch *commit* (the branch leaving the ROB) instead of
    /// resolution.
    fn update_taint(&mut self) {
        let Some(tp) = self.cfg.taint else { return };
        let mut older_unresolved_branch = false;
        let mut older_branch = false;
        let mut is_head = true;
        let prf = &mut self.prf;
        let prev = &self.taint_prev;
        for e in self.rob.iter_mut() {
            let guard = match (tp.threat, tp.untaint) {
                (TaintThreat::Spectre, UntaintTiming::Lazy) => older_branch,
                (TaintThreat::Spectre, _) => older_unresolved_branch,
                (TaintThreat::Futuristic, _) => !is_head,
            };
            let mut t = e.inst.is_load_like() && guard;
            if !t {
                for &p in e.src_pregs.iter().flatten() {
                    if prf.is_tainted(p) || (!prev.is_empty() && prev[p as usize]) {
                        t = true;
                        break;
                    }
                }
            }
            e.tainted = t;
            if let Some(prd) = e.prd {
                prf.set_taint(prd, t);
            }
            if e.is_unresolved_branch() {
                older_unresolved_branch = true;
            }
            if e.inst.is_branch() {
                older_branch = true;
            }
            is_head = false;
        }
        if !self.taint_prev.is_empty() {
            for (i, prev) in self.taint_prev.iter_mut().enumerate() {
                *prev = prf.is_tainted(i as PReg);
            }
        }
    }

    /// Which operand slot of `inst` feeds a *transmit* channel — an
    /// address or indirect control-flow target whose value modulates a
    /// micro-architectural side effect (cache set, BTB entry). Conditional
    /// branch conditions are deliberately absent: STT gates explicit
    /// channels only, leaving the branch-direction implicit channel (and
    /// the execution-unit contention it steers) open — see the
    /// NetSpectre/SMoTherSpectre rows of the verdict matrix.
    pub(crate) fn transmit_slot(inst: &Inst) -> Option<usize> {
        match inst {
            Inst::Load { .. }
            | Inst::Store { .. }
            | Inst::ClFlush { .. }
            | Inst::JmpInd { .. }
            | Inst::CallInd { .. }
            | Inst::Ret => Some(0),
            _ => None,
        }
    }

    /// `true` while the taint policy must withhold issue of `e`: it is a
    /// transmitting micro-op and the operand feeding its transmit channel
    /// is currently tainted. Not monotone (taint clears at resolution), so
    /// the gate re-checks every cycle and never touches the sticky
    /// visibility cache.
    fn taint_gated(&self, e: &RobEntry) -> bool {
        let Some(slot) = Self::transmit_slot(&e.inst) else {
            return false;
        };
        e.src_pregs[slot].is_some_and(|p| self.prf.is_tainted(p))
    }

    // ------------------------------------------------------------------
    // Stage 4: tag broadcast (paper Fig 2 step 4)
    // ------------------------------------------------------------------

    fn broadcast(&mut self) {
        debug_assert_eq!(
            self.pending_bcast,
            self.rob
                .iter()
                .filter(|e| e.completed && !e.broadcasted && e.prd.is_some())
                .count(),
            "pending-broadcast counter drifted"
        );
        if self.pending_bcast == 0 {
            return;
        }
        let now = self.cycle;
        let extra = self.cfg.core.broadcast_extra_delay;
        let mut ports = self.cfg.core.broadcast_ports;
        // Pass 1: instructions completing this cycle have priority (the
        // paper gives completions priority to avoid pipeline stalls).
        let mut deferred = 0u64;
        let mut done = 0u64;
        let tracing = self.tracer.is_some();
        let mut traced = std::mem::take(&mut self.scratch_traced);
        traced.clear();
        for e in self.rob.iter_mut() {
            if ports == 0 {
                break;
            }
            if e.completed && e.complete_cycle == now && !e.broadcasted && e.safe {
                if let Some(prd) = e.prd {
                    self.prf.broadcast(prd);
                    e.broadcasted = true;
                    self.pending_bcast -= 1;
                    ports -= 1;
                    done += 1;
                    if tracing {
                        traced.push((e.seq, e.pc, e.inst));
                    }
                }
            }
        }
        // Pass 2: older completed-but-deferred entries that are now safe
        // arbitrate for the leftover ports, oldest first.
        for e in self.rob.iter_mut() {
            if ports == 0 {
                break;
            }
            let eligible = e.completed
                && !e.broadcasted
                && e.safe
                && e.safe_since.map(|s| s + extra <= now) == Some(true)
                && e.complete_cycle < now;
            if eligible {
                if let Some(prd) = e.prd {
                    self.prf.broadcast(prd);
                    e.broadcasted = true;
                    self.pending_bcast -= 1;
                    ports -= 1;
                    done += 1;
                    deferred += 1;
                    self.stats.defer_hist.observe(now - e.complete_cycle);
                    if tracing {
                        traced.push((e.seq, e.pc, e.inst));
                    }
                }
            }
        }
        self.stats.broadcasts += done;
        self.stats.deferred_broadcasts += deferred;
        if tracing {
            for &(seq, pc, inst) in &traced {
                self.trace_event(seq, pc, inst, crate::trace::TraceStage::Broadcast);
            }
        }
        self.scratch_traced = traced;
    }

    // ------------------------------------------------------------------
    // InvisiSpec exposure (between broadcast and issue)
    // ------------------------------------------------------------------

    fn expose_invisispec(&mut self) {
        let Some(variant) = self.cfg.invisispec else {
            return;
        };
        let now = self.cycle;
        // Determine each probe-load's safe point.
        let mut older_unresolved_branch = false;
        let mut is_head = true;
        let mut to_expose = std::mem::take(&mut self.scratch_seqs);
        to_expose.clear();
        for e in self.rob.iter() {
            let at_safe_point = match variant {
                IsVariant::Spectre => !older_unresolved_branch,
                IsVariant::Future => is_head,
            };
            if e.is_probe && e.completed && e.exposure_done.is_none() && at_safe_point {
                to_expose.push(e.seq);
            }
            if e.is_unresolved_branch() {
                older_unresolved_branch = true;
            }
            is_head = false;
        }
        for &seq in &to_expose {
            let (addr, needs_validation) = {
                let e = self.rob.get(seq).expect("probe entry");
                (
                    e.mem_addr.expect("probe has address"),
                    e.bypassed_unresolved,
                )
            };
            if needs_validation {
                // The load speculated past an unresolved store address:
                // InvisiSpec *validates* with a full re-access before the
                // load may retire.
                if let Some(acc) = self.hier.access_data(addr, now) {
                    if let Some(e) = self.rob.get_mut(seq) {
                        e.exposure_done = Some(now + acc.latency);
                    }
                }
                // MSHR-full: retry next cycle.
            } else {
                // Plain exposure: the line moves from the load's
                // speculative buffer into the cache; only an L1 fill is
                // paid.
                self.hier.install_data_line(addr);
                let lat = self.cfg.mem.l1d.latency;
                if let Some(e) = self.rob.get_mut(seq) {
                    e.exposure_done = Some(now + lat);
                }
            }
        }
        self.scratch_seqs = to_expose;
    }

    // ------------------------------------------------------------------
    // Stage 5: issue (wake-up / select)
    // ------------------------------------------------------------------

    fn operand(&self, e: &RobEntry, slot: usize) -> u64 {
        match e.src_pregs[slot] {
            Some(p) => self.prf.value(p),
            None => 0,
        }
    }

    fn srcs_visible(&self, e: &RobEntry) -> bool {
        e.src_pregs
            .iter()
            .flatten()
            .all(|&p| self.prf.is_visible(p))
    }

    fn issue(&mut self) {
        let now = self.cycle;
        let mut total = self.cfg.core.issue_width;
        let mut alu = self.cfg.core.alu_units;
        let mut load_ports = self.cfg.core.load_ports;
        let mut store_ports = self.cfg.core.store_ports;
        let mut branch_units = self.cfg.core.branch_units;
        let head_seq = self.rob.head().map(|e| e.seq);
        let fence_border = self.fence_border();
        let tracing = self.tracer.is_some();

        // Index-based walk: `try_issue` never touches the issue queue, so
        // no snapshot clone is needed; issued slots are recorded (ascending)
        // and compacted out in one ordered pass below.
        let mut issued_idx = std::mem::take(&mut self.scratch_issued_idx);
        issued_idx.clear();
        let mut dispatch_to_issue = 0u64;
        for i in 0..self.iq.len() {
            if total == 0 {
                break;
            }
            let seq = self.iq[i];
            let Some(e) = self.rob.get(seq) else { continue };
            debug_assert!(!e.issued);
            // A pending fence serializes: nothing younger may issue.
            if fence_border.map(|f| seq > f) == Some(true) {
                continue;
            }
            // Serializing micro-ops issue only from the head of the ROB.
            if matches!(
                e.inst,
                Inst::RdCycle { .. } | Inst::Fence | Inst::SpecOff | Inst::SpecOn
            ) && head_seq != Some(seq)
            {
                continue;
            }
            let srcs_cached = e.srcs_visible_cached;
            if !srcs_cached && !self.srcs_visible(e) {
                continue;
            }
            let class = e.inst.class();
            let dispatch_cycle = e.dispatch_cycle;
            if !srcs_cached {
                // Sticky wake-up bit: skip the per-source re-derivation on
                // later cycles while the entry waits on ports or fences.
                self.rob
                    .get_mut(seq)
                    .expect("entry exists")
                    .srcs_visible_cached = true;
            }
            // STT transmit-side gate: a transmitting micro-op may not
            // issue while the operand feeding its transmit channel is
            // tainted. Checked after wakeup (the entry is otherwise ready)
            // so gated cycles are pure defense delay.
            if self.taint_on {
                let e = self.rob.get(seq).expect("entry exists");
                if self.taint_gated(e) {
                    if tracing && !e.taint_gate_traced {
                        let (pc, inst) = (e.pc, e.inst);
                        let e = self.rob.get_mut(seq).expect("entry exists");
                        e.taint_gate_traced = true;
                        self.trace_event(seq, pc, inst, crate::trace::TraceStage::TaintGated);
                    }
                    continue;
                }
            }
            let port = match class {
                UopClass::Load | UopClass::LoadLike => &mut load_ports,
                UopClass::Store => &mut store_ports,
                UopClass::Branch => &mut branch_units,
                _ => &mut alu,
            };
            if *port == 0 {
                continue;
            }
            if self.try_issue(seq) {
                *port -= 1;
                total -= 1;
                dispatch_to_issue += now - dispatch_cycle;
                self.stats.d2i_hist.observe(now - dispatch_cycle);
                if tracing {
                    if let Some(e) = self.rob.get(seq) {
                        let (pc, inst) = (e.pc, e.inst);
                        let mem = e.mem_addr.map(|a| (a, e.mem_size));
                        self.trace_event_mem(seq, pc, inst, crate::trace::TraceStage::Issue, mem);
                    }
                }
                issued_idx.push(i);
            }
        }
        if !issued_idx.is_empty() {
            self.stats.issue_active_cycles += 1;
            self.stats.issued_insts += issued_idx.len() as u64;
            self.stats.dispatch_to_issue_total += dispatch_to_issue;
            // Ordered in-place compaction (O(iq), preserves age order —
            // swap-removal would reorder the queue and change scheduling).
            let mut next = 0;
            let mut w = 0;
            for r in 0..self.iq.len() {
                if next < issued_idx.len() && issued_idx[next] == r {
                    next += 1;
                    continue;
                }
                self.iq[w] = self.iq[r];
                w += 1;
            }
            self.iq.truncate(w);
        }
        self.scratch_issued_idx = issued_idx;
    }

    /// Attempt to begin execution of `seq`; returns `false` if a structural
    /// condition (LSQ wait, MSHR full) forces a retry next cycle.
    fn try_issue(&mut self, seq: u64) -> bool {
        let now = self.cycle;
        let e = self.rob.get(seq).expect("iq entry exists");
        let inst = e.inst;
        let a = self.operand(e, 0);
        let b = self.operand(e, 1);
        let pc = e.pc;

        let (result, done, extras) = match inst {
            Inst::Li { imm, .. } => (imm, now + 1, IssueExtras::default()),
            Inst::Alu { op, src2, .. } => {
                let rhs = match src2 {
                    Src2::Reg(_) => b,
                    Src2::Imm(i) => i,
                };
                let is_div = matches!(op, nda_isa::AluOp::Div | nda_isa::AluOp::Rem);
                // Structural hazard: the divider is busy (it is not
                // pipelined). Retry next cycle. Crucially the occupancy is
                // NOT released by a squash — an in-flight division drains —
                // which is exactly SMoTherSpectre's covert channel.
                if is_div && self.cfg.core.nonpipelined_divider && now < self.div_busy_until {
                    return false;
                }
                let mut latency = op.latency();
                if self.cfg.core.fpu_power_model
                    && matches!(
                        op,
                        nda_isa::AluOp::Mul | nda_isa::AluOp::Div | nda_isa::AluOp::Rem
                    )
                {
                    // NetSpectre's channel: a multiply on a powered-down
                    // unit pays the wake-up penalty; *any* multiply —
                    // wrong-path included — keeps the unit awake.
                    let awake = self
                        .fpu_busy_until
                        .map(|t| now.saturating_sub(t) <= self.cfg.core.fpu_power_down_after)
                        .unwrap_or(false);
                    if !awake {
                        latency += self.cfg.core.fpu_wake_penalty;
                    }
                    self.fpu_busy_until = Some(now + latency);
                }
                if is_div && self.cfg.core.nonpipelined_divider {
                    self.div_busy_until = now + latency;
                }
                (op.apply(a, rhs), now + latency, IssueExtras::default())
            }
            Inst::Nop | Inst::Halt => (0, now + 1, IssueExtras::default()),
            Inst::Fence | Inst::SpecOff | Inst::SpecOn => (0, now + 1, IssueExtras::default()),
            Inst::RdCycle { .. } => (now, now + 1, IssueExtras::default()),
            Inst::ClFlush { off, .. } => {
                let addr = a.wrapping_add(off as u64);
                self.hier.flush_line(addr);
                (0, now + 1, IssueExtras::default())
            }
            Inst::RdMsr { idx, .. } => {
                let permitted = self.msrs.user_may_read(idx);
                let value = if permitted || self.cfg.core.meltdown_flaw {
                    self.msrs.read(idx)
                } else {
                    0
                };
                let fault = (!permitted).then_some(Fault::PrivilegedMsr { idx });
                (
                    value,
                    now + 2,
                    IssueExtras {
                        fault,
                        ..IssueExtras::default()
                    },
                )
            }
            Inst::Branch { cond, target, .. } => {
                let taken = cond.eval(a, b);
                let next = if taken { target } else { pc + 1 };
                (
                    0,
                    now + 1,
                    IssueExtras {
                        actual: Some((taken, next)),
                        ..IssueExtras::default()
                    },
                )
            }
            Inst::JmpInd { .. } => (
                0,
                now + 1,
                IssueExtras {
                    actual: Some((true, a as usize)),
                    ..IssueExtras::default()
                },
            ),
            Inst::CallInd { .. } => (
                (pc + 1) as u64,
                now + 1,
                IssueExtras {
                    actual: Some((true, a as usize)),
                    ..IssueExtras::default()
                },
            ),
            Inst::Ret => (
                0,
                now + 1,
                IssueExtras {
                    actual: Some((true, a as usize)),
                    ..IssueExtras::default()
                },
            ),
            // Handled at dispatch (resolved immediately).
            Inst::Jmp { .. } | Inst::Call { .. } => {
                unreachable!("direct jumps complete at dispatch")
            }
            Inst::Store { off, size, .. } => {
                let addr = a.wrapping_add(off as u64);
                let fault = self
                    .priv_map
                    .is_privileged(addr)
                    .then_some(Fault::PrivilegedAccess { addr });
                (
                    0,
                    now + 1,
                    IssueExtras {
                        mem: Some((addr, size.bytes())),
                        store_data: Some(b),
                        fault,
                        ..IssueExtras::default()
                    },
                )
            }
            Inst::Load { off, size, .. } => {
                let addr = a.wrapping_add(off as u64);
                match self.issue_load(seq, addr, size.bytes()) {
                    Some(r) => r,
                    None => return false,
                }
            }
        };

        let e = self.rob.get_mut(seq).expect("entry");
        e.issued = true;
        e.issue_cycle = now;
        e.done_cycle = Some(done);
        e.result = result;
        self.events.push(Reverse((done, seq)));
        let e = self.rob.get_mut(seq).expect("entry");
        if let Some((taken, next)) = extras.actual {
            e.actual_taken = taken;
            e.actual_next = next;
        }
        if let Some((addr, size)) = extras.mem {
            e.mem_addr = Some(addr);
            e.mem_size = size;
        }
        if let Some(d) = extras.store_data {
            e.store_data = Some(d);
        }
        if extras.fault.is_some() {
            e.fault = extras.fault;
        }
        if let Some(f) = extras.forwarded_from {
            e.forwarded_from = Some(f);
        }
        if extras.bypassed {
            e.bypassed_unresolved = true;
            self.stats.store_bypasses += 1;
        }
        if extras.is_probe {
            e.is_probe = true;
        }
        if extras.level.is_some() {
            e.mem_level = extras.level;
            if extras.level != Some(nda_mem::Level::L1) {
                self.trace_event(seq, pc, inst, crate::trace::TraceStage::CacheMiss);
            }
        }
        true
    }

    /// Load issue: privilege check, store-queue search (forward / wait /
    /// bypass), then cache access (or InvisiSpec probe). `None` = retry.
    fn issue_load(&mut self, seq: u64, addr: u64, size: u64) -> Option<(u64, u64, IssueExtras)> {
        let now = self.cycle;
        let mut extras = IssueExtras {
            mem: Some((addr, size)),
            ..IssueExtras::default()
        };

        // Privilege: the fault is recorded, but under the modelled Meltdown
        // flaw the data still flows to dependents until commit squashes.
        if self.priv_map.is_privileged(addr) {
            extras.fault = Some(Fault::PrivilegedAccess { addr });
            if !self.cfg.core.meltdown_flaw {
                // A fixed implementation zeroes the forwarded data.
                let acc = self.hier.access_data(addr, now + 1)?;
                extras.level = Some(acc.level);
                return Some((0, now + 1 + acc.latency, extras));
            }
        }

        // Store-queue search, youngest older store first.
        let mut forwarded: Option<(u64, u64)> = None; // (store seq, value)
        for &sseq in self.sq.iter().rev() {
            if sseq >= seq {
                continue;
            }
            let st = self.rob.get(sseq).expect("sq entry");
            if !st.completed {
                // Unresolved address: bypass speculatively or wait.
                if self.cfg.core.speculative_store_bypass {
                    extras.bypassed = true;
                    continue;
                }
                return None;
            }
            let st_addr = st.mem_addr.expect("completed store");
            if !overlaps(st_addr, st.mem_size, addr, size) {
                continue;
            }
            if st_addr <= addr && addr + size <= st_addr + st.mem_size {
                // Full coverage: forward.
                let shift = (addr - st_addr) * 8;
                let data = st.store_data.expect("completed store");
                let val = extract_bytes(data >> shift, size);
                forwarded = Some((sseq, val));
                break;
            }
            // Partial overlap: wait until the store commits to memory.
            return None;
        }

        if let Some((sseq, val)) = forwarded {
            extras.forwarded_from = Some(sseq);
            extras.level = Some(nda_mem::Level::L1);
            return Some((val, now + self.cfg.core.store_forward_latency, extras));
        }

        // Delay-on-miss (Sakalis et al.): a speculative load that would
        // miss the L1 is simply not issued until older branches resolve.
        if self.cfg.core.delay_on_miss
            && self.has_older_unresolved_branch(seq)
            && self.hier.probe_data(addr, now).level != nda_mem::Level::L1
        {
            return None;
        }

        // Memory access. InvisiSpec turns speculative loads into invisible
        // probes; everything else fills the caches (wrong path included).
        let value = self.mem.read(addr, size);
        let value = if extras.fault.is_some() && !self.cfg.core.meltdown_flaw {
            0
        } else {
            value
        };
        let speculative_probe = match self.cfg.invisispec {
            None => false,
            Some(IsVariant::Spectre) => self.has_older_unresolved_branch(seq),
            Some(IsVariant::Future) => self.rob.head().map(|h| h.seq) != Some(seq),
        };
        let latency = if speculative_probe {
            extras.is_probe = true;
            let acc = self.hier.probe_data(addr, now + 1);
            extras.level = Some(acc.level);
            acc.latency
        } else {
            let acc = self.hier.access_data(addr, now + 1)?;
            extras.level = Some(acc.level);
            acc.latency
        };
        Some((value, now + 1 + latency, extras))
    }

    fn has_older_unresolved_branch(&self, seq: u64) -> bool {
        self.rob
            .iter()
            .take_while(|e| e.seq < seq)
            .any(|e| e.is_unresolved_branch())
    }

    // ------------------------------------------------------------------
    // Stage 6: dispatch / rename
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let now = self.cycle;
        for _ in 0..self.cfg.core.dispatch_width {
            let Some(uop) = self.fe.peek_ready(now) else {
                break;
            };
            if self.rob.is_full() {
                self.dispatch_block = Some(DispatchBlock::Rob);
                break;
            }
            if self.iq.len() >= self.cfg.core.iq_entries {
                self.dispatch_block = Some(DispatchBlock::Iq);
                break;
            }
            // Listing-4 window: speculation and OoO are disabled — admit
            // one instruction at a time so nothing wrong-path can dispatch
            // (a branch resolves before its successor enters the ROB).
            // An in-flight SpecOff serialises dispatch the same way so the
            // window engages before anything younger enters the back end.
            if (self.spec_window || self.specoff_pending > 0) && !self.rob.is_empty() {
                break;
            }
            let class = uop.inst.class();
            let needs_lq = matches!(class, UopClass::Load | UopClass::LoadLike);
            if needs_lq && self.lq.len() >= self.cfg.core.lq_entries {
                self.dispatch_block = Some(DispatchBlock::Lsq);
                break;
            }
            if class == UopClass::Store && self.sq.len() >= self.cfg.core.sq_entries {
                self.dispatch_block = Some(DispatchBlock::Lsq);
                break;
            }
            if uop.inst.dest().is_some() && self.free.available() == 0 {
                // Register exhaustion binds retirement like a full ROB.
                self.dispatch_block = Some(DispatchBlock::Rob);
                break;
            }
            let uop = self.fe.pop_ready(now).expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut e = RobEntry::new(seq, uop.pc, uop.inst, now);
            e.pred_next = uop.pred_next;
            e.pred_taken = uop.pred_taken;
            e.ghr_before = uop.ghr_before;
            e.ras_after = uop.ras_after;
            if self.policy_all_safe {
                // The safety walk is skipped for baseline policies; it would
                // first observe this entry (and mark it safe) next cycle.
                e.safe = true;
                e.safe_since = Some(now + 1);
            }

            // Rename sources, then destination.
            let ops = uop.inst.operands();
            for (slot, r) in ops.iter().enumerate() {
                if let Some(r) = r {
                    e.src_pregs[slot] = Some(self.rename.lookup(*r));
                }
            }
            if let Some(rd) = uop.inst.dest() {
                let prd = self.free.alloc().expect("checked available");
                self.prf.reset(prd);
                if !self.taint_prev.is_empty() {
                    // A recycled register must not inherit the previous
                    // owner's rippling taint image.
                    self.taint_prev[prd as usize] = false;
                }
                e.arch_rd = Some(rd);
                e.prd = Some(prd);
                e.old_prd = Some(self.rename.rename(rd, prd));
            }

            let mut enqueue = true;
            match uop.inst {
                // Direct control flow resolves at dispatch: the target is
                // in the instruction word, so it creates no unsafe border
                // and never mispredicts.
                Inst::Jmp { target } => {
                    e.branch_resolved = true;
                    e.actual_taken = true;
                    e.actual_next = target;
                    e.completed = true;
                    e.complete_cycle = now;
                    e.broadcasted = true;
                    enqueue = false;
                }
                Inst::Call { target } => {
                    e.branch_resolved = true;
                    e.actual_taken = true;
                    e.actual_next = target;
                    e.completed = true;
                    e.complete_cycle = now;
                    e.result = (uop.pc + 1) as u64;
                    self.prf.write(e.prd.expect("call writes ra"), e.result);
                    self.pending_bcast += 1;
                    enqueue = false;
                }
                Inst::Nop | Inst::Halt => {
                    e.completed = true;
                    e.complete_cycle = now;
                    e.broadcasted = true;
                    enqueue = false;
                }
                Inst::SpecOff => self.specoff_pending += 1,
                Inst::Fence => self.pending_fences.push_back(seq),
                _ => {}
            }
            if needs_lq {
                self.lq.push(seq);
            }
            if class == UopClass::Store {
                self.sq.push(seq);
            }
            if enqueue {
                self.iq.push(seq);
            }
            self.trace_event(seq, e.pc, e.inst, crate::trace::TraceStage::Dispatch);
            if e.completed {
                self.trace_event(seq, e.pc, e.inst, crate::trace::TraceStage::Complete);
            }
            self.rob.push(e);
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Remove every entry with `seq >= min_seq`, unwinding rename state
    /// tail-first and discarding never-broadcast values (paper §5.1:
    /// "discarding values in physical registers that never became safe").
    pub(crate) fn squash_from(&mut self, min_seq: u64) {
        let mut any = false;
        while let Some(e) = self.rob.pop_tail_from(min_seq) {
            any = true;
            if e.issued {
                self.stats.wrong_path_executed += 1;
            }
            if matches!(e.inst, Inst::SpecOff) {
                self.specoff_pending -= 1;
            }
            if e.completed && !e.broadcasted && e.prd.is_some() {
                self.pending_bcast -= 1;
            }
            self.trace_event(e.seq, e.pc, e.inst, crate::trace::TraceStage::Squash);
            if let (Some(rd), Some(prd), Some(old)) = (e.arch_rd, e.prd, e.old_prd) {
                debug_assert_eq!(self.rename.lookup(rd), prd, "LIFO unwind invariant");
                self.rename.restore(rd, old);
                self.free.release(prd);
                // Squashed values vanish; leave no taint behind on the
                // freed register (the drain property checks the whole PRF).
                if self.taint_on {
                    self.prf.set_taint(prd, false);
                    if !self.taint_prev.is_empty() {
                        self.taint_prev[prd as usize] = false;
                    }
                }
            }
        }
        if any {
            self.iq.retain(|&s| s < min_seq);
            self.lq.retain(|&s| s < min_seq);
            self.sq.retain(|&s| s < min_seq);
            while self.pending_fences.back().is_some_and(|&s| s >= min_seq) {
                self.pending_fences.pop_back();
            }
            // Sequence numbers name ROB slots; after a squash the next
            // dispatch reuses the numbering so the ROB stays contiguous.
            self.next_seq = min_seq;
            self.stats.squashes += 1;
        }
    }

    // ------------------------------------------------------------------
    // Cycle classification (Fig 9a): the top-down CPI stack
    // ------------------------------------------------------------------

    /// Attribute this cycle to exactly one [`CpiClass`]. Every cycle lands
    /// in one class (the stack partitions `stats.cycles`; property-tested),
    /// resolved head-first in priority order:
    ///
    /// 1. anything retired → commit;
    /// 2. empty ROB → frontend (squash refill while inside the redirect
    ///    shadow, fetch miss otherwise);
    /// 3. the defense is the bottleneck → nda-delay (see
    ///    [`OooCore::nda_delay_cycle`]);
    /// 4. otherwise the oldest instruction's own wait: an in-flight memory
    ///    access charges the level that services it, a completed head
    ///    charges the backend (or DRAM for an MSHR-blocked store), an
    ///    un-issued non-memory head charges whichever structure stalled
    ///    dispatch.
    fn classify_cycle(&mut self, committed: u64) {
        let now = self.cycle;
        let class = if committed > 0 {
            CpiClass::Commit
        } else if self.rob.is_empty() {
            // The redirect shadow is the fetch-to-dispatch refill after a
            // squash; an empty ROB outside it is a fetch (i-cache) stall.
            let refill = self.cfg.core.fetch_to_dispatch + 1;
            if self.last_redirect_cycle.map(|r| now < r + refill) == Some(true) {
                CpiClass::FrontendSquash
            } else {
                CpiClass::FrontendFetch
            }
        } else if self.nda_delay_cycle() {
            CpiClass::NdaDelay
        } else {
            let head = self.rob.head().expect("rob checked non-empty");
            let memish = head.inst.is_load_like() || head.inst.is_store();
            let exposure_pending = head.is_probe
                && head.completed
                && head.exposure_done.map(|d| d <= now) != Some(true);
            if exposure_pending {
                // A completed probe whose exposure/validation is still in
                // flight is waiting on the memory system, not the backend.
                mem_class(head.mem_level)
            } else if head.completed {
                if head.inst.is_store() {
                    // A completed store head only stalls retirement when
                    // its commit-time cache fill cannot get an MSHR.
                    CpiClass::MemDram
                } else {
                    CpiClass::BackendExec
                }
            } else if head.issued {
                if memish {
                    mem_class(head.mem_level)
                } else {
                    CpiClass::BackendExec
                }
            } else if memish {
                // An un-issued memory head (LSQ dependence, delay-on-miss,
                // MSHR retry): level unknown until issue.
                mem_class(head.mem_level)
            } else {
                match self.dispatch_block {
                    Some(DispatchBlock::Rob) => CpiClass::BackendRobFull,
                    Some(DispatchBlock::Iq) => CpiClass::BackendIqFull,
                    Some(DispatchBlock::Lsq) => CpiClass::BackendLsqFull,
                    None => CpiClass::BackendExec,
                }
            }
        };
        self.stats.record_cycle(class);
    }

    /// `true` when the NDA/InvisiSpec policy itself is the bottleneck this
    /// cycle: either the ROB head has completed but its broadcast is being
    /// withheld, or the oldest un-issued micro-op is ready *except* that
    /// every invisible source it waits on has a completed producer whose
    /// broadcast the policy is withholding. Port starvation does not count
    /// (the producer must be policy-withheld, not merely un-broadcast), so
    /// this is identically false on the unprotected baselines — pinned by
    /// the `nda_delay`-is-zero property test.
    fn nda_delay_cycle(&self) -> bool {
        if self.policy_all_safe && self.cfg.invisispec.is_none() && !self.taint_on {
            return false;
        }
        // STT/ShadowBinding (mutually exclusive with restrictive NDA and
        // InvisiSpec): the defense is the bottleneck when the oldest
        // un-issued micro-op is woken up but its transmit operand is
        // tainted.
        if self.taint_on {
            let Some(&seq) = self.iq.first() else {
                return false;
            };
            let Some(e) = self.rob.get(seq) else {
                return false;
            };
            return (e.srcs_visible_cached || self.srcs_visible(e)) && self.taint_gated(e);
        }
        let now = self.cycle;
        let extra = self.cfg.core.broadcast_extra_delay;
        let withheld =
            |e: &RobEntry| -> bool { !e.safe || e.safe_since.is_none_or(|s| s + extra > now) };
        // InvisiSpec: the head cannot retire until its exposure completes —
        // cycles its miss would also have cost the baseline are charged to
        // memory by the classifier, but a *hit* probe awaiting exposure is
        // pure defense overhead.
        if let Some(h) = self.rob.head() {
            if h.is_probe
                && h.completed
                && h.exposure_done.map(|d| d <= now) != Some(true)
                && h.mem_level == Some(nda_mem::Level::L1)
            {
                return true;
            }
            // NDA proper: a completed head whose tag broadcast is withheld.
            if h.completed && !h.broadcasted && h.prd.is_some() && withheld(h) {
                return true;
            }
        }
        // The oldest un-issued micro-op: ready except for deferred
        // broadcasts?
        let Some(&seq) = self.iq.first() else {
            return false;
        };
        let Some(e) = self.rob.get(seq) else {
            return false;
        };
        let mut any_withheld = false;
        for &p in e.src_pregs.iter().flatten() {
            if self.prf.is_visible(p) {
                continue;
            }
            // The producer is in flight (committed producers broadcast at
            // retirement, so an invisible source always has one).
            let Some(prod) = self.rob.iter().find(|pe| pe.prd == Some(p)) else {
                return false;
            };
            if !prod.completed || prod.broadcasted || !withheld(prod) {
                return false;
            }
            any_withheld = true;
        }
        any_withheld
    }
}

/// One ROB entry's externally-visible state, for the Fig 6 trace renderer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobView {
    /// Instruction index.
    pub pc: usize,
    /// Disassembly.
    pub disasm: String,
    /// Fig 6 cell state.
    pub state: RobCellState,
    /// `true` for a branch whose outcome is still unknown.
    pub unresolved_branch: bool,
}

/// The Fig 6 colour coding of an ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobCellState {
    /// Sources not ready: cannot issue yet.
    NotReady,
    /// Issued and executing.
    Executing,
    /// Completed but NDA is deferring the broadcast (unsafe).
    CompletedUnsafe,
    /// Completed and broadcast (safe).
    CompletedBroadcast,
}

impl OooCore {
    /// Snapshot the ROB in Fig 6 form (oldest first).
    pub fn rob_view(&self) -> Vec<RobView> {
        self.rob
            .iter()
            .map(|e| {
                let state = if e.completed {
                    if e.broadcasted {
                        RobCellState::CompletedBroadcast
                    } else {
                        RobCellState::CompletedUnsafe
                    }
                } else if e.issued {
                    RobCellState::Executing
                } else {
                    RobCellState::NotReady
                };
                RobView {
                    pc: e.pc,
                    disasm: e.inst.to_string(),
                    state,
                    unresolved_branch: e.is_unresolved_branch(),
                }
            })
            .collect()
    }
}

/// Per-issue side data threaded from `try_issue` helpers.
#[derive(Debug, Default, Clone, Copy)]
struct IssueExtras {
    actual: Option<(bool, usize)>,
    mem: Option<(u64, u64)>,
    store_data: Option<u64>,
    fault: Option<Fault>,
    forwarded_from: Option<u64>,
    bypassed: bool,
    is_probe: bool,
    /// Hierarchy level that serviced a load/probe (L1 for store forwards).
    level: Option<nda_mem::Level>,
}

/// The back-end structure that stopped dispatch this cycle (CPI stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchBlock {
    /// ROB full (or the physical register file is exhausted, which binds
    /// the same resource: an ROB entry cannot retire to free its register).
    Rob,
    /// Issue queue full.
    Iq,
    /// Load or store queue full.
    Lsq,
}

/// CPI-stack class for a memory access serviced at `level` (unknown levels
/// — e.g. a load that has not issued yet — charge the cheapest, so the
/// expensive classes are never over-stated).
fn mem_class(level: Option<nda_mem::Level>) -> CpiClass {
    match level {
        Some(nda_mem::Level::L2) => CpiClass::MemL2,
        Some(nda_mem::Level::Mem) => CpiClass::MemDram,
        Some(nda_mem::Level::L1) | None => CpiClass::MemL1,
    }
}

fn overlaps(a_addr: u64, a_size: u64, b_addr: u64, b_size: u64) -> bool {
    a_addr < b_addr.wrapping_add(b_size) && b_addr < a_addr.wrapping_add(a_size)
}

fn extract_bytes(v: u64, size: u64) -> u64 {
    if size >= 8 {
        v
    } else {
        v & ((1u64 << (8 * size)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, Variant};
    use nda_isa::{Asm, Reg};

    fn run_ooo(asm: &Asm) -> OooCore {
        run_cfg(asm, SimConfig::ooo())
    }

    fn run_cfg(asm: &Asm, cfg: SimConfig) -> OooCore {
        let p = asm.assemble().unwrap();
        let mut c = OooCore::new(cfg, &p);
        c.run(1_000_000).unwrap();
        c
    }

    #[test]
    fn arithmetic_commits() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 20)
            .li(Reg::X3, 22)
            .add(Reg::X4, Reg::X2, Reg::X3)
            .halt();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X4), 42);
        assert_eq!(c.stats.committed_insts, 4);
        assert!(c.halted());
    }

    #[test]
    fn loop_matches_interp() {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 25).li(Reg::X3, 0);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.addi(Reg::X3, Reg::X3, 7);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X3), 175);
    }

    #[test]
    fn store_load_roundtrip_with_forwarding() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 0x1_0000);
        asm.li(Reg::X3, 0xDEAD);
        asm.st8(Reg::X3, Reg::X2, 8);
        asm.ld8(Reg::X4, Reg::X2, 8); // forwards from the store queue
        asm.halt();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X4), 0xDEAD);
        assert_eq!(c.mem.read(0x1_0008, 8), 0xDEAD);
    }

    #[test]
    fn call_ret_roundtrip() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        asm.call(f);
        asm.li(Reg::X6, 9);
        asm.halt();
        asm.bind(f);
        asm.li(Reg::X5, 7);
        asm.ret();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X5), 7);
        assert_eq!(c.reg(Reg::X6), 9);
    }

    #[test]
    fn mispredicted_branch_squashes_wrong_path() {
        // A data-dependent branch the predictor cannot know: initial
        // prediction is not-taken, but it is taken.
        let mut asm = Asm::new();
        let skip = asm.new_label();
        asm.li(Reg::X2, 1);
        asm.bne(Reg::X2, Reg::X0, skip); // taken; predicted not-taken (cold)
        asm.li(Reg::X3, 0xBAD);
        asm.bind(skip);
        asm.halt();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X3), 0, "wrong-path write must be squashed");
        assert!(c.stats.branch_mispredicts >= 1);
        assert!(c.stats.squashes >= 1);
    }

    #[test]
    fn all_policies_preserve_architecture() {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 12).li(Reg::X3, 0).li(Reg::X8, 0x2_0000);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.add(Reg::X3, Reg::X3, Reg::X2);
        asm.st8(Reg::X3, Reg::X8, 0);
        asm.ld8(Reg::X4, Reg::X8, 0);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        let mut cycles = Vec::new();
        for v in [
            Variant::Ooo,
            Variant::Permissive,
            Variant::PermissiveBr,
            Variant::Strict,
            Variant::StrictBr,
            Variant::RestrictedLoads,
            Variant::FullProtection,
            Variant::InvisiSpecSpectre,
            Variant::InvisiSpecFuture,
        ] {
            let c = run_cfg(&asm, SimConfig::for_variant(v));
            assert_eq!(c.reg(Reg::X3), 78, "{v}: wrong sum");
            assert_eq!(c.reg(Reg::X4), 78, "{v}: wrong load");
            cycles.push((v, c.cycle()));
        }
        // NDA restricts scheduling: no protected variant can be faster
        // than insecure OoO.
        let base = cycles[0].1;
        for (v, cyc) in &cycles[1..] {
            assert!(*cyc >= base, "{v} faster than OoO ({cyc} < {base})");
        }
    }

    #[test]
    fn load_restriction_delays_young_loads_behind_slow_head() {
        // A slow (cold-miss) load occupies the ROB head; a young fast load
        // feeds a dependent ALU chain. Baseline OoO overlaps the chain with
        // the miss; load restriction forces the fast load to wait for the
        // head, serialising the chain after the miss.
        let mut asm = Asm::new();
        asm.data_u64s(0xB000, &[7]);
        // Warm the fast load's line.
        asm.li(Reg::X8, 0xB000);
        asm.ld8(Reg::X9, Reg::X8, 0);
        asm.fence(); // make warm-up timing identical across policies
        asm.li(Reg::X2, 0xA000); // never touched: cold
        asm.ld8(Reg::X4, Reg::X2, 0); // slow, independent
        asm.ld8(Reg::X5, Reg::X8, 0); // fast, but young
        for _ in 0..40 {
            asm.addi(Reg::X5, Reg::X5, 1); // dependent chain on the fast load
        }
        asm.halt();
        let base = run_cfg(&asm, SimConfig::for_variant(Variant::Ooo));
        let full = run_cfg(&asm, SimConfig::for_variant(Variant::RestrictedLoads));
        assert_eq!(base.reg(Reg::X5), full.reg(Reg::X5));
        assert_eq!(base.reg(Reg::X5), 47);
        assert!(
            full.cycle() > base.cycle() + 20,
            "load restriction must serialise the chain after the miss ({} vs {})",
            full.cycle(),
            base.cycle()
        );
        assert!(full.stats.deferred_broadcasts > 0);
    }

    #[test]
    fn fault_without_handler_is_error() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, nda_isa::KERNEL_BASE);
        asm.ld8(Reg::X3, Reg::X2, 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut c = OooCore::new(SimConfig::ooo(), &p);
        let err = c.run(100_000).unwrap_err();
        assert!(matches!(err, SimError::UnhandledFault(_)));
    }

    #[test]
    fn fault_with_handler_recovers_architecturally() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.li(Reg::X2, nda_isa::KERNEL_BASE);
        asm.ld8(Reg::X3, Reg::X2, 0);
        asm.li(Reg::X4, 0xBAD); // skipped via handler
        asm.halt();
        asm.bind(h);
        asm.li(Reg::X5, 1);
        asm.halt();
        let c = run_ooo(&asm);
        assert_eq!(c.stats.faults, 1);
        assert_eq!(c.reg(Reg::X5), 1);
        assert_eq!(c.reg(Reg::X3), 0, "faulting load must not commit its value");
    }

    #[test]
    fn rdcycle_is_monotonic_and_serializing() {
        let mut asm = Asm::new();
        asm.rdcycle(Reg::X2);
        asm.rdcycle(Reg::X3);
        asm.halt();
        let c = run_ooo(&asm);
        assert!(c.reg(Reg::X3) > c.reg(Reg::X2));
    }

    #[test]
    fn ssb_stale_then_replay_gets_correct_value() {
        // A store whose address depends on a slow load; a younger load to
        // the same address bypasses it speculatively, reads stale data and
        // must be replayed when the store resolves.
        let mut asm = Asm::new();
        asm.data_u64s(0x4000, &[0x5000]); // pointer to the store target
        asm.data_u64s(0x5000, &[111]); // stale value
        asm.li(Reg::X2, 0x4000);
        asm.clflush(Reg::X2, 0); // make the pointer load slow
        asm.ld8(Reg::X3, Reg::X2, 0); // slow: X3 = 0x5000
        asm.li(Reg::X4, 222);
        asm.st8(Reg::X4, Reg::X3, 0); // store addr unresolved for a while
        asm.li(Reg::X5, 0x5000);
        asm.ld8(Reg::X6, Reg::X5, 0); // bypasses; must end up 222
        asm.halt();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X6), 222, "replay must repair the stale read");
        assert!(
            c.stats.mem_order_violations >= 1,
            "bypass must have mis-speculated"
        );
        assert!(c.stats.store_bypasses >= 1);
    }

    #[test]
    fn indirect_call_through_table() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        asm.li(Reg::X2, 0x6000);
        asm.ld8(Reg::X3, Reg::X2, 0);
        asm.call_ind(Reg::X3);
        asm.halt();
        asm.bind(f);
        asm.li(Reg::X7, 0x77);
        asm.ret();
        let mut p = asm.assemble().unwrap();
        let target = 4u64; // index of "li x7"
        p.data.push(nda_isa::DataInit {
            addr: 0x6000,
            bytes: target.to_le_bytes().to_vec(),
        });
        let mut c = OooCore::new(SimConfig::ooo(), &p);
        c.run(1_000_000).unwrap();
        assert_eq!(c.reg(Reg::X7), 0x77);
    }

    #[test]
    fn fence_serializes_issue() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 5);
        asm.fence();
        asm.addi(Reg::X3, Reg::X2, 1);
        asm.halt();
        let c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X3), 6);
    }

    #[test]
    fn wrong_path_loads_fill_caches_on_insecure_ooo() {
        // The residue that makes Spectre work: a wrong-path load allocates
        // a line that survives the squash.
        let mut asm = Asm::new();
        let skip = asm.new_label();
        asm.li(Reg::X2, 1);
        asm.li(Reg::X9, 0x9_0000);
        asm.clflush(Reg::X9, 0);
        asm.bne(Reg::X2, Reg::X0, skip); // taken, predicted not-taken (cold)
        asm.ld8(Reg::X4, Reg::X9, 0); // wrong path
        asm.bind(skip);
        // Let plenty of cycles pass so the wrong-path fill completes.
        for _ in 0..64 {
            asm.nop();
        }
        asm.halt();
        let mut c = run_ooo(&asm);
        assert_eq!(c.reg(Reg::X4), 0, "wrong-path load must not commit");
        assert!(
            c.stats.wrong_path_executed > 0,
            "wrong path must actually execute"
        );
        let now = c.cycle();
        assert_eq!(
            c.hier.probe_data(0x9_0000, now).level,
            nda_mem::Level::L1,
            "wrong-path cache fill must survive the squash (the covert channel)"
        );
    }
}
