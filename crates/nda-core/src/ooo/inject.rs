//! Fault-injection hooks for the differential harness (`nda-verify`).
//!
//! Each injection is a *timing-only* perturbation: it may slow the
//! pipeline down, replay work, or mislead the predictors, but it must
//! never change the architectural result. The harness drives these from a
//! [`run_hooked`](super::core::OooCore::run_hooked) callback and then
//! asserts bit-exact architectural state against the reference
//! interpreter.
//!
//! Why each hook is architecture-preserving:
//!
//! * **Spurious squash** — squashing from any in-flight entry and
//!   redirecting fetch to that entry's own pc replays exactly the path the
//!   front end would have fetched anyway; an older still-unresolved branch
//!   re-resolves (and re-squashes) identically on the replay.
//! * **Predictor corruption** — the BTB, direction predictor and RAS only
//!   steer *speculative* fetch; every misprediction they cause is caught
//!   at branch resolution and squashed.
//! * **Extra memory latency** — applied through
//!   [`MemHier::set_extra_latency`](nda_mem::MemHier::set_extra_latency);
//!   data still arrives, just later.

use super::core::OooCore;

impl OooCore {
    /// Squash from a pseudo-randomly picked in-flight entry (`pick`
    /// selects among the current ROB occupancy) and redirect fetch to that
    /// entry's pc, as a mis-speculation recovery would. Returns `false`
    /// when the ROB is empty and nothing was injected.
    pub fn inject_spurious_squash(&mut self, pick: u64) -> bool {
        let len = self.rob.len() as u64;
        if len == 0 {
            return false;
        }
        let head_seq = self.rob.head().expect("non-empty rob").seq;
        let seq = head_seq + pick % len;
        let pc = self.rob.get(seq).expect("seq within occupancy").pc;
        let now = self.cycle();
        self.squash_from(seq);
        self.fe.redirect(now, pc);
        true
    }

    /// Corrupt one predictor structure: a bogus BTB target, a poisoned
    /// direction-predictor training, or a RAS push/pop. `sel` chooses the
    /// structure, `val` seeds the corrupt values (reduced into range).
    pub fn inject_predictor_corruption(&mut self, sel: u64, val: u64) {
        let len = self.program.len();
        if len == 0 {
            return;
        }
        let pc = (val as usize) % len;
        let addr = self.program.inst_addr(pc);
        match sel % 4 {
            0 => self.fe.btb.update(addr, (val >> 8) as usize % len),
            1 => self.fe.dir.train(addr, val, val & 1 == 1, val & 2 == 2),
            2 => self.fe.ras.push(pc),
            _ => {
                self.fe.ras.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::OooCore;
    use nda_isa::{AluOp, Asm, Interp, Reg};

    fn fib_program() -> nda_isa::Program {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 0).li(Reg::X3, 1).li(Reg::X4, 12);
        let top = asm.here_label();
        asm.alu(AluOp::Add, Reg::X5, Reg::X2, Reg::X3);
        asm.mov(Reg::X2, Reg::X3);
        asm.mov(Reg::X3, Reg::X5);
        asm.subi(Reg::X4, Reg::X4, 1);
        asm.bne(Reg::X4, Reg::X0, top);
        asm.halt();
        asm.assemble().unwrap()
    }

    fn reference_regs(p: &nda_isa::Program) -> [u64; 32] {
        let mut i = Interp::new(p);
        for _ in 0..100_000 {
            if i.halted() {
                break;
            }
            i.step().unwrap();
        }
        let mut out = [0u64; 32];
        for r in Reg::all() {
            out[r.index()] = i.reg(r);
        }
        out
    }

    #[test]
    fn spurious_squashes_preserve_architecture() {
        let p = fib_program();
        let want = reference_regs(&p);
        let mut cfg = SimConfig::ooo();
        cfg.check_invariants = true;
        let mut core = OooCore::new(cfg, &p);
        let mut tick = 0u64;
        // Throttled well below the refetch-to-commit latency: squashing
        // faster than the pipeline can retire is a genuine livelock the
        // forward-progress watchdog (rightly) reports.
        let r = core
            .run_hooked(1_000_000, |c| {
                tick += 1;
                if tick % 50 == 3 {
                    c.inject_spurious_squash(tick.wrapping_mul(0x9e37_79b9));
                }
            })
            .unwrap();
        assert!(r.halted);
        assert_eq!(r.regs, want);
    }

    #[test]
    fn predictor_corruption_preserves_architecture() {
        let p = fib_program();
        let want = reference_regs(&p);
        let mut cfg = SimConfig::ooo();
        cfg.check_invariants = true;
        let mut core = OooCore::new(cfg, &p);
        let mut tick = 0u64;
        let r = core
            .run_hooked(1_000_000, |c| {
                tick += 1;
                if tick % 5 == 1 {
                    c.inject_predictor_corruption(tick, tick.wrapping_mul(0x517c_c1b7_2722_0a95));
                }
            })
            .unwrap();
        assert!(r.halted);
        assert_eq!(r.regs, want);
    }

    #[test]
    fn extra_memory_latency_preserves_architecture() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 0x10_0000).li(Reg::X3, 0).li(Reg::X4, 8);
        let top = asm.here_label();
        asm.store(Reg::X4, Reg::X2, 0, nda_isa::MemSize::B8);
        asm.load(Reg::X5, Reg::X2, 0, nda_isa::MemSize::B8);
        asm.alu(AluOp::Add, Reg::X3, Reg::X3, Reg::X5);
        asm.addi(Reg::X2, Reg::X2, 8);
        asm.subi(Reg::X4, Reg::X4, 1);
        asm.bne(Reg::X4, Reg::X0, top);
        asm.halt();
        let p = asm.assemble().unwrap();
        let want = reference_regs(&p);
        let mut cfg = SimConfig::ooo();
        cfg.check_invariants = true;
        let mut core = OooCore::new(cfg, &p);
        let mut tick = 0u64;
        let r = core
            .run_hooked(1_000_000, |c| {
                tick += 1;
                c.hier
                    .set_extra_latency(if tick.is_multiple_of(3) { 25 } else { 0 });
            })
            .unwrap();
        assert!(r.halted);
        assert_eq!(r.regs, want);
    }
}
