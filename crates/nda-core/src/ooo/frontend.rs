//! The front end: fetch, predict, and the fetch→dispatch pipe.
//!
//! Fetch follows predictions blindly — including down wrong paths. The
//! queue models the front-end pipeline depth: a micro-op fetched at cycle
//! `t` becomes eligible for dispatch at `t + fetch_to_dispatch`, which is
//! what makes a misprediction cost ~16 cycles end to end (the penalty the
//! paper measures for its BTB covert channel, Fig 5).

use nda_isa::{Inst, Program};
use nda_mem::{Level, MemHier};
use nda_predict::{Btb, DirPredictor, Ras, RasSnapshot};
use std::collections::VecDeque;

/// A fetched, predicted micro-op waiting to dispatch.
#[derive(Debug, Clone)]
pub struct FetchedUop {
    /// Instruction index.
    pub pc: usize,
    /// The decoded micro-op.
    pub inst: Inst,
    /// Predicted next PC (where fetch went after this).
    pub pred_next: usize,
    /// Cycle at which dispatch may consume this micro-op.
    pub ready_cycle: u64,
    /// Predicted direction (conditional branches only).
    pub pred_taken: bool,
    /// GHR snapshot just before predicting this branch.
    pub ghr_before: u64,
    /// RAS snapshot just after this branch's own push/pop.
    pub ras_after: Option<RasSnapshot>,
}

/// Fetch parameters (subset of the core config the front end needs).
#[derive(Debug, Clone, Copy)]
pub struct FrontEndConfig {
    /// Micro-ops fetched per cycle.
    pub fetch_width: usize,
    /// Fetch→dispatch latency in cycles.
    pub fetch_to_dispatch: u64,
    /// Queue capacity.
    pub fetch_buffer: usize,
}

/// The fetch unit. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct FrontEnd {
    cfg: FrontEndConfig,
    /// Next PC to fetch.
    pub fetch_pc: usize,
    queue: VecDeque<FetchedUop>,
    stall_until: u64,
    /// The i-cache line most recently fetched from (avoids re-charging).
    last_line: Option<u64>,
    /// Direction predictor.
    pub dir: DirPredictor,
    /// Branch target buffer.
    pub btb: Btb,
    /// Return address stack.
    pub ras: Ras,
}

impl FrontEnd {
    /// A front end starting at `entry`.
    pub fn new(cfg: FrontEndConfig, dir: DirPredictor, btb: Btb, entry: usize) -> FrontEnd {
        FrontEnd {
            cfg,
            fetch_pc: entry,
            queue: VecDeque::with_capacity(cfg.fetch_buffer),
            stall_until: 0,
            last_line: None,
            dir,
            btb,
            ras: Ras::new(),
        }
    }

    /// Number of queued micro-ops.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Squash recovery: discard everything fetched, restart at `pc` next
    /// cycle.
    pub fn redirect(&mut self, now: u64, pc: usize) {
        self.queue.clear();
        self.fetch_pc = pc;
        self.stall_until = now + 1;
        self.last_line = None;
    }

    /// Pop the next micro-op if its pipeline delay has elapsed.
    pub fn pop_ready(&mut self, now: u64) -> Option<FetchedUop> {
        if self.queue.front().map(|u| u.ready_cycle <= now) == Some(true) {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Peek without consuming (dispatch resource checks).
    pub fn peek_ready(&self, now: u64) -> Option<&FetchedUop> {
        self.queue.front().filter(|u| u.ready_cycle <= now)
    }

    /// Run one fetch cycle: predict and enqueue up to `fetch_width`
    /// micro-ops, stopping at a predicted-taken branch, a full buffer, an
    /// i-cache miss, or the end of the text segment.
    pub fn fetch_cycle(&mut self, now: u64, program: &Program, hier: &mut MemHier) {
        if now < self.stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.queue.len() >= self.cfg.fetch_buffer {
                break;
            }
            let pc = self.fetch_pc;
            let Some(inst) = program.fetch(pc) else {
                // Ran off the text segment (wrong path, or a program bug a
                // squash will redirect us out of).
                break;
            };
            // I-cache: charge per line transition; a miss stalls fetch.
            let addr = program.inst_addr(pc);
            let line = addr / 64;
            if self.last_line != Some(line) {
                let acc = hier.access_inst(addr);
                if acc.level != Level::L1 {
                    self.stall_until = now + acc.latency;
                    return;
                }
                self.last_line = Some(line);
            }

            let mut uop = FetchedUop {
                pc,
                inst,
                pred_next: pc + 1,
                ready_cycle: now + self.cfg.fetch_to_dispatch,
                pred_taken: false,
                ghr_before: 0,
                ras_after: None,
            };
            let mut redirect_target: Option<usize> = None;
            match inst {
                Inst::Branch { target, .. } => {
                    uop.ghr_before = self.dir.ghr();
                    uop.pred_taken = self.dir.predict(addr);
                    if uop.pred_taken {
                        uop.pred_next = target;
                        redirect_target = Some(target);
                    }
                    uop.ras_after = Some(self.ras.snapshot());
                }
                Inst::Jmp { target } => {
                    uop.pred_next = target;
                    redirect_target = Some(target);
                    uop.ras_after = Some(self.ras.snapshot());
                }
                Inst::Call { target } => {
                    self.ras.push(pc + 1);
                    uop.pred_next = target;
                    redirect_target = Some(target);
                    uop.ras_after = Some(self.ras.snapshot());
                }
                Inst::JmpInd { .. } => {
                    if let Some(t) = self.btb.lookup(addr) {
                        uop.pred_next = t;
                        redirect_target = Some(t);
                    }
                    uop.ras_after = Some(self.ras.snapshot());
                }
                Inst::CallInd { .. } => {
                    self.ras.push(pc + 1);
                    if let Some(t) = self.btb.lookup(addr) {
                        uop.pred_next = t;
                        redirect_target = Some(t);
                    }
                    uop.ras_after = Some(self.ras.snapshot());
                }
                Inst::Ret => {
                    if let Some(t) = self.ras.pop() {
                        uop.pred_next = t;
                        redirect_target = Some(t);
                    }
                    uop.ras_after = Some(self.ras.snapshot());
                }
                _ => {}
            }
            let taken_redirect = redirect_target.is_some() && uop.pred_next != pc + 1;
            self.queue.push_back(uop);
            if let Some(t) = redirect_target {
                self.fetch_pc = t;
                if taken_redirect {
                    // One taken-branch redirect per cycle.
                    break;
                }
            } else {
                self.fetch_pc = pc + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::{Asm, Reg};
    use nda_mem::MemHierConfig;
    use nda_predict::{BtbConfig, Gshare, GshareConfig, PredictorKind};

    fn fe(entry: usize) -> FrontEnd {
        let _ = PredictorKind::Gshare;
        FrontEnd::new(
            FrontEndConfig {
                fetch_width: 4,
                fetch_to_dispatch: 3,
                fetch_buffer: 16,
            },
            DirPredictor::Gshare(Gshare::new(GshareConfig::default())),
            Btb::new(BtbConfig::default()),
            entry,
        )
    }

    fn warm_hier() -> MemHier {
        MemHier::new(MemHierConfig::haswell_like())
    }

    #[test]
    fn straight_line_fetch_respects_pipeline_delay() {
        let mut asm = Asm::new();
        for _ in 0..8 {
            asm.nop();
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut f = fe(0);
        let mut h = warm_hier();
        // Cycle 0: icache cold -> stall, nothing fetched.
        f.fetch_cycle(0, &p, &mut h);
        assert_eq!(f.queued(), 0);
        // After the miss resolves, fetch proceeds.
        let resume = 4 + 40 + 100;
        f.fetch_cycle(resume, &p, &mut h);
        assert_eq!(f.queued(), 4);
        assert!(
            f.pop_ready(resume).is_none(),
            "pipeline delay not yet elapsed"
        );
        assert!(f.pop_ready(resume + 3).is_some());
    }

    #[test]
    fn taken_jmp_redirects_within_cycle() {
        let mut asm = Asm::new();
        let l = asm.new_label();
        asm.jmp(l); // 0
        asm.nop(); // 1 (skipped)
        asm.bind(l);
        asm.halt(); // 2
        let p = asm.assemble().unwrap();
        let mut f = fe(0);
        let mut h = warm_hier();
        f.fetch_cycle(0, &p, &mut h); // cold miss
        f.fetch_cycle(200, &p, &mut h);
        // Only the jmp was fetched this cycle; next fetch starts at 2.
        assert_eq!(f.queued(), 1);
        assert_eq!(f.fetch_pc, 2);
        let u = f.pop_ready(203).unwrap();
        assert_eq!(u.pred_next, 2);
    }

    #[test]
    fn call_ret_pair_predicts_via_ras() {
        let mut asm = Asm::new();
        let func = asm.new_label();
        asm.call(func); // 0 -> 2
        asm.halt(); // 1
        asm.bind(func);
        asm.ret(); // 2 -> predicted 1
        let p = asm.assemble().unwrap();
        let mut f = fe(0);
        let mut h = warm_hier();
        f.fetch_cycle(0, &p, &mut h);
        f.fetch_cycle(200, &p, &mut h); // fetches call, redirects to 2
        f.fetch_cycle(201, &p, &mut h); // fetches ret, predicts 1 via RAS
        let call = f.pop_ready(205).unwrap();
        assert_eq!(call.pred_next, 2);
        let ret = f.pop_ready(206).unwrap();
        assert!(matches!(ret.inst, Inst::Ret));
        assert_eq!(ret.pred_next, 1, "RAS predicted the return");
    }

    #[test]
    fn indirect_without_btb_predicts_fallthrough() {
        let mut asm = Asm::new();
        asm.jmp_ind(Reg::X2); // 0
        asm.nop(); // 1
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut f = fe(0);
        let mut h = warm_hier();
        f.fetch_cycle(0, &p, &mut h);
        f.fetch_cycle(200, &p, &mut h);
        let u = f.pop_ready(210).unwrap();
        assert_eq!(u.pred_next, 1, "BTB miss predicts fall-through");
    }

    #[test]
    fn redirect_clears_queue() {
        let mut asm = Asm::new();
        for _ in 0..6 {
            asm.nop();
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut f = fe(0);
        let mut h = warm_hier();
        f.fetch_cycle(0, &p, &mut h);
        f.fetch_cycle(200, &p, &mut h);
        assert!(f.queued() > 0);
        f.redirect(201, 5);
        assert_eq!(f.queued(), 0);
        assert_eq!(f.fetch_pc, 5);
        // Stalled the redirect cycle itself.
        f.fetch_cycle(201, &p, &mut h);
        assert_eq!(f.queued(), 0);
    }
}
