//! Reorder buffer.
//!
//! Each [`RobEntry`] carries the paper's three NDA bookkeeping bits —
//! `unsafe` (here inverted as [`RobEntry::safe`]), `exec`
//! ([`RobEntry::completed`]) and `bcast` ([`RobEntry::broadcasted`]) —
//! plus everything squash recovery needs (old rename mappings, predictor
//! snapshots) and everything the LSQ needs (addresses, forwarding sources).

use super::rename::PReg;
use nda_isa::{Fault, Inst, Reg};
use nda_predict::RasSnapshot;
use std::collections::VecDeque;

/// One in-flight micro-op.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global sequence number (monotonic across squashes).
    pub seq: u64,
    /// Instruction index in the program text.
    pub pc: usize,
    /// The decoded micro-op.
    pub inst: Inst,

    /// Architectural destination, if any.
    pub arch_rd: Option<Reg>,
    /// Allocated physical destination.
    pub prd: Option<PReg>,
    /// Previous mapping of `arch_rd` (freed at commit, restored on squash).
    pub old_prd: Option<PReg>,
    /// Positional source physical registers (see `Inst::operands`).
    pub src_pregs: [Option<PReg>; 2],

    /// Cycle the entry entered the ROB.
    pub dispatch_cycle: u64,
    /// `true` once issued to a functional unit.
    pub issued: bool,
    /// Cycle of issue (meaningful once `issued`).
    pub issue_cycle: u64,
    /// Cycle execution will complete (set at issue).
    pub done_cycle: Option<u64>,
    /// The paper's `exec` bit: execution finished, result written back.
    pub completed: bool,
    /// Cycle at which `completed` was set.
    pub complete_cycle: u64,
    /// The paper's `bcast` bit: destination tag broadcast, dependents woken.
    pub broadcasted: bool,
    /// Result value (written to the PRF at completion).
    pub result: u64,

    /// Inverted `unsafe` bit: may this entry broadcast under the active
    /// policy? Recomputed every cycle by the safety walk.
    pub safe: bool,
    /// First cycle the entry was observed safe (for the Fig 9e extra-delay
    /// knob).
    pub safe_since: Option<u64>,

    /// Branch bookkeeping: resolved at execution.
    pub branch_resolved: bool,
    /// Next PC predicted at fetch.
    pub pred_next: usize,
    /// Next PC computed at execution.
    pub actual_next: usize,
    /// Predicted direction (conditional branches).
    pub pred_taken: bool,
    /// Actual direction (conditional branches).
    pub actual_taken: bool,
    /// GHR snapshot taken just before this branch predicted.
    pub ghr_before: u64,
    /// RAS snapshot taken just after this branch's own push/pop at fetch.
    pub ras_after: Option<RasSnapshot>,
    /// Set at resolution if `pred_next != actual_next`.
    pub mispredicted: bool,

    /// Effective address (loads/stores/flushes), set at execution.
    pub mem_addr: Option<u64>,
    /// Access width in bytes.
    pub mem_size: u64,
    /// Store data value, set at execution.
    pub store_data: Option<u64>,
    /// Sequence number of the store this load forwarded from.
    pub forwarded_from: Option<u64>,
    /// Load executed past >= 1 older store with unresolved address
    /// (speculative store bypass happened; Bypass Restriction keys on it).
    pub bypassed_unresolved: bool,
    /// Architectural fault to deliver when this entry reaches commit.
    pub fault: Option<Fault>,

    /// InvisiSpec: load executed as an invisible probe (no cache fill).
    pub is_probe: bool,
    /// InvisiSpec: exposure/validation completes at this cycle.
    pub exposure_done: Option<u64>,

    /// Hierarchy level that serviced this entry's data access (set at
    /// issue for loads/probes; used by the CPI-stack classifier).
    pub mem_level: Option<nda_mem::Level>,

    /// STT taint bit of this entry's destination: the value is (derived
    /// from) a speculatively-loaded datum. Mirrors the PRF taint bit of
    /// `prd`; recomputed every cycle by the taint walk while a
    /// [`TaintPolicy`](crate::policy::TaintPolicy) is active.
    pub tainted: bool,
    /// Trace bookkeeping: a `TaintGated` event has been emitted for this
    /// entry (emit once per instance, on the first withheld issue).
    pub taint_gate_traced: bool,

    /// Wake-up cache: all source registers have been observed visible.
    /// Visibility is monotone while the consumer is in flight (a source
    /// physical register cannot be recycled before every in-flight reader
    /// has committed or squashed), so once set the per-cycle
    /// `srcs_visible` re-derivation is skipped for entries that are only
    /// waiting on ports, fences or serialisation.
    pub srcs_visible_cached: bool,
}

impl RobEntry {
    /// A freshly-dispatched entry.
    pub fn new(seq: u64, pc: usize, inst: Inst, cycle: u64) -> RobEntry {
        RobEntry {
            seq,
            pc,
            inst,
            arch_rd: None,
            prd: None,
            old_prd: None,
            src_pregs: [None, None],
            dispatch_cycle: cycle,
            issued: false,
            issue_cycle: 0,
            done_cycle: None,
            completed: false,
            complete_cycle: 0,
            broadcasted: false,
            result: 0,
            safe: false,
            safe_since: None,
            branch_resolved: false,
            pred_next: pc + 1,
            actual_next: pc + 1,
            pred_taken: false,
            actual_taken: false,
            ghr_before: 0,
            ras_after: None,
            mispredicted: false,
            mem_addr: None,
            mem_size: 0,
            store_data: None,
            forwarded_from: None,
            bypassed_unresolved: false,
            fault: None,
            is_probe: false,
            exposure_done: None,
            mem_level: None,
            tainted: false,
            taint_gate_traced: false,
            srcs_visible_cached: false,
        }
    }

    /// `true` for an in-flight branch whose outcome is still unknown — the
    /// strict/permissive unsafe border (paper §5.1).
    pub fn is_unresolved_branch(&self) -> bool {
        self.inst.is_branch() && !self.branch_resolved
    }

    /// `true` for an in-flight store whose address is still unknown — the
    /// Bypass Restriction border (paper §5.2).
    pub fn is_unresolved_store(&self) -> bool {
        self.inst.is_store() && self.mem_addr.is_none()
    }
}

/// The reorder buffer: a bounded FIFO of [`RobEntry`]s addressed by
/// sequence number.
#[derive(Debug, Clone, Default)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// An empty ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Entries in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when dispatch must stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Append a dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if full or if `seq` is not contiguous.
    pub fn push(&mut self, e: RobEntry) {
        assert!(!self.is_full(), "rob overflow");
        if let Some(back) = self.entries.back() {
            assert_eq!(back.seq + 1, e.seq, "non-contiguous rob sequence");
        }
        self.entries.push_back(e);
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Entry by sequence number.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        let front = self.entries.front()?.seq;
        self.entries.get(seq.checked_sub(front)? as usize)
    }

    /// Mutable entry by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let front = self.entries.front()?.seq;
        self.entries.get_mut(seq.checked_sub(front)? as usize)
    }

    /// Pop the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Pop the youngest entry if `seq >= min_squash` (squash unwinding,
    /// tail first so rename recovery is LIFO).
    pub fn pop_tail_from(&mut self, min_squash: u64) -> Option<RobEntry> {
        if self.entries.back().map(|e| e.seq >= min_squash) == Some(true) {
            self.entries.pop_back()
        } else {
            None
        }
    }

    /// Iterate oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Iterate mutably oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Inst;

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, seq as usize, Inst::Nop, 0)
    }

    #[test]
    fn push_get_pop() {
        let mut r = Rob::new(4);
        r.push(entry(10));
        r.push(entry(11));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(11).unwrap().seq, 11);
        assert!(r.get(9).is_none());
        assert!(r.get(12).is_none());
        assert_eq!(r.pop_head().unwrap().seq, 10);
        assert_eq!(r.get(11).unwrap().seq, 11);
    }

    #[test]
    fn squash_unwinds_tail_first() {
        let mut r = Rob::new(8);
        for s in 0..5 {
            r.push(entry(s));
        }
        let mut squashed = Vec::new();
        while let Some(e) = r.pop_tail_from(3) {
            squashed.push(e.seq);
        }
        assert_eq!(squashed, vec![4, 3]);
        assert_eq!(r.len(), 3);
        // Squash-from-zero empties the ROB (fault delivery).
        while r.pop_tail_from(0).is_some() {}
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "rob overflow")]
    fn overflow_panics() {
        let mut r = Rob::new(1);
        r.push(entry(0));
        r.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn non_contiguous_seq_panics() {
        let mut r = Rob::new(4);
        r.push(entry(0));
        r.push(entry(2));
    }

    #[test]
    fn unresolved_markers() {
        let mut e = RobEntry::new(0, 0, Inst::Jmp { target: 0 }, 0);
        assert!(e.is_unresolved_branch());
        e.branch_resolved = true;
        assert!(!e.is_unresolved_branch());

        let mut s = RobEntry::new(
            1,
            1,
            Inst::Store {
                src: Reg::X2,
                base: Reg::X3,
                off: 0,
                size: nda_isa::MemSize::B8,
            },
            0,
        );
        assert!(s.is_unresolved_store());
        s.mem_addr = Some(0x100);
        assert!(!s.is_unresolved_store());
    }
}
