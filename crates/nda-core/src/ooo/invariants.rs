//! End-of-cycle conservation-law checker for the out-of-order core.
//!
//! When [`SimConfig::check_invariants`](crate::SimConfig::check_invariants)
//! is set, [`check`] runs after every simulated cycle and validates the
//! micro-architectural bookkeeping the rest of the model silently relies
//! on:
//!
//! * **Physical-register conservation** — the free list, the committed
//!   architectural map and the in-flight ROB destinations partition the
//!   PRF exactly: every physical register accounted for exactly once.
//! * **ROB order** — sequence numbers are contiguous and every in-flight
//!   source physical register is live (never on the free list).
//! * **LSQ order** — the load and store queues are exactly the program-
//!   ordered projections of the ROB's loads and stores.
//! * **IQ consistency** — the issue queue holds exactly the dispatched-
//!   but-unissued, not-yet-complete entries.
//! * **NDA safety** — a broadcast destination implies the producer
//!   completed, was safe under the active policy, and its register is
//!   visible; and visibility always implies readiness (no consumer can
//!   observe an unwritten value — the paper's central guarantee).
//!
//! Violations are reported as structured [`InvariantViolation`] values
//! (surfaced as [`SimError::InvariantViolation`](crate::SimError)), never
//! as panics: the differential harness wants a diagnosable error, not an
//! abort.

use super::core::OooCore;
use crate::snapshot::PipelineSnapshot;
use nda_isa::inst::UopClass;
use std::fmt;

/// Which conservation law broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvariantKind {
    /// Free list + committed map + in-flight destinations do not partition
    /// the physical register file.
    PregConservation,
    /// ROB sequence numbers are not contiguous, or an in-flight source
    /// register is on the free list.
    RobOrder,
    /// Load/store queue is not the program-ordered projection of the ROB.
    LsqOrder,
    /// Issue queue disagrees with the ROB's issued/completed bits.
    IqConsistency,
    /// The NDA broadcast discipline was violated (an unsafe or incomplete
    /// instruction made its value visible).
    NdaSafety,
    /// The commit stream diverged from the reference interpreter
    /// (wrong-path instruction retired, or a committed value is wrong).
    CommitDivergence,
    /// The STT/ShadowBinding taint discipline was violated: a transmitting
    /// micro-op issued while its transmit operand was tainted, taint
    /// survived an empty ROB, or taint state exists with no taint policy.
    TaintGate,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::PregConservation => "physical-register conservation",
            InvariantKind::RobOrder => "rob order",
            InvariantKind::LsqOrder => "lsq order",
            InvariantKind::IqConsistency => "issue-queue consistency",
            InvariantKind::NdaSafety => "nda safety",
            InvariantKind::CommitDivergence => "commit divergence",
            InvariantKind::TaintGate => "taint gate",
        };
        f.write_str(s)
    }
}

/// A broken invariant, with enough context to debug it: which law, a
/// human-readable detail string naming the offending registers/entries,
/// and the full pipeline snapshot at the failing cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Cycle at which the violation was detected.
    pub cycle: u64,
    /// Which conservation law broke.
    pub kind: InvariantKind,
    /// What exactly is inconsistent (registers, sequence numbers, values).
    pub detail: String,
    /// Pipeline state at the failing cycle.
    pub snapshot: PipelineSnapshot,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {}: {}\n{}",
            self.cycle, self.kind, self.detail, self.snapshot
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Validate every invariant; on the first failure, capture a snapshot and
/// return the structured violation.
pub(crate) fn check(core: &mut OooCore) -> Result<(), Box<InvariantViolation>> {
    if let Some((kind, detail)) = find_violation(core) {
        return Err(Box::new(InvariantViolation {
            cycle: core.cycle(),
            kind,
            detail,
            snapshot: core.snapshot(),
        }));
    }
    Ok(())
}

/// The pure part of the checker: scan the core and name the first broken
/// law, if any.
fn find_violation(core: &OooCore) -> Option<(InvariantKind, String)> {
    check_preg_conservation(core)
        .or_else(|| check_rob_order(core))
        .or_else(|| check_lsq_order(core))
        .or_else(|| check_iq_consistency(core))
        .or_else(|| check_nda_safety(core))
        .or_else(|| check_taint_gate(core))
}

/// Free list ∪ committed architectural map ∪ in-flight ROB destinations
/// must cover `0..prf.len()` with every register appearing exactly once.
fn check_preg_conservation(core: &OooCore) -> Option<(InvariantKind, String)> {
    let n = core.prf.len();
    // 0 = unseen; otherwise a tag for the first owner seen.
    let mut owner: Vec<&'static str> = vec![""; n];
    let mut claim = |p: usize, who: &'static str| -> Option<String> {
        if p >= n {
            return Some(format!("{who} references p{p} outside the {n}-entry prf"));
        }
        if owner[p].is_empty() {
            owner[p] = who;
            None
        } else {
            Some(format!("p{p} owned by both {} and {who}", owner[p]))
        }
    };
    for p in core.free.iter() {
        if let Some(d) = claim(p as usize, "free list") {
            return Some((InvariantKind::PregConservation, d));
        }
    }
    for r in nda_isa::Reg::all() {
        if let Some(d) = claim(core.committed_preg(r) as usize, "committed map") {
            return Some((
                InvariantKind::PregConservation,
                format!("{d} (committed mapping of {r:?})"),
            ));
        }
    }
    for e in core.rob.iter() {
        if let Some(prd) = e.prd {
            if let Some(d) = claim(prd as usize, "in-flight rob destination") {
                return Some((
                    InvariantKind::PregConservation,
                    format!("{d} (seq {} pc {} `{}`)", e.seq, e.pc, e.inst),
                ));
            }
        }
    }
    if let Some(p) = owner.iter().position(|o| o.is_empty()) {
        return Some((
            InvariantKind::PregConservation,
            format!(
                "p{p} leaked: not free, not architecturally mapped, not an \
                 in-flight destination ({} free, {} in flight)",
                core.free.available(),
                core.rob.len()
            ),
        ));
    }
    None
}

/// ROB entries age-ordered with contiguous sequence numbers, and every
/// in-flight source physical register live (not on the free list).
fn check_rob_order(core: &OooCore) -> Option<(InvariantKind, String)> {
    let free: std::collections::HashSet<_> = core.free.iter().collect();
    let mut prev: Option<u64> = None;
    for e in core.rob.iter() {
        if let Some(p) = prev {
            if e.seq != p + 1 {
                return Some((
                    InvariantKind::RobOrder,
                    format!("seq {} follows seq {p} (non-contiguous rob)", e.seq),
                ));
            }
        }
        prev = Some(e.seq);
        for src in e.src_pregs.iter().flatten() {
            if free.contains(src) {
                return Some((
                    InvariantKind::RobOrder,
                    format!(
                        "seq {} pc {} `{}` reads p{src}, which is on the free list",
                        e.seq, e.pc, e.inst
                    ),
                ));
            }
        }
    }
    None
}

/// `lq`/`sq` must be exactly the ascending sequence numbers of the ROB's
/// loads/stores.
fn check_lsq_order(core: &OooCore) -> Option<(InvariantKind, String)> {
    let want_lq: Vec<u64> = core
        .rob
        .iter()
        .filter(|e| matches!(e.inst.class(), UopClass::Load | UopClass::LoadLike))
        .map(|e| e.seq)
        .collect();
    if core.lq != want_lq {
        return Some((
            InvariantKind::LsqOrder,
            format!("lq {:?} but rob loads are {:?}", core.lq, want_lq),
        ));
    }
    let want_sq: Vec<u64> = core
        .rob
        .iter()
        .filter(|e| e.inst.class() == UopClass::Store)
        .map(|e| e.seq)
        .collect();
    if core.sq != want_sq {
        return Some((
            InvariantKind::LsqOrder,
            format!("sq {:?} but rob stores are {:?}", core.sq, want_sq),
        ));
    }
    None
}

/// The issue queue holds exactly the dispatched-but-unissued, incomplete
/// entries, in age order.
fn check_iq_consistency(core: &OooCore) -> Option<(InvariantKind, String)> {
    let want: Vec<u64> = core
        .rob
        .iter()
        .filter(|e| !e.issued && !e.completed)
        .map(|e| e.seq)
        .collect();
    if core.iq != want {
        return Some((
            InvariantKind::IqConsistency,
            format!("iq {:?} but unissued rob entries are {:?}", core.iq, want),
        ));
    }
    None
}

/// The paper's central guarantee: a value becomes visible only through a
/// broadcast of a completed, policy-safe producer — and visibility implies
/// readiness (never observe an unwritten register).
fn check_nda_safety(core: &OooCore) -> Option<(InvariantKind, String)> {
    for e in core.rob.iter() {
        let Some(prd) = e.prd else { continue };
        if e.broadcasted {
            if !e.completed {
                return Some((
                    InvariantKind::NdaSafety,
                    format!(
                        "seq {} pc {} `{}` broadcast before completing",
                        e.seq, e.pc, e.inst
                    ),
                ));
            }
            if !e.safe {
                return Some((
                    InvariantKind::NdaSafety,
                    format!(
                        "seq {} pc {} `{}` broadcast while unsafe under the active policy",
                        e.seq, e.pc, e.inst
                    ),
                ));
            }
            if !core.prf.is_visible(prd) {
                return Some((
                    InvariantKind::NdaSafety,
                    format!(
                        "seq {} pc {} `{}` marked broadcast but p{prd} is not visible",
                        e.seq, e.pc, e.inst
                    ),
                ));
            }
        } else if core.prf.is_visible(prd) {
            return Some((
                InvariantKind::NdaSafety,
                format!(
                    "p{prd} (seq {} pc {} `{}`) visible without a broadcast — \
                     the NDA gap is breached",
                    e.seq, e.pc, e.inst
                ),
            ));
        }
    }
    for p in 0..core.prf.len() as super::rename::PReg {
        if core.prf.is_visible(p) && !core.prf.is_ready(p) {
            return Some((
                InvariantKind::NdaSafety,
                format!("p{p} visible but never written back"),
            ));
        }
    }
    None
}

/// The STT/ShadowBinding guarantee: transmitting micro-ops never issue on
/// tainted transmit operands (taint is monotone non-increasing for a live
/// register, so an issued in-flight transmitter with a *currently* tainted
/// transmit source can only mean the gate was bypassed); taint drains with
/// the ROB; and no taint state exists unless a taint policy is active.
fn check_taint_gate(core: &OooCore) -> Option<(InvariantKind, String)> {
    let pregs = 0..core.prf.len() as super::rename::PReg;
    if core.cfg.taint.is_none() {
        if let Some(p) = pregs.clone().find(|&p| core.prf.is_tainted(p)) {
            return Some((
                InvariantKind::TaintGate,
                format!("p{p} tainted with no taint policy active"),
            ));
        }
        if let Some(e) = core.rob.iter().find(|e| e.tainted) {
            return Some((
                InvariantKind::TaintGate,
                format!(
                    "seq {} pc {} `{}` marked tainted with no taint policy active",
                    e.seq, e.pc, e.inst
                ),
            ));
        }
        return None;
    }
    if core.rob.is_empty() {
        if let Some(p) = pregs.clone().find(|&p| core.prf.is_tainted(p)) {
            return Some((
                InvariantKind::TaintGate,
                format!("p{p} still tainted with an empty rob (untaint failed to drain)"),
            ));
        }
        return None;
    }
    for e in core.rob.iter() {
        if !e.issued {
            continue;
        }
        let Some(slot) = OooCore::transmit_slot(&e.inst) else {
            continue;
        };
        if let Some(p) = e.src_pregs[slot] {
            if core.prf.is_tainted(p) {
                return Some((
                    InvariantKind::TaintGate,
                    format!(
                        "seq {} pc {} `{}` issued with tainted transmit operand p{p}",
                        e.seq, e.pc, e.inst
                    ),
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use nda_isa::{Asm, Reg};

    fn checked_cfg() -> SimConfig {
        let mut cfg = SimConfig::ooo();
        cfg.check_invariants = true;
        cfg
    }

    #[test]
    fn clean_run_passes_every_cycle() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 5);
        for _ in 0..8 {
            asm.alu(nda_isa::AluOp::Add, Reg::X2, Reg::X2, Reg::X2);
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let r = crate::run_with_config(checked_cfg(), &p, 100_000).unwrap();
        assert!(r.halted);
        assert_eq!(r.regs[2], 5 << 8);
    }

    #[test]
    fn injected_free_list_leak_is_caught_as_conservation_violation() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 1);
        for _ in 0..32 {
            asm.alu(nda_isa::AluOp::Add, Reg::X3, Reg::X2, Reg::X2);
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut core = crate::OooCore::new(checked_cfg(), &p);
        let mut leaked = false;
        let err = core
            .run_hooked(100_000, |c| {
                if !leaked && c.cycle() == 3 {
                    c.debug_inject_free_list_leak();
                    leaked = true;
                }
            })
            .unwrap_err();
        match err {
            crate::SimError::InvariantViolation(v) => {
                assert_eq!(v.kind, InvariantKind::PregConservation);
                assert!(v.detail.contains("leaked"), "detail: {}", v.detail);
            }
            other => panic!("expected InvariantViolation, got {other}"),
        }
    }

    #[test]
    fn violation_display_names_kind_and_cycle() {
        let snapshot = crate::PipelineSnapshot {
            cycle: 17,
            last_commit_cycle: 12,
            rob_occupancy: 1,
            rob_capacity: 192,
            head: None,
            iq_ready: 0,
            iq_waiting: 0,
            lq_occupancy: 0,
            sq_occupancy: 0,
            free_pregs: 200,
            fetch_queued: 0,
            mshrs_outstanding: 0,
            stats: nda_stats::SimStats::new(),
        };
        let v = InvariantViolation {
            cycle: 17,
            kind: InvariantKind::NdaSafety,
            detail: "p9 visible without a broadcast".into(),
            snapshot,
        };
        let s = v.to_string();
        assert!(s.contains("cycle 17"));
        assert!(s.contains("nda safety"));
        assert!(s.contains("p9"));
    }
}
