//! Register renaming: physical register file, free list and map table.
//!
//! The PRF separates **ready** (the value has been written back) from
//! **visible** (the producing instruction broadcast its tag). NDA's entire
//! mechanism is the gap between the two: an unsafe instruction writes back
//! (`ready`) but does not broadcast (`visible`), so consumers — which issue
//! only on visibility — cannot observe the value (paper §5.1, Fig 2).

use nda_isa::reg::NUM_REGS;
use nda_isa::Reg;
use std::collections::VecDeque;

/// Physical register index.
pub type PReg = u16;

/// The physical register file with per-register ready/visible bits.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    vals: Vec<u64>,
    ready: Vec<bool>,
    visible: Vec<bool>,
    taint: Vec<bool>,
}

impl PhysRegFile {
    /// `n` physical registers; the first [`NUM_REGS`] hold the initial
    /// architectural values (zero) and start ready+visible.
    pub fn new(n: usize) -> PhysRegFile {
        assert!(
            n > NUM_REGS,
            "need more physical than architectural registers"
        );
        let mut f = PhysRegFile {
            vals: vec![0; n],
            ready: vec![false; n],
            visible: vec![false; n],
            taint: vec![false; n],
        };
        for i in 0..NUM_REGS {
            f.ready[i] = true;
            f.visible[i] = true;
        }
        f
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` if the file is empty (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Value of `p` (meaningful only once ready).
    pub fn value(&self, p: PReg) -> u64 {
        self.vals[p as usize]
    }

    /// Write back a value (sets ready, not visible).
    pub fn write(&mut self, p: PReg, v: u64) {
        self.vals[p as usize] = v;
        self.ready[p as usize] = true;
    }

    /// `true` once the producer has written back.
    pub fn is_ready(&self, p: PReg) -> bool {
        self.ready[p as usize]
    }

    /// `true` once the producer has broadcast its tag — the only state
    /// consumers may issue on.
    pub fn is_visible(&self, p: PReg) -> bool {
        self.visible[p as usize]
    }

    /// Broadcast: make `p` visible to consumers.
    ///
    /// # Panics
    ///
    /// Debug-panics if the value was never written (broadcast before
    /// writeback would leak an undefined value).
    pub fn broadcast(&mut self, p: PReg) {
        debug_assert!(self.ready[p as usize], "broadcast of unwritten p{p}");
        self.visible[p as usize] = true;
    }

    /// Recycle a register for a new allocation: clears ready+visible+taint.
    pub fn reset(&mut self, p: PReg) {
        self.ready[p as usize] = false;
        self.visible[p as usize] = false;
        self.taint[p as usize] = false;
    }

    /// Force ready+visible (used when un-renaming on a squash: the previous
    /// mapping was architecturally committed, hence visible by definition).
    /// Committed values are also untainted by definition.
    pub fn force_visible(&mut self, p: PReg) {
        self.ready[p as usize] = true;
        self.visible[p as usize] = true;
        self.taint[p as usize] = false;
    }

    /// STT taint bit of `p` (speculatively accessed, possibly secret).
    pub fn is_tainted(&self, p: PReg) -> bool {
        self.taint[p as usize]
    }

    /// Set or clear the taint bit of `p`.
    pub fn set_taint(&mut self, p: PReg, t: bool) {
        self.taint[p as usize] = t;
    }

    /// `true` if any physical register is currently tainted (the drain
    /// check for the untaint-at-resolution property).
    pub fn any_tainted(&self) -> bool {
        self.taint.iter().any(|&t| t)
    }
}

/// FIFO free list of physical registers.
#[derive(Debug, Clone)]
pub struct FreeList {
    free: VecDeque<PReg>,
    capacity: usize,
}

impl FreeList {
    /// All registers in `NUM_REGS..n` start free.
    pub fn new(n: usize) -> FreeList {
        FreeList {
            free: (NUM_REGS as PReg..n as PReg).collect(),
            capacity: n - NUM_REGS,
        }
    }

    /// Pop a free register, if any.
    pub fn alloc(&mut self) -> Option<PReg> {
        self.free.pop_front()
    }

    /// Return a register to the pool.
    ///
    /// # Panics
    ///
    /// Debug-panics on double-free (the free list can never exceed its
    /// capacity — the conservation invariant the property tests check).
    pub fn release(&mut self, p: PReg) {
        debug_assert!(!self.free.contains(&p), "double free of p{p}");
        self.free.push_back(p);
        debug_assert!(self.free.len() <= self.capacity, "free list overflow");
    }

    /// Registers currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Iterate over the free registers (front-to-back, allocation order).
    pub fn iter(&self) -> impl Iterator<Item = PReg> + '_ {
        self.free.iter().copied()
    }

    /// Total registers managed (free + in flight).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The speculative architectural→physical map table.
#[derive(Debug, Clone)]
pub struct RenameTable {
    map: [PReg; NUM_REGS],
}

impl RenameTable {
    /// Identity mapping: `xN -> pN`.
    pub fn new() -> RenameTable {
        let mut map = [0; NUM_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PReg;
        }
        RenameTable { map }
    }

    /// Current physical register of `r`.
    pub fn lookup(&self, r: Reg) -> PReg {
        self.map[r.index()]
    }

    /// Repoint `r` at `p`, returning the previous mapping (stored in the
    /// ROB entry for squash recovery and freed at commit).
    pub fn rename(&mut self, r: Reg, p: PReg) -> PReg {
        std::mem::replace(&mut self.map[r.index()], p)
    }

    /// Undo a rename during a tail-first ROB walk.
    pub fn restore(&mut self, r: Reg, old: PReg) {
        self.map[r.index()] = old;
    }
}

impl Default for RenameTable {
    fn default() -> RenameTable {
        RenameTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_ready_visible_lifecycle() {
        let mut f = PhysRegFile::new(64);
        assert!(
            f.is_ready(3) && f.is_visible(3),
            "initial arch regs are visible"
        );
        assert!(!f.is_ready(40));
        f.write(40, 7);
        assert!(f.is_ready(40));
        assert!(
            !f.is_visible(40),
            "write-back must not imply visibility (the NDA gap)"
        );
        f.broadcast(40);
        assert!(f.is_visible(40));
        assert_eq!(f.value(40), 7);
        f.reset(40);
        assert!(!f.is_ready(40) && !f.is_visible(40));
    }

    #[test]
    fn taint_lifecycle() {
        let mut f = PhysRegFile::new(64);
        assert!(!f.is_tainted(40) && !f.any_tainted());
        f.write(40, 7);
        f.set_taint(40, true);
        assert!(f.is_tainted(40) && f.any_tainted());
        f.set_taint(40, false);
        assert!(!f.any_tainted());
        // reset and force_visible both clear taint.
        f.set_taint(40, true);
        f.reset(40);
        assert!(!f.is_tainted(40));
        f.set_taint(41, true);
        f.force_visible(41);
        assert!(!f.is_tainted(41));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "broadcast of unwritten")]
    fn broadcast_before_write_panics() {
        let mut f = PhysRegFile::new(64);
        f.broadcast(50);
    }

    #[test]
    fn freelist_conservation() {
        let mut fl = FreeList::new(64);
        assert_eq!(fl.available(), 32);
        let a = fl.alloc().unwrap();
        let b = fl.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(fl.available(), 30);
        fl.release(a);
        fl.release(b);
        assert_eq!(fl.available(), 32);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fl = FreeList::new(40);
        let a = fl.alloc().unwrap();
        fl.release(a);
        fl.release(a);
    }

    #[test]
    fn rename_table_roundtrip() {
        let mut t = RenameTable::new();
        assert_eq!(t.lookup(Reg::X5), 5);
        let old = t.rename(Reg::X5, 99);
        assert_eq!(old, 5);
        assert_eq!(t.lookup(Reg::X5), 99);
        t.restore(Reg::X5, old);
        assert_eq!(t.lookup(Reg::X5), 5);
    }
}
