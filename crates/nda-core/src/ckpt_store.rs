//! Persistent, content-addressed checkpoint store.
//!
//! Collecting a [`CheckpointSet`](crate::CheckpointSet) is the dominant
//! cost of a repeated sampled sweep: the master functional pass executes
//! the whole workload even though the detailed windows touch a few percent
//! of it. The checkpoints themselves are pure functions of (program bytes,
//! sampling schedule, memory-hierarchy geometry, predictor configuration)
//! — nothing host-dependent enters them — so they can be cached across
//! processes. This module stores each [`CheckpointSet`]
//! **exactly** (bit-for-bit, via the `*State` snapshot structs of
//! `nda-isa`/`nda-mem`/`nda-predict`) in a file keyed by an FNV-1a hash of
//! that input tuple.
//!
//! ## On-disk format
//!
//! One entry per file, `<key:016x>.ckpt` under the store directory:
//!
//! ```text
//! nda-ckpt-v1 <checksum:016x>\n       ASCII header line
//! <key material, length-prefixed>     the exact bytes that were hashed
//! <page pool>                         each distinct 4 KiB page, once
//! <CheckpointSet encoding>            fixed little-endian layout
//! ```
//!
//! The checksum is FNV-1a over everything after the header line. The key
//! material is stored *and verified byte-for-byte* on load, so a hash
//! collision degrades to a cache miss instead of resurrecting the wrong
//! workload's checkpoints. Geometry mismatches cannot hit either — the
//! geometry is part of the key — and as defence in depth every `from_state`
//! reconstruction validates shapes against the live configuration.
//!
//! Consecutive checkpoints share almost all of their memory image (the
//! interpreter's pages are `Arc` copy-on-write; an interval dirties a
//! handful), so pages are stored through a content-deduplicated pool:
//! each distinct page appears once, and every interpreter snapshot
//! references pool slots. This keeps the entry close to the size of one
//! memory image rather than one per checkpoint, and the decoder hands all
//! snapshots `Arc`s into a shared pool, restoring the in-memory sharing
//! too.
//!
//! ## Durability
//!
//! Writes are atomic: encode to `.tmp.<pid>.<key>`, `sync_all`, then
//! `rename` over the final name. Concurrent writers of the same key race
//! benignly (both produce identical bytes; the last rename wins), and
//! readers never observe a torn file. A corrupt or truncated entry —
//! failed checksum, bad header, short body, shape mismatch — is moved into
//! a `quarantine/` subdirectory and treated as a miss, so one bad file
//! costs one regeneration, never a crash or a wrong result. Pinned by
//! `crates/nda-core/tests/ckpt_store.rs`.
//!
//! ## Size cap
//!
//! Checkpoint entries are large (one memory image each) and previously
//! accumulated without bound across sweeps. A store opened with
//! [`CheckpointStore::with_max_bytes`] (the CLI wires `NDA_CKPT_MAX_BYTES`
//! / `--checkpoint-gc` through to it) garbage-collects after every save:
//! oldest-mtime entries are evicted until the total size of `*.ckpt`
//! files is back under the cap. Eviction only ever deletes cache entries
//! — a future run regenerates them — and never touches `quarantine/`.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::codec::{fnv1a64, gc_dir, Dec, Enc, GcStats};
use crate::config::SimConfig;
use crate::run::SimError;
use crate::sampled::{collect_checkpoints, Checkpoint, CheckpointSet, SampledParams};
use nda_isa::{encode_program, Interp, InterpState, MsrFile, Program, SparseMem, PAGE_SIZE};
use nda_mem::{CacheState, LineState, MemHier, MemHierState, MlpState, MshrState};
use nda_predict::ras::RAS_ENTRIES;
use nda_predict::{
    Btb, BtbEntryState, BtbState, DirPredictor, DirPredictorState, GshareState, PredictorKind, Ras,
    RasState, TournamentState,
};

const MAGIC: &str = "nda-ckpt-v1";
const NUM_REGS: usize = nda_isa::reg::NUM_REGS;

/// A content-deduplicated pool of memory pages shared by every
/// interpreter snapshot in one entry. Keys borrow the page bytes (the
/// dumps stay alive for the whole encode), so equal-content pages unify
/// regardless of their `Arc` sharing structure — the encoding is a pure
/// function of the set's contents.
#[derive(Default)]
struct PagePool<'a> {
    pages: Vec<&'a [u8; PAGE_SIZE]>,
    index: HashMap<&'a [u8; PAGE_SIZE], u64>,
}

impl<'a> PagePool<'a> {
    fn intern(&mut self, page: &'a [u8; PAGE_SIZE]) -> u64 {
        *self.index.entry(page).or_insert_with(|| {
            self.pages.push(page);
            self.pages.len() as u64 - 1
        })
    }
}

type PageDump = Vec<(u64, Arc<[u8; PAGE_SIZE]>)>;

fn enc_interp(e: &mut Enc, s: &InterpState, pages: &[(u64, u64)]) {
    for r in s.regs {
        e.u64(r);
    }
    e.usize(s.pc);
    e.u64(s.retired);
    e.u64(s.faults);
    e.bool(s.halted);
    e.usize(pages.len());
    for &(idx, slot) in pages {
        e.u64(idx);
        e.u64(slot);
    }
    let (values, user_ok) = s.msrs.dump();
    e.usize(values.len());
    for (idx, v) in values {
        e.u64(idx as u64);
        e.u64(v);
    }
    e.usize(user_ok.len());
    for idx in user_ok {
        e.u64(idx as u64);
    }
}

fn dec_interp(d: &mut Dec, pool: &[Arc<[u8; PAGE_SIZE]>]) -> Option<InterpState> {
    let mut regs = [0u64; NUM_REGS];
    for r in &mut regs {
        *r = d.u64()?;
    }
    let pc = d.usize()?;
    let retired = d.u64()?;
    let faults = d.u64()?;
    let halted = d.bool()?;
    let n_pages = d.usize()?;
    let mut pages = Vec::with_capacity(n_pages.min(1 << 20));
    for _ in 0..n_pages {
        let idx = d.u64()?;
        let slot = usize::try_from(d.u64()?).ok()?;
        pages.push((idx, Arc::clone(pool.get(slot)?)));
    }
    let n_vals = d.usize()?;
    let mut values = Vec::with_capacity(n_vals.min(1 << 16));
    for _ in 0..n_vals {
        let idx = u16::try_from(d.u64()?).ok()?;
        values.push((idx, d.u64()?));
    }
    let n_ok = d.usize()?;
    let mut user_ok = Vec::with_capacity(n_ok.min(1 << 16));
    for _ in 0..n_ok {
        user_ok.push(u16::try_from(d.u64()?).ok()?);
    }
    Some(InterpState {
        regs,
        pc,
        retired,
        faults,
        halted,
        mem: SparseMem::from_pages(pages),
        msrs: MsrFile::from_parts(&values, &user_ok),
    })
}

fn enc_cache(e: &mut Enc, s: &CacheState) {
    e.usize(s.lines.len());
    for line in &s.lines {
        e.u64(line.tag);
        e.bool(line.valid);
        e.u64(line.last_use);
    }
    e.u64(s.tick);
    e.u64(s.stats.hits);
    e.u64(s.stats.misses);
}

fn dec_cache(d: &mut Dec) -> Option<CacheState> {
    let n = d.usize()?;
    let mut lines = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        lines.push(LineState {
            tag: d.u64()?,
            valid: d.bool()?,
            last_use: d.u64()?,
        });
    }
    let tick = d.u64()?;
    let stats = nda_mem::CacheStats {
        hits: d.u64()?,
        misses: d.u64()?,
    };
    Some(CacheState { lines, tick, stats })
}

fn enc_pairs(e: &mut Enc, pairs: &[(u64, u64)]) {
    e.usize(pairs.len());
    for &(a, b) in pairs {
        e.u64(a);
        e.u64(b);
    }
}

fn dec_pairs(d: &mut Dec) -> Option<Vec<(u64, u64)>> {
    let n = d.usize()?;
    let mut pairs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        pairs.push((d.u64()?, d.u64()?));
    }
    Some(pairs)
}

fn enc_hier(e: &mut Enc, s: &MemHierState) {
    enc_cache(e, &s.l1i);
    enc_cache(e, &s.l1d);
    enc_cache(e, &s.l2);
    enc_pairs(e, &s.mshr.in_flight);
    e.usize(s.mshr.peak);
    e.u64(s.mshr.allocations);
    e.u64(s.mshr.merges);
    e.u64(s.mlp.miss_cycles);
    e.u64(s.mlp.busy_cycles);
    e.u64(s.mlp.frontier);
    e.u64(s.mlp.misses);
    e.u64(s.dram_accesses);
    e.u64(s.prefetches);
    enc_pairs(e, &s.pending_fills);
    e.u64(s.extra_latency);
}

fn dec_hier(d: &mut Dec) -> Option<MemHierState> {
    Some(MemHierState {
        l1i: dec_cache(d)?,
        l1d: dec_cache(d)?,
        l2: dec_cache(d)?,
        mshr: MshrState {
            in_flight: dec_pairs(d)?,
            peak: d.usize()?,
            allocations: d.u64()?,
            merges: d.u64()?,
        },
        mlp: MlpState {
            miss_cycles: d.u64()?,
            busy_cycles: d.u64()?,
            frontier: d.u64()?,
            misses: d.u64()?,
        },
        dram_accesses: d.u64()?,
        prefetches: d.u64()?,
        pending_fills: dec_pairs(d)?,
        extra_latency: d.u64()?,
    })
}

fn enc_gshare(e: &mut Enc, s: &GshareState) {
    e.bytes(&s.table);
    e.u64(s.ghr);
    e.u64(s.predictions);
    e.u64(s.correct);
}

fn dec_gshare(d: &mut Dec) -> Option<GshareState> {
    Some(GshareState {
        table: d.bytes()?.to_vec(),
        ghr: d.u64()?,
        predictions: d.u64()?,
        correct: d.u64()?,
    })
}

fn enc_dir(e: &mut Enc, s: &DirPredictorState) {
    match s {
        DirPredictorState::Gshare(g) => {
            e.u8(0);
            enc_gshare(e, g);
        }
        DirPredictorState::Bimodal(table) => {
            e.u8(1);
            e.bytes(table);
        }
        DirPredictorState::Tournament(t) => {
            e.u8(2);
            enc_gshare(e, &t.gshare);
            e.bytes(&t.bimodal);
            e.bytes(&t.chooser);
        }
    }
}

fn dec_dir(d: &mut Dec) -> Option<DirPredictorState> {
    match d.u8()? {
        0 => Some(DirPredictorState::Gshare(dec_gshare(d)?)),
        1 => Some(DirPredictorState::Bimodal(d.bytes()?.to_vec())),
        2 => Some(DirPredictorState::Tournament(TournamentState {
            gshare: dec_gshare(d)?,
            bimodal: d.bytes()?.to_vec(),
            chooser: d.bytes()?.to_vec(),
        })),
        _ => None,
    }
}

fn enc_btb(e: &mut Enc, s: &BtbState) {
    e.usize(s.entries.len());
    for entry in &s.entries {
        e.u64(entry.tag);
        e.usize(entry.target);
        e.bool(entry.valid);
    }
    e.u64(s.lookups);
    e.u64(s.hits);
}

fn dec_btb(d: &mut Dec) -> Option<BtbState> {
    let n = d.usize()?;
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        entries.push(BtbEntryState {
            tag: d.u64()?,
            target: d.usize()?,
            valid: d.bool()?,
        });
    }
    Some(BtbState {
        entries,
        lookups: d.u64()?,
        hits: d.u64()?,
    })
}

fn enc_ras(e: &mut Enc, s: &RasState) {
    for v in s.stack {
        e.usize(v);
    }
    e.usize(s.top);
    e.usize(s.depth);
}

fn dec_ras(d: &mut Dec) -> Option<RasState> {
    let mut stack = [0usize; RAS_ENTRIES];
    for v in &mut stack {
        *v = d.usize()?;
    }
    Some(RasState {
        stack,
        top: d.usize()?,
        depth: d.usize()?,
    })
}

fn encode_set(set: &CheckpointSet) -> Vec<u8> {
    // Snapshot every interpreter once, then intern all pages into the
    // pool before emitting anything — the pool is written first.
    let states: Vec<InterpState> = set
        .checkpoints
        .iter()
        .map(|c| c.interp.dump_state())
        .chain(std::iter::once(set.final_interp.dump_state()))
        .collect();
    let dumps: Vec<PageDump> = states.iter().map(|s| s.mem.dump_pages()).collect();
    let mut pool = PagePool::default();
    let refs: Vec<Vec<(u64, u64)>> = dumps
        .iter()
        .map(|dump| {
            dump.iter()
                .map(|(idx, page)| (*idx, pool.intern(page)))
                .collect()
        })
        .collect();

    let mut e = Enc::default();
    e.usize(pool.pages.len());
    for page in &pool.pages {
        e.buf.extend_from_slice(&page[..]);
    }
    e.usize(set.checkpoints.len());
    for (k, ckpt) in set.checkpoints.iter().enumerate() {
        enc_interp(&mut e, &states[k], &refs[k]);
        enc_hier(&mut e, &ckpt.hier.dump_state());
        enc_dir(&mut e, &ckpt.dir.dump_state());
        enc_btb(&mut e, &ckpt.btb.dump_state());
        enc_ras(&mut e, &ckpt.ras.dump_state());
        e.u64(ckpt.ff_insts);
    }
    let last = states.len() - 1;
    enc_interp(&mut e, &states[last], &refs[last]);
    e.u64(set.total_insts);
    e.buf
}

/// Decode an entry body. `None` on any truncation, shape mismatch against
/// the live configuration, or trailing garbage — all quarantine cases.
fn decode_set(d: &mut Dec, cfg: &SimConfig, program: &Program) -> Option<CheckpointSet> {
    let n_pool = d.usize()?;
    let mut pool: Vec<Arc<[u8; PAGE_SIZE]>> = Vec::with_capacity(n_pool.min(1 << 20));
    for _ in 0..n_pool {
        let bytes: [u8; PAGE_SIZE] = d.take(PAGE_SIZE)?.try_into().ok()?;
        pool.push(Arc::new(bytes));
    }
    let n = d.usize()?;
    let mut checkpoints = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let interp = Interp::from_state(program, dec_interp(d, &pool)?);
        let hier = MemHier::from_state(cfg.mem, &dec_hier(d)?)?;
        let dir = DirPredictor::from_state(cfg.core.predictor_kind, cfg.core.gshare, &dec_dir(d)?)?;
        let btb = Btb::from_state(cfg.core.btb, &dec_btb(d)?)?;
        let ras = Ras::from_state(&dec_ras(d)?)?;
        let ff_insts = d.u64()?;
        checkpoints.push(Checkpoint {
            interp,
            hier,
            dir,
            btb,
            ras,
            ff_insts,
        });
    }
    let final_interp = Interp::from_state(program, dec_interp(d, &pool)?);
    let total_insts = d.u64()?;
    if !d.done() {
        return None;
    }
    Some(CheckpointSet {
        checkpoints,
        final_interp,
        total_insts,
    })
}

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

/// The content-addressed identity of one checkpoint collection: the exact
/// bytes of everything that determines the resulting [`CheckpointSet`],
/// plus their FNV-1a hash (the filename). Two runs that would collect
/// identical checkpoints produce equal keys; any change to the workload,
/// the sampling schedule, the cache geometry or the predictor
/// configuration changes the key and misses cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    hash: u64,
    material: Vec<u8>,
}

impl StoreKey {
    /// Build the key for a (config, program, schedule) triple.
    pub fn new(cfg: &SimConfig, program: &Program, params: SampledParams) -> StoreKey {
        let mut e = Enc::default();
        e.bytes(MAGIC.as_bytes());
        e.bytes(&encode_program(program));
        // Sampling schedule — every field shifts the checkpoint positions
        // or count.
        e.u64(params.sample_every);
        e.u64(params.warm_insts);
        e.u64(params.detail_insts);
        e.usize(params.max_windows);
        e.u64(params.budget_per_phase);
        // Memory-hierarchy geometry: warming writes tags/LRU into this
        // shape. Latencies are included too — cheaper than proving the
        // warming stream never observes them.
        for c in [cfg.mem.l1i, cfg.mem.l1d, cfg.mem.l2] {
            e.u64(c.size_bytes);
            e.u64(c.line_bytes);
            e.usize(c.ways);
            e.u64(c.latency);
        }
        e.u64(cfg.mem.dram_latency);
        e.usize(cfg.mem.mshrs);
        e.bool(cfg.mem.next_line_prefetch);
        // Predictor configuration: trained state lives in these tables.
        e.u8(match cfg.core.predictor_kind {
            PredictorKind::Gshare => 0,
            PredictorKind::Bimodal => 1,
            PredictorKind::Tournament => 2,
        });
        e.usize(cfg.core.gshare.entries);
        e.u64(cfg.core.gshare.history_bits as u64);
        e.usize(cfg.core.btb.entries);
        e.bool(cfg.core.btb.speculative_update);
        let hash = fnv1a64(&e.buf);
        StoreKey {
            hash,
            material: e.buf,
        }
    }

    /// The 64-bit content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The entry filename, `<hash:016x>.ckpt`.
    pub fn filename(&self) -> String {
        format!("{:016x}.ckpt", self.hash)
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// A directory of cached [`CheckpointSet`]s. See the
/// [module documentation](self).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

impl CheckpointStore {
    /// Open (creating if necessary) a store rooted at `dir`, uncapped.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            max_bytes: None,
        })
    }

    /// Set (or clear) the size cap. A capped store garbage-collects after
    /// every save; see [module docs](self).
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> CheckpointStore {
        self.max_bytes = max_bytes;
        self
    }

    /// The configured size cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Evict oldest-mtime entries until the store's `*.ckpt` bytes are at
    /// or under `max_bytes`. Callable explicitly (`--checkpoint-gc`);
    /// capped stores also run it after every save.
    ///
    /// # Errors
    ///
    /// Propagates a directory-scan failure; individual file races are
    /// skipped.
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcStats> {
        gc_dir(&self.dir, "ckpt", max_bytes)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key` (whether or not it exists).
    pub fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(key.filename())
    }

    /// Move a bad entry into `quarantine/` (best-effort: if even that
    /// fails, fall back to removing it so it cannot poison every
    /// subsequent run).
    fn quarantine(&self, path: &Path) {
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir).is_ok()
            && path
                .file_name()
                .is_some_and(|name| fs::rename(path, qdir.join(name)).is_ok());
        if !moved {
            let _ = fs::remove_file(path);
        }
    }

    /// Load the entry for `key`, reconstructing against `cfg`/`program`
    /// (which must be the ones the key was built from). Returns `None` on
    /// a clean miss; corrupt entries are quarantined and also report a
    /// miss.
    pub fn load(
        &self,
        key: &StoreKey,
        cfg: &SimConfig,
        program: &Program,
    ) -> Option<CheckpointSet> {
        let path = self.entry_path(key);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(_) => return None, // clean miss (or unreadable — nothing to quarantine)
        };
        match Self::parse(&data, key, cfg, program) {
            Ok(set) => set,
            Err(()) => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// `Ok(Some)` = valid entry for this key; `Ok(None)` = valid entry for
    /// a *different* key (hash collision — a miss, but not corruption);
    /// `Err(())` = corrupt, quarantine.
    fn parse(
        data: &[u8],
        key: &StoreKey,
        cfg: &SimConfig,
        program: &Program,
    ) -> Result<Option<CheckpointSet>, ()> {
        // Header line: "nda-ckpt-v1 <checksum:016x>\n".
        let nl = data.iter().position(|&b| b == b'\n').ok_or(())?;
        let header = std::str::from_utf8(&data[..nl]).map_err(|_| ())?;
        let checksum_hex = header.strip_prefix(MAGIC).ok_or(())?.trim();
        let checksum = u64::from_str_radix(checksum_hex, 16).map_err(|_| ())?;
        let body = &data[nl + 1..];
        if fnv1a64(body) != checksum {
            return Err(());
        }
        let mut d = Dec::new(body);
        let material = d.bytes().ok_or(())?;
        if material != key.material.as_slice() {
            // Checksummed OK but keyed differently: an FNV collision, not
            // corruption. Leave the other key's entry alone.
            return Ok(None);
        }
        let set = decode_set(&mut d, cfg, program).ok_or(())?;
        Ok(Some(set))
    }

    /// Write the entry for `key` atomically (tmp + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers on the hot path treat a
    /// failed save as "cache disabled", never as a simulation failure.
    pub fn save(&self, key: &StoreKey, set: &CheckpointSet) -> std::io::Result<PathBuf> {
        let mut e = Enc::default();
        e.bytes(&key.material);
        e.buf.extend_from_slice(&encode_set(set));
        let body = e.buf;
        let mut data = format!("{MAGIC} {:016x}\n", fnv1a64(&body)).into_bytes();
        data.extend_from_slice(&body);

        let final_path = self.entry_path(key);
        let tmp = self
            .dir
            .join(format!(".tmp.{}.{}", std::process::id(), key.filename()));
        fs::write(&tmp, &data)?;
        let f = fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        match fs::rename(&tmp, &final_path) {
            Ok(()) => {
                if let Some(cap) = self.max_bytes {
                    // Best-effort: a failed GC pass never fails the save.
                    let _ = self.gc(cap);
                }
                Ok(final_path)
            }
            Err(err) => {
                let _ = fs::remove_file(&tmp);
                Err(err)
            }
        }
    }
}

/// [`collect_checkpoints`] through an optional store: a warm hit skips the
/// master functional pass entirely; a miss collects and populates the
/// store (best-effort — an unwritable store degrades to uncached
/// collection, never to an error).
///
/// Returns the set and whether it was a warm hit. A stored set is only
/// valid when its functional pass fits the caller's budget — the set
/// records a *completed* run, so it is reusable for any
/// `max_insts >= retired + faults`; smaller budgets fall through to a
/// fresh collection, which reports [`SimError::CycleLimit`] exactly as the
/// uncached path would.
///
/// # Errors
///
/// See [`collect_checkpoints`].
pub fn collect_checkpoints_cached(
    store: Option<&CheckpointStore>,
    cfg: &SimConfig,
    program: &Program,
    params: SampledParams,
    max_insts: u64,
) -> Result<(CheckpointSet, bool), SimError> {
    let Some(store) = store else {
        return Ok((collect_checkpoints(cfg, program, params, max_insts)?, false));
    };
    let key = StoreKey::new(cfg, program, params);
    if let Some(set) = store.load(&key, cfg, program) {
        let executed = set.final_interp.retired() + set.final_interp.faults();
        if executed <= max_insts {
            return Ok((set, true));
        }
    }
    let set = collect_checkpoints(cfg, program, params, max_insts)?;
    let _ = store.save(&key, &set);
    Ok((set, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::{Asm, Reg};

    fn store_program() -> Program {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 300).li(Reg::X5, 0x2_0000);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.st8(Reg::X2, Reg::X5, 0);
        asm.ld8(Reg::X4, Reg::X5, 0);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let p = store_program();
        let cfg = SimConfig::ooo();
        let params = SampledParams::new(100, 20, 20);
        let set = collect_checkpoints(&cfg, &p, params, u64::MAX).unwrap();
        assert!(!set.checkpoints.is_empty());
        let bytes = encode_set(&set);
        let mut d = Dec::new(&bytes);
        let back = decode_set(&mut d, &cfg, &p).expect("decodes");
        assert_eq!(set, back);
    }

    #[test]
    fn store_round_trip_hits_warm() {
        let dir = std::env::temp_dir().join(format!("nda-ckpt-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let p = store_program();
        let cfg = SimConfig::ooo();
        let params = SampledParams::new(100, 20, 20);

        let (cold, hit) =
            collect_checkpoints_cached(Some(&store), &cfg, &p, params, u64::MAX).unwrap();
        assert!(!hit);
        let (warm, hit) =
            collect_checkpoints_cached(Some(&store), &cfg, &p, params, u64::MAX).unwrap();
        assert!(hit);
        assert_eq!(cold, warm);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_workload_schedule_and_geometry() {
        let p = store_program();
        let cfg = SimConfig::ooo();
        let params = SampledParams::new(100, 20, 20);
        let base = StoreKey::new(&cfg, &p, params);

        let mut asm = Asm::new();
        asm.li(Reg::X2, 1).halt();
        let other = asm.assemble().unwrap();
        assert_ne!(base, StoreKey::new(&cfg, &other, params));

        let mut p2 = params;
        p2.sample_every = 200;
        assert_ne!(base, StoreKey::new(&cfg, &p, p2));

        let mut cfg2 = cfg;
        cfg2.mem.l1d.size_bytes *= 2;
        assert_ne!(base, StoreKey::new(&cfg2, &p, params));

        let mut cfg3 = cfg;
        cfg3.core.gshare.entries *= 2;
        assert_ne!(base, StoreKey::new(&cfg3, &p, params));
    }
}
