//! NDA data-propagation policies (paper §5, Table 2).

use std::fmt;

/// Which micro-ops become *unsafe* when dispatched after an unresolved
/// branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Propagation {
    /// Baseline out-of-order: nothing is restricted.
    Off,
    /// Permissive propagation (§5.2): only loads and load-like micro-ops
    /// younger than an unresolved branch are unsafe. Arithmetic and control
    /// micro-ops are unconditionally safe at dispatch — only loads can
    /// introduce *new* secrets into the pipeline.
    Permissive,
    /// Strict propagation (§5.1): every micro-op younger than an unresolved
    /// branch is unsafe, which additionally hinders transmitting secrets
    /// already resident in general-purpose registers.
    Strict,
}

/// The InvisiSpec comparison models (§6.1, rows 7-8 of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsVariant {
    /// InvisiSpec-Spectre: a speculative load may expose (fill the cache and
    /// validate) once all older branches have resolved.
    Spectre,
    /// InvisiSpec-Future: a speculative load exposes only at the head of
    /// the ROB, covering chosen-code attacks too.
    Future,
}

/// A complete NDA policy: the Table 2 rows are presets of this struct.
///
/// * `propagation` — the branch-border rule (strict/permissive/off).
/// * `bypass_restriction` — §5.2's Bypass Restriction: a load is unsafe
///   while any older store's address is unresolved (defeats Spectre v4 /
///   speculative store bypass without disabling the bypass itself).
/// * `load_restriction` — §5.3: a load may wake dependents only when it is
///   the eldest unretired instruction (defeats Meltdown-class chosen-code
///   attacks and MDS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdaPolicy {
    /// Branch-border propagation rule.
    pub propagation: Propagation,
    /// Mark loads unsafe while an older store address is unresolved.
    pub bypass_restriction: bool,
    /// Loads wake dependents only at the head of the ROB.
    pub load_restriction: bool,
}

impl NdaPolicy {
    /// Row 0 (baseline): unconstrained, insecure out-of-order execution.
    pub fn ooo() -> NdaPolicy {
        NdaPolicy {
            propagation: Propagation::Off,
            bypass_restriction: false,
            load_restriction: false,
        }
    }

    /// Table 2 row 1: permissive propagation.
    pub fn permissive() -> NdaPolicy {
        NdaPolicy {
            propagation: Propagation::Permissive,
            ..NdaPolicy::ooo()
        }
    }

    /// Table 2 row 2: permissive propagation + bypass restriction.
    pub fn permissive_br() -> NdaPolicy {
        NdaPolicy {
            bypass_restriction: true,
            ..NdaPolicy::permissive()
        }
    }

    /// Table 2 row 3: strict propagation.
    pub fn strict() -> NdaPolicy {
        NdaPolicy {
            propagation: Propagation::Strict,
            ..NdaPolicy::ooo()
        }
    }

    /// Table 2 row 4: strict propagation + bypass restriction.
    pub fn strict_br() -> NdaPolicy {
        NdaPolicy {
            bypass_restriction: true,
            ..NdaPolicy::strict()
        }
    }

    /// Table 2 row 5: load restriction only.
    pub fn restricted_loads() -> NdaPolicy {
        NdaPolicy {
            load_restriction: true,
            ..NdaPolicy::ooo()
        }
    }

    /// Table 2 row 6: full protection = strict + BR + load restriction.
    pub fn full_protection() -> NdaPolicy {
        NdaPolicy {
            load_restriction: true,
            ..NdaPolicy::strict_br()
        }
    }

    /// `true` if this policy restricts anything at all.
    pub fn is_restrictive(&self) -> bool {
        self.propagation != Propagation::Off || self.bypass_restriction || self.load_restriction
    }
}

impl Default for NdaPolicy {
    fn default() -> NdaPolicy {
        NdaPolicy::ooo()
    }
}

impl fmt::Display for NdaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match self.propagation {
            Propagation::Off => "off",
            Propagation::Permissive => "permissive",
            Propagation::Strict => "strict",
        };
        write!(f, "{base}")?;
        if self.bypass_restriction {
            write!(f, "+br")?;
        }
        if self.load_restriction {
            write!(f, "+loadrestrict")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        assert_eq!(NdaPolicy::ooo().propagation, Propagation::Off);
        assert!(!NdaPolicy::ooo().is_restrictive());
        assert_eq!(NdaPolicy::permissive().propagation, Propagation::Permissive);
        assert!(!NdaPolicy::permissive().bypass_restriction);
        assert!(NdaPolicy::permissive_br().bypass_restriction);
        assert_eq!(NdaPolicy::strict_br().propagation, Propagation::Strict);
        assert!(NdaPolicy::restricted_loads().load_restriction);
        assert_eq!(NdaPolicy::restricted_loads().propagation, Propagation::Off);
        let full = NdaPolicy::full_protection();
        assert!(full.load_restriction && full.bypass_restriction);
        assert_eq!(full.propagation, Propagation::Strict);
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(NdaPolicy::ooo().to_string(), "off");
        assert_eq!(
            NdaPolicy::full_protection().to_string(),
            "strict+br+loadrestrict"
        );
    }
}
