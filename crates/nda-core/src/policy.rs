//! NDA data-propagation policies (paper §5, Table 2).

use std::fmt;

/// Which micro-ops become *unsafe* when dispatched after an unresolved
/// branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Propagation {
    /// Baseline out-of-order: nothing is restricted.
    Off,
    /// Permissive propagation (§5.2): only loads and load-like micro-ops
    /// younger than an unresolved branch are unsafe. Arithmetic and control
    /// micro-ops are unconditionally safe at dispatch — only loads can
    /// introduce *new* secrets into the pipeline.
    Permissive,
    /// Strict propagation (§5.1): every micro-op younger than an unresolved
    /// branch is unsafe, which additionally hinders transmitting secrets
    /// already resident in general-purpose registers.
    Strict,
}

/// The InvisiSpec comparison models (§6.1, rows 7-8 of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsVariant {
    /// InvisiSpec-Spectre: a speculative load may expose (fill the cache and
    /// validate) once all older branches have resolved.
    Spectre,
    /// InvisiSpec-Future: a speculative load exposes only at the head of
    /// the ROB, covering chosen-code attacks too.
    Future,
}

/// A complete NDA policy: the Table 2 rows are presets of this struct.
///
/// * `propagation` — the branch-border rule (strict/permissive/off).
/// * `bypass_restriction` — §5.2's Bypass Restriction: a load is unsafe
///   while any older store's address is unresolved (defeats Spectre v4 /
///   speculative store bypass without disabling the bypass itself).
/// * `load_restriction` — §5.3: a load may wake dependents only when it is
///   the eldest unretired instruction (defeats Meltdown-class chosen-code
///   attacks and MDS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdaPolicy {
    /// Branch-border propagation rule.
    pub propagation: Propagation,
    /// Mark loads unsafe while an older store address is unresolved.
    pub bypass_restriction: bool,
    /// Loads wake dependents only at the head of the ROB.
    pub load_restriction: bool,
}

impl NdaPolicy {
    /// Row 0 (baseline): unconstrained, insecure out-of-order execution.
    pub fn ooo() -> NdaPolicy {
        NdaPolicy {
            propagation: Propagation::Off,
            bypass_restriction: false,
            load_restriction: false,
        }
    }

    /// Table 2 row 1: permissive propagation.
    pub fn permissive() -> NdaPolicy {
        NdaPolicy {
            propagation: Propagation::Permissive,
            ..NdaPolicy::ooo()
        }
    }

    /// Table 2 row 2: permissive propagation + bypass restriction.
    pub fn permissive_br() -> NdaPolicy {
        NdaPolicy {
            bypass_restriction: true,
            ..NdaPolicy::permissive()
        }
    }

    /// Table 2 row 3: strict propagation.
    pub fn strict() -> NdaPolicy {
        NdaPolicy {
            propagation: Propagation::Strict,
            ..NdaPolicy::ooo()
        }
    }

    /// Table 2 row 4: strict propagation + bypass restriction.
    pub fn strict_br() -> NdaPolicy {
        NdaPolicy {
            bypass_restriction: true,
            ..NdaPolicy::strict()
        }
    }

    /// Table 2 row 5: load restriction only.
    pub fn restricted_loads() -> NdaPolicy {
        NdaPolicy {
            load_restriction: true,
            ..NdaPolicy::ooo()
        }
    }

    /// Table 2 row 6: full protection = strict + BR + load restriction.
    pub fn full_protection() -> NdaPolicy {
        NdaPolicy {
            load_restriction: true,
            ..NdaPolicy::strict_br()
        }
    }

    /// `true` if this policy restricts anything at all.
    pub fn is_restrictive(&self) -> bool {
        self.propagation != Propagation::Off || self.bypass_restriction || self.load_restriction
    }
}

impl Default for NdaPolicy {
    fn default() -> NdaPolicy {
        NdaPolicy::ooo()
    }
}

/// STT-style threat model: which loads produce *tainted* (speculatively
/// accessed, possibly secret) data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaintThreat {
    /// Spectre model: a load's result is tainted while an older branch is
    /// unresolved (control speculation only).
    Spectre,
    /// Futuristic model: a load's result is tainted until the load becomes
    /// non-speculative for *any* reason — it reaches the head of the ROB.
    /// Covers chosen-code (Meltdown/MDS) and memory-order speculation too.
    Futuristic,
}

/// When taint bits are cleared once the guarding speculation resolves —
/// the eager/lazy *shadow-binding* realizations of STT's untaint logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UntaintTiming {
    /// STT's wakeup-integrated untaint: taint *set* is immediate, but an
    /// untaint ripples through dependents one wakeup level per cycle,
    /// reusing the existing broadcast/wakeup bandwidth.
    Propagated,
    /// ShadowBinding-eager: the full dependence tree untaints in the same
    /// cycle its youngest guarding branch resolves (flash recompute;
    /// models the dedicated shadow-tracking matrix).
    Eager,
    /// ShadowBinding-lazy: taint is only reconsidered when the guarding
    /// branch *commits*, trading untaint latency for cheaper hardware.
    Lazy,
}

/// A complete taint-tracking (STT / ShadowBinding) policy: delay only
/// *transmitting* uses of tainted data instead of delaying all wakeups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaintPolicy {
    /// Which loads produce tainted data.
    pub threat: TaintThreat,
    /// When resolved speculation clears taint.
    pub untaint: UntaintTiming,
}

impl TaintPolicy {
    /// STT under the Spectre threat model.
    pub fn stt_spectre() -> TaintPolicy {
        TaintPolicy {
            threat: TaintThreat::Spectre,
            untaint: UntaintTiming::Propagated,
        }
    }

    /// STT under the futuristic (all-speculation) threat model.
    pub fn stt_futuristic() -> TaintPolicy {
        TaintPolicy {
            threat: TaintThreat::Futuristic,
            untaint: UntaintTiming::Propagated,
        }
    }

    /// ShadowBinding's eager untaint realization (Spectre model).
    pub fn shadow_binding_eager() -> TaintPolicy {
        TaintPolicy {
            threat: TaintThreat::Spectre,
            untaint: UntaintTiming::Eager,
        }
    }

    /// ShadowBinding's lazy untaint realization (Spectre model).
    pub fn shadow_binding_lazy() -> TaintPolicy {
        TaintPolicy {
            threat: TaintThreat::Spectre,
            untaint: UntaintTiming::Lazy,
        }
    }
}

impl fmt::Display for TaintPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let threat = match self.threat {
            TaintThreat::Spectre => "spectre",
            TaintThreat::Futuristic => "futuristic",
        };
        let untaint = match self.untaint {
            UntaintTiming::Propagated => "propagated",
            UntaintTiming::Eager => "eager",
            UntaintTiming::Lazy => "lazy",
        };
        write!(f, "taint:{threat}+{untaint}")
    }
}

impl fmt::Display for NdaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match self.propagation {
            Propagation::Off => "off",
            Propagation::Permissive => "permissive",
            Propagation::Strict => "strict",
        };
        write!(f, "{base}")?;
        if self.bypass_restriction {
            write!(f, "+br")?;
        }
        if self.load_restriction {
            write!(f, "+loadrestrict")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        assert_eq!(NdaPolicy::ooo().propagation, Propagation::Off);
        assert!(!NdaPolicy::ooo().is_restrictive());
        assert_eq!(NdaPolicy::permissive().propagation, Propagation::Permissive);
        assert!(!NdaPolicy::permissive().bypass_restriction);
        assert!(NdaPolicy::permissive_br().bypass_restriction);
        assert_eq!(NdaPolicy::strict_br().propagation, Propagation::Strict);
        assert!(NdaPolicy::restricted_loads().load_restriction);
        assert_eq!(NdaPolicy::restricted_loads().propagation, Propagation::Off);
        let full = NdaPolicy::full_protection();
        assert!(full.load_restriction && full.bypass_restriction);
        assert_eq!(full.propagation, Propagation::Strict);
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(NdaPolicy::ooo().to_string(), "off");
        assert_eq!(
            NdaPolicy::full_protection().to_string(),
            "strict+br+loadrestrict"
        );
    }

    #[test]
    fn taint_presets_match_their_papers() {
        assert_eq!(TaintPolicy::stt_spectre().threat, TaintThreat::Spectre);
        assert_eq!(
            TaintPolicy::stt_spectre().untaint,
            UntaintTiming::Propagated
        );
        assert_eq!(
            TaintPolicy::stt_futuristic().threat,
            TaintThreat::Futuristic
        );
        assert_eq!(
            TaintPolicy::shadow_binding_eager().untaint,
            UntaintTiming::Eager
        );
        assert_eq!(
            TaintPolicy::shadow_binding_lazy().untaint,
            UntaintTiming::Lazy
        );
        // Both ShadowBinding realizations keep STT's Spectre threat model.
        assert_eq!(
            TaintPolicy::shadow_binding_lazy().threat,
            TaintThreat::Spectre
        );
        assert_eq!(
            TaintPolicy::stt_futuristic().to_string(),
            "taint:futuristic+propagated"
        );
    }
}
