//! Pipeline diagnostics attached to abnormal terminations.
//!
//! When the forward-progress watchdog trips (no commit for a whole window),
//! when the cycle budget runs out, or when the invariant checker finds a
//! broken conservation law, the simulator captures a [`PipelineSnapshot`]:
//! what the head of the ROB is waiting on, how full every queue is, and the
//! Fig 9a stall-reason histogram. The goal is that a hung run is debuggable
//! from the error message alone, without rerunning under a tracer.

use nda_stats::SimStats;
use std::fmt;

/// Why the oldest in-flight instruction has not retired yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadWait {
    /// Dispatched but not issued: an operand is not yet visible, a fence or
    /// serialising micro-op is in the way, or a structural port is busy.
    WaitingToIssue,
    /// Issued; execution has not completed (e.g. an outstanding miss).
    Executing,
    /// Completed InvisiSpec probe awaiting its exposure/validation access.
    AwaitingExposure,
    /// Completed store stalled on its commit-time cache access (MSHRs
    /// exhausted).
    AwaitingStoreCommit,
    /// Completed with a recorded architectural fault; fault delivery is the
    /// next commit action.
    FaultPending,
    /// Ready to retire: if the pipeline is stalled in this state, commit
    /// itself is blocked (this should never persist).
    ReadyToRetire,
}

impl fmt::Display for HeadWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HeadWait::WaitingToIssue => "waiting to issue",
            HeadWait::Executing => "executing",
            HeadWait::AwaitingExposure => "awaiting InvisiSpec exposure",
            HeadWait::AwaitingStoreCommit => "awaiting store commit (MSHRs)",
            HeadWait::FaultPending => "fault delivery pending",
            HeadWait::ReadyToRetire => "ready to retire",
        };
        f.write_str(s)
    }
}

/// The instruction at the head of the ROB and what it is waiting on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadInfo {
    /// Global sequence number.
    pub seq: u64,
    /// Instruction index in the program text.
    pub pc: usize,
    /// Disassembly of the instruction.
    pub disasm: String,
    /// What retirement is blocked on.
    pub wait: HeadWait,
}

/// A point-in-time diagnostic view of the out-of-order pipeline.
///
/// Built by `OooCore::snapshot` and carried by
/// [`SimError::Stalled`](crate::SimError::Stalled),
/// [`SimError::CycleLimit`](crate::SimError::CycleLimit) and every
/// [`InvariantViolation`](crate::ooo::invariants::InvariantViolation).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSnapshot {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Cycle of the most recent successful commit (0 if none yet).
    pub last_commit_cycle: u64,
    /// In-flight ROB entries.
    pub rob_occupancy: usize,
    /// Configured ROB capacity.
    pub rob_capacity: usize,
    /// The oldest in-flight instruction, if any.
    pub head: Option<HeadInfo>,
    /// Issue-queue entries whose sources are all visible (ready to issue).
    pub iq_ready: usize,
    /// Issue-queue entries still waiting on an operand.
    pub iq_waiting: usize,
    /// Load-queue occupancy.
    pub lq_occupancy: usize,
    /// Store-queue occupancy.
    pub sq_occupancy: usize,
    /// Free physical registers.
    pub free_pregs: usize,
    /// Micro-ops buffered in the fetch→dispatch pipe.
    pub fetch_queued: usize,
    /// Data-side MSHRs still outstanding.
    pub mshrs_outstanding: usize,
    /// Counter block at snapshot time (includes the Fig 9a stall-reason
    /// histogram).
    pub stats: SimStats,
}

impl fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline @ cycle {} (last commit @ {}):",
            self.cycle, self.last_commit_cycle
        )?;
        match &self.head {
            Some(h) => writeln!(
                f,
                "  rob head: seq {} pc {} `{}` — {}",
                h.seq, h.pc, h.disasm, h.wait
            )?,
            None => writeln!(f, "  rob head: <empty>")?,
        }
        writeln!(
            f,
            "  rob {}/{}, iq {} ready + {} waiting, lq {}, sq {}, free pregs {}, \
             fetch queue {}, mshrs outstanding {}",
            self.rob_occupancy,
            self.rob_capacity,
            self.iq_ready,
            self.iq_waiting,
            self.lq_occupancy,
            self.sq_occupancy,
            self.free_pregs,
            self.fetch_queued,
            self.mshrs_outstanding,
        )?;
        write!(f, "  cycle histogram:")?;
        for (name, count) in self.stats.stall_histogram() {
            write!(f, " {name}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: 1234,
            last_commit_cycle: 1000,
            rob_occupancy: 3,
            rob_capacity: 192,
            head: Some(HeadInfo {
                seq: 41,
                pc: 7,
                disasm: "ld8 x4, [x2+0]".into(),
                wait: HeadWait::Executing,
            }),
            iq_ready: 1,
            iq_waiting: 2,
            lq_occupancy: 1,
            sq_occupancy: 0,
            free_pregs: 220,
            fetch_queued: 4,
            mshrs_outstanding: 1,
            stats: SimStats::new(),
        }
    }

    #[test]
    fn display_names_the_head_and_its_wait_reason() {
        let text = sample().to_string();
        assert!(text.contains("seq 41"));
        assert!(text.contains("pc 7"));
        assert!(text.contains("executing"));
        assert!(text.contains("mshrs outstanding 1"));
        assert!(text.contains("frontend-stall="));
    }

    #[test]
    fn display_handles_empty_rob() {
        let mut s = sample();
        s.head = None;
        assert!(s.to_string().contains("<empty>"));
    }

    #[test]
    fn wait_reasons_have_distinct_names() {
        let all = [
            HeadWait::WaitingToIssue,
            HeadWait::Executing,
            HeadWait::AwaitingExposure,
            HeadWait::AwaitingStoreCommit,
            HeadWait::FaultPending,
            HeadWait::ReadyToRetire,
        ];
        let mut seen = std::collections::HashSet::new();
        for w in all {
            assert!(seen.insert(w.to_string()));
        }
    }
}
