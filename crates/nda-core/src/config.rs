//! Simulator configuration (paper Table 3) and the ten evaluated variants.

use crate::policy::{IsVariant, NdaPolicy, TaintPolicy};
use nda_mem::MemHierConfig;
use nda_predict::{BtbConfig, GshareConfig, PredictorKind};
use std::fmt;

/// Core micro-architecture parameters.
///
/// Defaults reproduce the paper's Table 3: x86-64-like at 2 GHz, 8-issue,
/// no SMT, 32-entry load queue, 32-entry store queue, 192-entry ROB,
/// 4096-entry BTB, 16-entry RAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: usize,
    /// Instructions entering execution per cycle (Table 3: 8-issue).
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries (Table 3: 192).
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Load-queue entries (Table 3: 32).
    pub lq_entries: usize,
    /// Store-queue entries (Table 3: 32).
    pub sq_entries: usize,
    /// Physical registers.
    pub num_pregs: usize,
    /// Front-end depth: cycles from fetch to dispatch. Together with
    /// issue/execute this makes a branch misprediction cost ~16 cycles,
    /// matching the paper's measured BTB-miss resolution.
    pub fetch_to_dispatch: u64,
    /// Fetch-buffer capacity in micro-ops.
    pub fetch_buffer: usize,
    /// ALU issue bandwidth per cycle.
    pub alu_units: usize,
    /// Load-pipe issue bandwidth per cycle.
    pub load_ports: usize,
    /// Store-pipe issue bandwidth per cycle.
    pub store_ports: usize,
    /// Branch-unit issue bandwidth per cycle.
    pub branch_units: usize,
    /// Tag-broadcast ports per cycle (the paper adds none over baseline;
    /// deferred NDA broadcasts compete for the same ports).
    pub broadcast_ports: usize,
    /// Extra cycles between an instruction becoming safe and its deferred
    /// broadcast (the Fig 9e sensitivity knob).
    pub broadcast_extra_delay: u64,
    /// Store-to-load forwarding latency in cycles.
    pub store_forward_latency: u64,
    /// Model the Meltdown-class implementation flaw: a faulting load
    /// forwards real data to wrong-path dependents before the fault fires.
    pub meltdown_flaw: bool,
    /// Allow loads to speculatively bypass older stores with unresolved
    /// addresses (Spectre v4 surface). Disabling this is the SSBD-style
    /// mitigation NDA's Bypass Restriction improves upon.
    pub speculative_store_bypass: bool,
    /// Model FPU/multiplier power gating: after
    /// [`CoreConfig::fpu_power_down_after`] idle cycles the multiply unit
    /// powers down and the next multiply pays
    /// [`CoreConfig::fpu_wake_penalty`] extra cycles. This is the
    /// NetSpectre covert channel (paper §1, §3) — off by default so the
    /// performance studies match Table 3; the NetSpectre PoC turns it on.
    pub fpu_power_model: bool,
    /// Idle cycles before the multiply unit powers down.
    pub fpu_power_down_after: u64,
    /// Extra latency of a multiply issued to a powered-down unit.
    pub fpu_wake_penalty: u64,
    /// Delay-on-miss (Sakalis et al., paper §7): a speculative load that
    /// would miss the L1 is held until all older branches resolve. Blocks
    /// d-cache-miss covert channels only.
    pub delay_on_miss: bool,
    /// Model the divider as non-pipelined: a division occupies the unit
    /// for its full latency and younger divisions wait. This is the
    /// execution-port contention surface of SMoTherSpectre (paper §1, §3,
    /// Table 1). On by default — real dividers are not pipelined.
    pub nonpipelined_divider: bool,
    /// Branch target buffer geometry/update policy.
    pub btb: BtbConfig,
    /// Direction predictor geometry.
    pub gshare: GshareConfig,
    /// Direction predictor flavour (the predictor-quality ablation swaps
    /// this; NDA's control-steering cost tracks misprediction rate).
    pub predictor_kind: PredictorKind,
}

impl CoreConfig {
    /// The Table 3 configuration.
    pub fn haswell_like() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 60,
            lq_entries: 32,
            sq_entries: 32,
            num_pregs: 256,
            fetch_to_dispatch: 5,
            fetch_buffer: 24,
            alu_units: 4,
            load_ports: 2,
            store_ports: 1,
            branch_units: 2,
            broadcast_ports: 8,
            broadcast_extra_delay: 0,
            store_forward_latency: 4,
            meltdown_flaw: true,
            speculative_store_bypass: true,
            fpu_power_model: false,
            fpu_power_down_after: 256,
            fpu_wake_penalty: 20,
            delay_on_miss: false,
            nonpipelined_divider: true,
            btb: BtbConfig::default(),
            gshare: GshareConfig::default(),
            predictor_kind: PredictorKind::Gshare,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::haswell_like()
    }
}

/// Which timing model executes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreModel {
    /// The out-of-order core (optionally NDA- or InvisiSpec-constrained).
    OutOfOrder,
    /// The blocking in-order baseline.
    InOrder,
}

/// A complete simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemHierConfig,
    /// NDA policy (ignored by the in-order model).
    pub policy: NdaPolicy,
    /// InvisiSpec mode (mutually exclusive with a restrictive NDA policy).
    pub invisispec: Option<IsVariant>,
    /// STT/ShadowBinding taint-tracking mode (mutually exclusive with a
    /// restrictive NDA policy and with InvisiSpec).
    pub taint: Option<TaintPolicy>,
    /// Timing model.
    pub model: CoreModel,
    /// Validate micro-architectural conservation laws (physical-register
    /// partition, ROB/LSQ ordering, NDA safety monotonicity, commit-stream
    /// equivalence against a shadow interpreter) at the end of every cycle.
    /// A failure ends the run with [`SimError`](crate::SimError)`
    /// ::InvariantViolation` instead of silently corrupting results. Off by
    /// default: it adds a per-cycle full-pipeline walk.
    pub check_invariants: bool,
    /// Forward-progress watchdog: if no instruction commits for this many
    /// cycles, abort with [`SimError`](crate::SimError)`::Stalled` and a
    /// pipeline snapshot naming the stuck ROB head. `None` disables the
    /// watchdog. Out-of-order model only.
    pub watchdog_window: Option<u64>,
}

impl SimConfig {
    /// Baseline insecure out-of-order configuration.
    pub fn ooo() -> SimConfig {
        SimConfig {
            core: CoreConfig::haswell_like(),
            mem: MemHierConfig::haswell_like(),
            policy: NdaPolicy::ooo(),
            invisispec: None,
            taint: None,
            model: CoreModel::OutOfOrder,
            check_invariants: false,
            watchdog_window: Some(50_000),
        }
    }

    /// The configuration for one of the ten evaluated [`Variant`]s.
    pub fn for_variant(v: Variant) -> SimConfig {
        let mut cfg = SimConfig::ooo();
        match v {
            Variant::Ooo => {}
            Variant::Permissive => cfg.policy = NdaPolicy::permissive(),
            Variant::PermissiveBr => cfg.policy = NdaPolicy::permissive_br(),
            Variant::Strict => cfg.policy = NdaPolicy::strict(),
            Variant::StrictBr => cfg.policy = NdaPolicy::strict_br(),
            Variant::RestrictedLoads => cfg.policy = NdaPolicy::restricted_loads(),
            Variant::FullProtection => cfg.policy = NdaPolicy::full_protection(),
            Variant::InOrder => cfg.model = CoreModel::InOrder,
            Variant::InvisiSpecSpectre => cfg.invisispec = Some(IsVariant::Spectre),
            Variant::InvisiSpecFuture => cfg.invisispec = Some(IsVariant::Future),
            Variant::DelayOnMiss => cfg.core.delay_on_miss = true,
            Variant::SttSpectre => cfg.taint = Some(TaintPolicy::stt_spectre()),
            Variant::SttFuturistic => cfg.taint = Some(TaintPolicy::stt_futuristic()),
            Variant::ShadowBindingEager => cfg.taint = Some(TaintPolicy::shadow_binding_eager()),
            Variant::ShadowBindingLazy => cfg.taint = Some(TaintPolicy::shadow_binding_lazy()),
        }
        cfg
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::ooo()
    }
}

/// The ten configurations evaluated in Fig 7, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Variant {
    Ooo,
    Permissive,
    PermissiveBr,
    Strict,
    StrictBr,
    RestrictedLoads,
    FullProtection,
    InOrder,
    InvisiSpecSpectre,
    InvisiSpecFuture,
    /// Delay-on-miss (Sakalis et al.): related-work comparison point that
    /// holds speculative L1-missing loads.
    DelayOnMiss,
    /// STT under the Spectre threat model: per-preg taint on speculative
    /// load results, only *transmitting* uses delayed, untaint propagated
    /// through the wakeup network.
    SttSpectre,
    /// STT under the futuristic threat model: loads stay tainted until
    /// they reach the ROB head (covers chosen-code attacks too).
    SttFuturistic,
    /// ShadowBinding with eager (same-cycle flash) untaint.
    ShadowBindingEager,
    /// ShadowBinding with lazy (branch-commit) untaint.
    ShadowBindingLazy,
}

impl Variant {
    /// Every variant: the paper's Fig 7 legend order, plus the
    /// delay-on-miss related-work baseline and the STT/ShadowBinding
    /// taint-tracking family.
    pub fn all() -> [Variant; 15] {
        [
            Variant::Ooo,
            Variant::Permissive,
            Variant::PermissiveBr,
            Variant::Strict,
            Variant::StrictBr,
            Variant::RestrictedLoads,
            Variant::FullProtection,
            Variant::InOrder,
            Variant::InvisiSpecSpectre,
            Variant::InvisiSpecFuture,
            Variant::DelayOnMiss,
            Variant::SttSpectre,
            Variant::SttFuturistic,
            Variant::ShadowBindingEager,
            Variant::ShadowBindingLazy,
        ]
    }

    /// The taint-tracking (STT/ShadowBinding) family.
    pub fn taint_family() -> [Variant; 4] {
        [
            Variant::SttSpectre,
            Variant::SttFuturistic,
            Variant::ShadowBindingEager,
            Variant::ShadowBindingLazy,
        ]
    }

    /// The six NDA policies plus the two baselines (no InvisiSpec).
    pub fn nda_sweep() -> [Variant; 8] {
        [
            Variant::Ooo,
            Variant::Permissive,
            Variant::PermissiveBr,
            Variant::Strict,
            Variant::StrictBr,
            Variant::RestrictedLoads,
            Variant::FullProtection,
            Variant::InOrder,
        ]
    }

    /// Display name matching the Fig 7 legend.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Ooo => "OoO",
            Variant::Permissive => "Permissive",
            Variant::PermissiveBr => "Permissive+BR",
            Variant::Strict => "Strict",
            Variant::StrictBr => "Strict+BR",
            Variant::RestrictedLoads => "Restricted Loads",
            Variant::FullProtection => "Full Protection",
            Variant::InOrder => "In-Order",
            Variant::InvisiSpecSpectre => "InvisiSpec-Spectre",
            Variant::InvisiSpecFuture => "InvisiSpec-Future",
            Variant::DelayOnMiss => "Delay-On-Miss",
            Variant::SttSpectre => "STT-Spectre",
            Variant::SttFuturistic => "STT-Futuristic",
            Variant::ShadowBindingEager => "ShadowBinding-Eager",
            Variant::ShadowBindingLazy => "ShadowBinding-Lazy",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Propagation;

    #[test]
    fn table3_parameters() {
        let c = CoreConfig::haswell_like();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.btb.entries, 4096);
    }

    #[test]
    fn variants_map_to_policies() {
        assert_eq!(
            SimConfig::for_variant(Variant::Strict).policy.propagation,
            Propagation::Strict
        );
        assert_eq!(
            SimConfig::for_variant(Variant::InOrder).model,
            CoreModel::InOrder
        );
        assert_eq!(
            SimConfig::for_variant(Variant::InvisiSpecFuture).invisispec,
            Some(IsVariant::Future)
        );
        assert!(
            SimConfig::for_variant(Variant::FullProtection)
                .policy
                .load_restriction
        );
    }

    #[test]
    fn all_lists_fifteen_unique() {
        let all = Variant::all();
        assert_eq!(all.len(), 15);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        for v in Variant::taint_family() {
            assert!(all.contains(&v));
        }
    }

    #[test]
    fn taint_variants_map_to_taint_policies_and_nothing_else() {
        use crate::policy::{TaintThreat, UntaintTiming};
        for v in Variant::taint_family() {
            let cfg = SimConfig::for_variant(v);
            let tp = cfg.taint.expect("taint family sets a taint policy");
            // Mutually exclusive with NDA restriction and InvisiSpec.
            assert!(!cfg.policy.is_restrictive(), "{v}");
            assert_eq!(cfg.invisispec, None, "{v}");
            assert_eq!(cfg.model, CoreModel::OutOfOrder, "{v}");
            match v {
                Variant::SttSpectre => {
                    assert_eq!(tp.threat, TaintThreat::Spectre);
                    assert_eq!(tp.untaint, UntaintTiming::Propagated);
                }
                Variant::SttFuturistic => {
                    assert_eq!(tp.threat, TaintThreat::Futuristic);
                    assert_eq!(tp.untaint, UntaintTiming::Propagated);
                }
                Variant::ShadowBindingEager => assert_eq!(tp.untaint, UntaintTiming::Eager),
                Variant::ShadowBindingLazy => assert_eq!(tp.untaint, UntaintTiming::Lazy),
                _ => unreachable!(),
            }
        }
        // And no non-taint variant sets one.
        for v in Variant::all() {
            if !Variant::taint_family().contains(&v) {
                assert_eq!(SimConfig::for_variant(v).taint, None, "{v}");
            }
        }
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for v in Variant::all() {
            assert!(!v.name().is_empty());
            assert!(seen.insert(v.name()));
        }
    }
}
