//! Checkpoint round-trip determinism: the sampled-simulation contract is
//! that saving state at a sample point and restoring it later is
//! indistinguishable — bit for bit — from never having stopped.

use nda_core::{
    collect_checkpoints, run_sampled_with, RunResult, SampledParams, SimConfig, Variant,
};
use nda_isa::Program;
use nda_workloads::{by_name, WorkloadParams};

fn workload(iters: u64) -> Program {
    let w = by_name("mcf").expect("mcf kernel present");
    (w.build)(&WorkloadParams { seed: 1234, iters })
}

fn assert_results_bit_identical(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(a.stats, b.stats, "{ctx}: SimStats diverged");
    assert_eq!(a.mem_stats, b.mem_stats, "{ctx}: MemStats diverged");
    assert_eq!(a.regs, b.regs, "{ctx}: registers diverged");
    assert_eq!(a.halted, b.halted, "{ctx}: halt flag diverged");
    let (sa, sb) = (a.sampled, b.sampled);
    assert_eq!(sa.is_some(), sb.is_some(), "{ctx}: sampled presence");
    if let (Some(sa), Some(sb)) = (sa, sb) {
        assert_eq!(sa.cpi, sb.cpi, "{ctx}: sampled CPI diverged");
        assert_eq!(sa.detailed_insts, sb.detailed_insts, "{ctx}");
        assert_eq!(sa.fast_forwarded_insts, sb.fast_forwarded_insts, "{ctx}");
        assert_eq!(sa.windows, sb.windows, "{ctx}");
    }
}

/// A checkpoint taken mid-run carries exactly the state an uninterrupted
/// fast-forward to the same point would hold: collecting with interval `N`
/// and with interval `2N` must agree bit-for-bit wherever their sample
/// points coincide — interpreter, warmed cache tags, predictor tables,
/// BTB and RAS alike (whole-[`nda_core::Checkpoint`] `PartialEq`).
#[test]
fn checkpoint_state_is_independent_of_sampling_interval() {
    let p = workload(2_000);
    let cfg = SimConfig::for_variant(Variant::Ooo);
    let fine = collect_checkpoints(&cfg, &p, SampledParams::new(2_000, 100, 100), u64::MAX)
        .expect("fine-grained collection");
    let coarse = collect_checkpoints(&cfg, &p, SampledParams::new(4_000, 100, 100), u64::MAX)
        .expect("coarse-grained collection");
    assert!(coarse.checkpoints.len() >= 2, "workload too short");
    for (k, c) in coarse.checkpoints.iter().enumerate() {
        let f = &fine.checkpoints[2 * k];
        assert_eq!(f.ff_insts, c.ff_insts, "sample points must coincide");
        assert_eq!(f, c, "checkpoint {k}: state depends on interval");
    }
    assert_eq!(fine.final_interp, coarse.final_interp);
    assert_eq!(fine.total_insts, coarse.total_insts);
}

/// Collecting checkpoints twice from scratch yields identical sets: the
/// master functional pass is deterministic.
#[test]
fn independent_collections_are_bit_identical() {
    let p = workload(1_000);
    let cfg = SimConfig::for_variant(Variant::Strict);
    let params = SampledParams::new(3_000, 200, 200);
    let a = collect_checkpoints(&cfg, &p, params, u64::MAX).unwrap();
    let b = collect_checkpoints(&cfg, &p, params, u64::MAX).unwrap();
    assert_eq!(a, b);
}

/// Restoring the same checkpoint set into every variant twice produces
/// bit-identical runs — stats, window CPIs, memory-system counters,
/// registers. This is the property the sweep's checkpoint reuse rests on.
#[test]
fn restore_and_rerun_is_bit_exact_for_every_variant() {
    let p = workload(600);
    let mut params = SampledParams::new(3_000, 150, 150);
    params.max_windows = 2;
    let set = collect_checkpoints(
        &SimConfig::for_variant(Variant::all()[0]),
        &p,
        params,
        u64::MAX,
    )
    .unwrap();
    assert!(!set.checkpoints.is_empty(), "workload too short");
    for v in Variant::all() {
        let cfg = SimConfig::for_variant(v);
        let r1 = run_sampled_with(cfg, &p, &set, params).unwrap_or_else(|e| panic!("{v}: {e}"));
        let r2 = run_sampled_with(cfg, &p, &set, params).unwrap_or_else(|e| panic!("{v}: {e}"));
        assert_results_bit_identical(&r1, &r2, &format!("variant {v}"));
        assert!(r1.halted, "{v}: must reach halt architecturally");
        assert!(
            r1.sampled.expect("sampled").windows >= 1,
            "{v}: no detailed windows ran"
        );
    }
}

/// Sampled mode never changes architecture: final registers match a
/// full-detail run exactly, for a secure and an insecure variant.
#[test]
fn sampled_architectural_state_matches_full_detail() {
    let p = workload(600);
    let params = SampledParams::new(3_000, 200, 200);
    let set =
        collect_checkpoints(&SimConfig::for_variant(Variant::Ooo), &p, params, u64::MAX).unwrap();
    for v in [
        Variant::Ooo,
        Variant::FullProtection,
        Variant::InOrder,
        Variant::SttFuturistic,
        Variant::ShadowBindingLazy,
    ] {
        let full = nda_core::run_variant(v, &p, 2_000_000_000).unwrap();
        let sampled = run_sampled_with(SimConfig::for_variant(v), &p, &set, params).unwrap();
        assert_eq!(sampled.regs, full.regs, "{v}");
        assert_eq!(
            sampled.stats.committed_insts, full.stats.committed_insts,
            "{v}"
        );
    }
}
