//! The threaded-code fast path is a pure host-side optimisation: driving
//! the master functional pass from a pre-decoded [`TranslatedProgram`]
//! must produce checkpoint sets — interpreter state, warmed cache tags,
//! predictor tables, BTB, RAS, final architectural state — bit-identical
//! to the reference `Interp::step()` loop, on every workload and on
//! structured random programs. And because the sets are identical, the
//! sampled CPIs measured from them are identical to the last bit.

use nda_core::{
    collect_checkpoints_with, run_sampled_with, FfEngine, SampledParams, SimConfig, Variant,
};
use nda_isa::genprog::{generate, GenConfig};
use nda_isa::Program;
use nda_workloads::{all, WorkloadParams};

/// Collect with both engines and assert whole-set equality (leans on
/// `CheckpointSet`/`Checkpoint` `PartialEq`, which covers the interpreter,
/// memory hierarchy, predictors, BTB and RAS bit-for-bit).
fn assert_engines_agree(cfg: &SimConfig, prog: &Program, params: SampledParams, ctx: &str) {
    let fast = collect_checkpoints_with(cfg, prog, params, u64::MAX, FfEngine::Translated)
        .unwrap_or_else(|e| panic!("{ctx}: translated engine failed: {e}"));
    let reference = collect_checkpoints_with(cfg, prog, params, u64::MAX, FfEngine::Reference)
        .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
    assert_eq!(
        fast.checkpoints.len(),
        reference.checkpoints.len(),
        "{ctx}: checkpoint count diverged"
    );
    for (k, (f, r)) in fast
        .checkpoints
        .iter()
        .zip(&reference.checkpoints)
        .enumerate()
    {
        assert_eq!(f, r, "{ctx}: checkpoint {k} diverged");
    }
    assert_eq!(
        fast.final_interp, reference.final_interp,
        "{ctx}: final architectural state diverged"
    );
    assert_eq!(fast.total_insts, reference.total_insts, "{ctx}");
}

/// Every synthetic kernel, checkpointed by both engines, agrees exactly.
#[test]
fn all_workloads_translated_matches_reference() {
    let params = SampledParams::new(5_000, 200, 200);
    for w in all() {
        let prog = (w.build)(&WorkloadParams {
            seed: 1234,
            iters: 300,
        });
        for variant in [Variant::Ooo, Variant::FullProtection] {
            let cfg = SimConfig::for_variant(variant);
            assert_engines_agree(&cfg, &prog, params, &format!("{}/{variant:?}", w.name));
        }
    }
}

/// Structured random programs — loops, aliasing stores, indirect jumps
/// through tables, calls/returns, fences, MSR reads — agree too. Seeded,
/// so a failure names the exact program.
#[test]
fn fuzz_programs_translated_matches_reference() {
    let cfg = SimConfig::for_variant(Variant::Ooo);
    let params = SampledParams::new(1_000, 100, 100);
    for seed in 0..24u64 {
        let prog = generate(seed, GenConfig::default());
        assert_engines_agree(&cfg, &prog, params, &format!("genprog seed {seed}"));
    }
}

/// The end-to-end pin the sweep harness relies on: sampled CPIs measured
/// from translated-engine checkpoints are bit-identical (`f64::to_bits`)
/// to those measured from reference-engine checkpoints.
#[test]
fn sampled_cpi_is_bit_identical_with_fast_path_on_and_off() {
    let w = all().iter().find(|w| w.name == "mcf").expect("mcf present");
    let prog = (w.build)(&WorkloadParams {
        seed: 7,
        iters: 400,
    });
    let params = SampledParams::new(10_000, 500, 500);
    for variant in [Variant::Ooo, Variant::Strict, Variant::InOrder] {
        let cfg = SimConfig::for_variant(variant);
        let fast =
            collect_checkpoints_with(&cfg, &prog, params, u64::MAX, FfEngine::Translated).unwrap();
        let reference =
            collect_checkpoints_with(&cfg, &prog, params, u64::MAX, FfEngine::Reference).unwrap();
        let a = run_sampled_with(cfg, &prog, &fast, params).unwrap();
        let b = run_sampled_with(cfg, &prog, &reference, params).unwrap();
        let (sa, sb) = (a.sampled.unwrap(), b.sampled.unwrap());
        assert_eq!(
            sa.cpi.mean.to_bits(),
            sb.cpi.mean.to_bits(),
            "{variant:?}: sampled CPI diverged"
        );
        assert_eq!(sa.cpi.ci95.to_bits(), sb.cpi.ci95.to_bits(), "{variant:?}");
        assert_eq!(sa.windows, sb.windows, "{variant:?}");
        assert_eq!(sa.detailed_insts, sb.detailed_insts, "{variant:?}");
        assert_eq!(a.stats, b.stats, "{variant:?}: estimated stats diverged");
        assert_eq!(a.regs, b.regs, "{variant:?}");
    }
}
