//! Robustness contract of the persistent checkpoint store: corruption is
//! quarantined and regenerated, stale geometry never matches, concurrent
//! writers cannot tear an entry, and a warm hit is indistinguishable —
//! bit for bit — from collecting from scratch.

use nda_core::{
    collect_checkpoints, collect_checkpoints_cached, run_sampled_with, CheckpointStore,
    SampledParams, SimConfig, StoreKey, Variant,
};
use nda_isa::Program;
use nda_workloads::{by_name, WorkloadParams};
use std::path::PathBuf;

fn workload() -> Program {
    let w = by_name("mcf").expect("mcf kernel present");
    (w.build)(&WorkloadParams {
        seed: 1234,
        iters: 300,
    })
}

fn params() -> SampledParams {
    SampledParams::new(5_000, 200, 200)
}

/// Fresh per-test store directory (pid-scoped so parallel test binaries
/// cannot collide).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nda-ckpt-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn corrupt_entry_is_quarantined_and_regenerated() {
    let dir = fresh_dir("corrupt");
    let store = CheckpointStore::open(&dir).unwrap();
    let cfg = SimConfig::for_variant(Variant::Ooo);
    let prog = workload();
    let key = StoreKey::new(&cfg, &prog, params());

    let (cold, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(!hit, "empty store must miss");
    let entry = store.entry_path(&key);
    assert!(entry.exists(), "miss must populate the store");

    // Flip a byte in the middle of the body: checksum mismatch.
    let mut data = std::fs::read(&entry).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0xff;
    std::fs::write(&entry, &data).unwrap();

    let (after, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(!hit, "corrupt entry must read as a miss, never as data");
    assert_eq!(after, cold, "regenerated set must equal the original");
    assert!(
        dir.join("quarantine").join(key.filename()).exists(),
        "corrupt entry must be preserved under quarantine/ for forensics"
    );
    assert!(entry.exists(), "the miss must have re-saved a good entry");

    // Truncation (e.g. a crashed writer that bypassed the atomic rename)
    // is also quarantined, then the next pass heals the store and hits.
    let data = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &data[..data.len() / 3]).unwrap();
    let (_, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(!hit, "truncated entry must miss");
    let (_, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(hit, "healed store must hit");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_geometry_or_schedule_never_matches_a_stale_entry() {
    let dir = fresh_dir("geometry");
    let store = CheckpointStore::open(&dir).unwrap();
    let cfg = SimConfig::for_variant(Variant::Ooo);
    let prog = workload();
    let (_, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(!hit);

    // Same workload, halved L1D: warming writes different tags, so the
    // key must differ and the stale entry must not be consulted.
    let mut small = cfg;
    small.mem.l1d.size_bytes /= 2;
    assert_ne!(
        StoreKey::new(&cfg, &prog, params()).hash(),
        StoreKey::new(&small, &prog, params()).hash()
    );
    let (set, hit) =
        collect_checkpoints_cached(Some(&store), &small, &prog, params(), u64::MAX).unwrap();
    assert!(!hit, "changed cache geometry must miss");
    assert_eq!(
        set,
        collect_checkpoints(&small, &prog, params(), u64::MAX).unwrap()
    );

    // A different sampling schedule shifts every checkpoint: also a miss.
    let other = SampledParams::new(7_000, 200, 200);
    let (_, hit) = collect_checkpoints_cached(Some(&store), &cfg, &prog, other, u64::MAX).unwrap();
    assert!(!hit, "changed schedule must miss");

    // The original key still hits — nothing above disturbed it.
    let (_, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(hit);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_do_not_tear_the_store() {
    let dir = fresh_dir("concurrent");
    let cfg = SimConfig::for_variant(Variant::Ooo);
    let prog = workload();
    let expected = collect_checkpoints(&cfg, &prog, params(), u64::MAX).unwrap();

    // Eight threads race cold collection + save of the same key against
    // the same directory; atomic tmp+rename means the store always holds
    // a complete entry, whichever writer renamed last.
    std::thread::scope(|s| {
        for _ in 0..8 {
            let (dir, cfg, prog) = (&dir, &cfg, &prog);
            s.spawn(move || {
                let store = CheckpointStore::open(dir).unwrap();
                let (set, _) =
                    collect_checkpoints_cached(Some(&store), cfg, prog, params(), u64::MAX)
                        .unwrap();
                set
            });
        }
    });

    let store = CheckpointStore::open(&dir).unwrap();
    let key = StoreKey::new(&cfg, &prog, params());
    let set = store
        .load(&key, &cfg, &prog)
        .expect("racing writers must leave a loadable entry");
    assert_eq!(set, expected, "stored entry torn by concurrent writers");
    assert!(
        !dir.join("quarantine").exists(),
        "no writer may have observed (and quarantined) a partial entry"
    );
    // No abandoned temporaries either: every writer renamed or cleaned up.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "abandoned temp files: {leftovers:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_hit_resume_equals_cold_run_exactly() {
    let dir = fresh_dir("warm");
    let store = CheckpointStore::open(&dir).unwrap();
    let cfg = SimConfig::for_variant(Variant::FullProtection);
    let prog = workload();

    let (cold_set, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(!hit);
    let (warm_set, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), u64::MAX).unwrap();
    assert!(hit, "second pass over identical inputs must hit");
    assert_eq!(warm_set, cold_set, "deserialized set must be bit-exact");

    // And the detailed simulation driven from the deserialized set is
    // bit-identical to one driven from the freshly collected set.
    let cold = run_sampled_with(cfg, &prog, &cold_set, params()).unwrap();
    let warm = run_sampled_with(cfg, &prog, &warm_set, params()).unwrap();
    assert_eq!(cold.stats, warm.stats);
    assert_eq!(cold.mem_stats, warm.mem_stats);
    assert_eq!(cold.regs, warm.regs);
    assert_eq!(cold.halted, warm.halted);
    let (sc, sw) = (cold.sampled.unwrap(), warm.sampled.unwrap());
    assert_eq!(sc.cpi.mean.to_bits(), sw.cpi.mean.to_bits());
    assert_eq!(sc.cpi.ci95.to_bits(), sw.cpi.ci95.to_bits());
    assert_eq!(sc.windows, sw.windows);

    // A budget smaller than the recorded run must not reuse the entry:
    // the cached set describes a *completed* pass, and a tiny budget has
    // to fail exactly as the uncached path would.
    let tiny = collect_checkpoints_cached(Some(&store), &cfg, &prog, params(), 10);
    let uncached = collect_checkpoints(&cfg, &prog, params(), 10);
    assert_eq!(tiny.is_err(), uncached.is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn capped_store_stays_under_limit_and_survivors_hit_bit_identically() {
    let dir = fresh_dir("gc");
    let prog = workload();

    // Distinct schedules give distinct keys; measure one entry first.
    let schedule = |n: u64| SampledParams::new(4_000 + 100 * n, 200, 200);
    let cfg = SimConfig::for_variant(Variant::Ooo);
    let entry_size = {
        let probe = CheckpointStore::open(&dir).unwrap();
        let (_, hit) =
            collect_checkpoints_cached(Some(&probe), &cfg, &prog, schedule(0), u64::MAX).unwrap();
        assert!(!hit);
        let path = probe.entry_path(&StoreKey::new(&cfg, &prog, schedule(0)));
        let n = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).unwrap();
        n
    };

    // Cap at roughly two entries, then write five.
    let cap = entry_size * 2 + entry_size / 2;
    let store = CheckpointStore::open(&dir)
        .unwrap()
        .with_max_bytes(Some(cap));
    assert_eq!(store.max_bytes(), Some(cap));
    let mut cold = Vec::new();
    for n in 0..5 {
        let (set, hit) =
            collect_checkpoints_cached(Some(&store), &cfg, &prog, schedule(n), u64::MAX).unwrap();
        assert!(!hit);
        cold.push(set);
        // mtime granularity on some filesystems is coarse; keep eviction
        // order (oldest first) unambiguous.
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let ckpt_bytes = || -> u64 {
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
            .map(|e| e.metadata().unwrap().len())
            .sum()
    };
    assert!(
        ckpt_bytes() <= cap,
        "capped store holds {} bytes, cap {cap}",
        ckpt_bytes()
    );

    // The newest entries survived; warm hits on them are bit-identical
    // to the cold collections. The oldest were evicted and re-collect.
    let (warm, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, schedule(4), u64::MAX).unwrap();
    assert!(hit, "newest entry must survive GC");
    assert_eq!(warm, cold[4], "survivor hit must be bit-exact");
    let (refetch, hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, schedule(0), u64::MAX).unwrap();
    assert!(!hit, "oldest entry must have been evicted");
    assert_eq!(refetch, cold[0]);
    assert!(ckpt_bytes() <= cap, "GC must also run after the re-save");

    // An explicit pass with a zero cap empties the store (quarantine and
    // non-entry files are untouched).
    let stats = store.gc(0).unwrap();
    assert_eq!(stats.live_bytes, 0);
    assert_eq!(ckpt_bytes(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
