//! Squash-recovery edge cases, run with the cycle-level invariant checker
//! armed. Each program is engineered to put the recovery machinery in an
//! awkward corner — a fault squashed on the wrong path, RAS over/underflow,
//! back-to-back mispredicts — and must still retire the exact architectural
//! state the reference interpreter computes.

use nda_core::{run_with_config, SimConfig, Variant};
use nda_isa::{Asm, Interp, Program, Reg, KERNEL_BASE};

/// The out-of-order variants worth hammering: baseline, the strongest NDA
/// policy, both InvisiSpec schemes and delay-on-miss (the recovery paths
/// diverge most across these).
const OOO_VARIANTS: [Variant; 5] = [
    Variant::Ooo,
    Variant::FullProtection,
    Variant::InvisiSpecSpectre,
    Variant::InvisiSpecFuture,
    Variant::DelayOnMiss,
];

fn reference_regs(p: &Program) -> [u64; 32] {
    let mut i = Interp::new(p);
    for _ in 0..1_000_000 {
        if i.halted() {
            break;
        }
        i.step().unwrap();
    }
    assert!(i.halted(), "reference interpreter must finish");
    let mut out = [0u64; 32];
    for r in Reg::all() {
        out[r.index()] = i.reg(r);
    }
    out
}

/// Run `p` on every OoO variant with invariants checked every cycle and
/// assert bit-exact architectural registers against the interpreter.
fn assert_matches_reference(p: &Program) {
    let want = reference_regs(p);
    for v in OOO_VARIANTS {
        let mut cfg = SimConfig::for_variant(v);
        cfg.check_invariants = true;
        let r = run_with_config(cfg, p, 10_000_000).unwrap_or_else(|e| panic!("{v:?} failed: {e}"));
        assert!(r.halted, "{v:?} did not halt");
        assert_eq!(r.regs, want, "{v:?} diverged from the reference");
    }
}

/// A privileged load sits on the *wrong* path of a cold-predicted branch.
/// The load executes speculatively and records a fault, but the branch
/// resolves taken and squashes it before it reaches the ROB head — so the
/// fault must evaporate (there is no handler; delivery would abort the run).
#[test]
fn wrong_path_fault_is_squashed_not_delivered() {
    let mut asm = Asm::new();
    let safe = asm.new_label();
    asm.li(Reg::X2, 1).li(Reg::X4, KERNEL_BASE);
    asm.bne(Reg::X2, Reg::X0, safe); // always taken; cold predictor says not-taken
    asm.ld8(Reg::X5, Reg::X4, 0); // wrong path: would fault if it ever committed
    asm.bind(safe);
    asm.li(Reg::X6, 99).halt();
    let p = asm.assemble().unwrap();
    assert_matches_reference(&p);
}

/// A fault reaches the ROB head while younger speculative work — including
/// a branch — is still in flight. Fault delivery must squash all of it and
/// redirect to the handler with no stale speculative register state.
#[test]
fn fault_at_rob_head_squashes_younger_inflight_work() {
    let mut asm = Asm::new();
    let h = asm.new_label();
    let skip = asm.new_label();
    asm.fault_handler(h);
    asm.li(Reg::X2, KERNEL_BASE);
    asm.ld8(Reg::X3, Reg::X2, 0); // faults at commit
    asm.li(Reg::X4, 1); // younger wrong-future work, must be squashed
    asm.li(Reg::X5, 2);
    asm.bne(Reg::X4, Reg::X0, skip);
    asm.li(Reg::X6, 3);
    asm.bind(skip);
    asm.halt();
    asm.bind(h);
    asm.li(Reg::X7, 55).halt();
    let p = asm.assemble().unwrap();
    let want = reference_regs(&p);
    assert_eq!(want[7], 55, "reference must take the handler");
    assert_eq!(want[4], 0, "post-fault code must never commit");
    assert_matches_reference(&p);
}

/// Recursion 24 deep overflows the 16-entry circular RAS; the unwind's
/// first eight returns predict correctly, the rest mispredict and must be
/// repaired by squash without corrupting the architectural unwinding.
#[test]
fn ras_overflow_on_deep_recursion() {
    let mut asm = Asm::new();
    let f = asm.new_label();
    let base = asm.new_label();
    asm.li(Reg::X2, 24).li(Reg::X10, 0x10_0000); // x10: software stack for x1
    asm.call(f);
    asm.li(Reg::X7, 123).halt();
    asm.bind(f);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.beq(Reg::X2, Reg::X0, base);
    asm.st8(Reg::X1, Reg::X10, 0); // spill the link register around the
    asm.addi(Reg::X10, Reg::X10, 8); // recursive call
    asm.call(f);
    asm.subi(Reg::X10, Reg::X10, 8);
    asm.ld8(Reg::X1, Reg::X10, 0);
    asm.bind(base);
    asm.ret();
    let p = asm.assemble().unwrap();
    let want = reference_regs(&p);
    assert_eq!(want[7], 123);
    assert_eq!(want[2], 0);
    assert_matches_reference(&p);
}

/// A `ret` on the wrong path of a mispredicted branch pops an *empty* RAS
/// (and reads a zero link register). Both the predictor and the executed
/// target are garbage; the branch's squash must erase all of it.
#[test]
fn wrong_path_ret_underflows_empty_ras() {
    let mut asm = Asm::new();
    let over = asm.new_label();
    asm.li(Reg::X2, 1);
    asm.bne(Reg::X2, Reg::X0, over); // taken; cold predictor falls through
    asm.ret(); // wrong path: RAS empty, x1 = 0
    asm.bind(over);
    asm.li(Reg::X3, 7).halt();
    let p = asm.assemble().unwrap();
    assert_matches_reference(&p);
}

/// Two independent cold-predicted taken branches back to back: both can be
/// in flight (and even resolve in the same writeback sweep); the older
/// squash must cleanly supersede the younger one's.
#[test]
fn back_to_back_mispredicted_branches() {
    let mut asm = Asm::new();
    let l1 = asm.new_label();
    let l2 = asm.new_label();
    asm.li(Reg::X2, 1).li(Reg::X3, 1);
    asm.bne(Reg::X2, Reg::X0, l1); // mispredict #1
    asm.li(Reg::X5, 41); // wrong path
    asm.bind(l1);
    asm.bne(Reg::X3, Reg::X0, l2); // mispredict #2, fetched on #1's wrong path too
    asm.li(Reg::X6, 43); // wrong path
    asm.bind(l2);
    asm.li(Reg::X4, 9).halt();
    let p = asm.assemble().unwrap();
    let want = reference_regs(&p);
    assert_eq!(want[4], 9);
    assert_eq!(want[5], 0);
    assert_eq!(want[6], 0);
    assert_matches_reference(&p);

    // The baseline machine really does mispredict both.
    let mut cfg = SimConfig::ooo();
    cfg.check_invariants = true;
    let r = run_with_config(cfg, &p, 1_000_000).unwrap();
    assert!(
        r.stats.branch_mispredicts >= 2,
        "expected both cold branches to mispredict, saw {}",
        r.stats.branch_mispredicts
    );
}

/// A tight squash storm: deep recursion *and* a wrong-path privileged load
/// inside the recursive frame. Stresses rename-map restoration across
/// nested squashes with the invariant checker watching every cycle.
#[test]
fn nested_recovery_with_wrong_path_fault_in_loop() {
    let mut asm = Asm::new();
    let f = asm.new_label();
    let base = asm.new_label();
    let safe = asm.new_label();
    asm.li(Reg::X2, 12)
        .li(Reg::X8, KERNEL_BASE)
        .li(Reg::X10, 0x10_0000);
    asm.call(f);
    asm.li(Reg::X7, 77).halt();
    asm.bind(f);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.beq(Reg::X2, Reg::X0, base);
    asm.bne(Reg::X2, Reg::X0, safe); // always taken inside the recursion
    asm.ld8(Reg::X9, Reg::X8, 0); // wrong path: privileged, never commits
    asm.bind(safe);
    asm.st8(Reg::X1, Reg::X10, 0);
    asm.addi(Reg::X10, Reg::X10, 8);
    asm.call(f);
    asm.subi(Reg::X10, Reg::X10, 8);
    asm.ld8(Reg::X1, Reg::X10, 0);
    asm.bind(base);
    asm.ret();
    let p = asm.assemble().unwrap();
    let want = reference_regs(&p);
    assert_eq!(want[7], 77);
    assert_matches_reference(&p);
}
