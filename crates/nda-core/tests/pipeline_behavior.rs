//! Behavioural tests of individual pipeline mechanisms, each exercising
//! one distinct property the modules cannot test in isolation.

use nda_core::config::SimConfig;
use nda_core::{NdaPolicy, OooCore, Variant};
use nda_isa::{Asm, MemSize, Reg};

fn run_ooo(asm: &Asm) -> OooCore {
    run_with(asm, SimConfig::ooo())
}

fn run_with(asm: &Asm, cfg: SimConfig) -> OooCore {
    let p = asm.assemble().unwrap();
    let mut c = OooCore::new(cfg, &p);
    c.run(10_000_000).unwrap();
    c
}

// ---------------------------------------------------------------------
// Physical-register conservation
// ---------------------------------------------------------------------

#[test]
fn free_list_fully_recovered_after_squash_heavy_run() {
    // Data-dependent branches force many squashes; after halt the ROB is
    // empty and every non-architectural physical register must be free.
    let mut asm = Asm::new();
    asm.data_u64s(0x9000, &[3, 1, 4, 1, 5, 9, 2, 6]);
    let done = asm.new_label();
    asm.li(Reg::X2, 64);
    asm.li(Reg::X8, 0x9000);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.andi(Reg::X3, Reg::X2, 7 << 3 >> 3); // index
    asm.andi(Reg::X3, Reg::X2, 7);
    asm.shli(Reg::X3, Reg::X3, 3);
    asm.add(Reg::X3, Reg::X3, Reg::X8);
    asm.ld8(Reg::X4, Reg::X3, 0);
    let odd = asm.new_label();
    let join = asm.new_label();
    asm.andi(Reg::X5, Reg::X4, 1);
    asm.bne(Reg::X5, Reg::X0, odd);
    asm.addi(Reg::X6, Reg::X6, 1);
    asm.jmp(join);
    asm.bind(odd);
    asm.addi(Reg::X7, Reg::X7, 1);
    asm.bind(join);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let c = run_ooo(&asm);
    assert!(c.stats.squashes > 0, "test needs squashes to be meaningful");
    assert_eq!(c.rob_occupancy(), 0);
    let cfg = SimConfig::ooo();
    assert_eq!(
        c.free_pregs(),
        cfg.core.num_pregs - 32,
        "physical register leak"
    );
}

// ---------------------------------------------------------------------
// Store-to-load forwarding details
// ---------------------------------------------------------------------

#[test]
fn subword_forwarding_extracts_correct_bytes() {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x1_0000);
    asm.li(Reg::X3, 0x1122_3344_5566_7788);
    asm.st8(Reg::X3, Reg::X2, 0);
    // Forward single bytes from inside the store's footprint.
    asm.load(Reg::X4, Reg::X2, 0, MemSize::B1); // 0x88
    asm.load(Reg::X5, Reg::X2, 3, MemSize::B1); // 0x55
    asm.load(Reg::X6, Reg::X2, 4, MemSize::B4); // 0x11223344
    asm.load(Reg::X7, Reg::X2, 6, MemSize::B2); // 0x1122
    asm.halt();
    let c = run_ooo(&asm);
    assert_eq!(c.reg(Reg::X4), 0x88);
    assert_eq!(c.reg(Reg::X5), 0x55);
    assert_eq!(c.reg(Reg::X6), 0x1122_3344);
    assert_eq!(c.reg(Reg::X7), 0x1122);
}

#[test]
fn partial_overlap_waits_for_store_commit() {
    // A 1-byte store partially covers an 8-byte load: no forwarding is
    // possible, the load must wait until the store drains to memory —
    // and the value must splice the store into the old memory contents.
    let mut asm = Asm::new();
    asm.data_u64s(0x2000, &[0xFFFF_FFFF_FFFF_FFFF]);
    asm.li(Reg::X2, 0x2000);
    asm.li(Reg::X3, 0xAB);
    asm.st1(Reg::X3, Reg::X2, 2);
    asm.ld8(Reg::X4, Reg::X2, 0);
    asm.halt();
    let c = run_ooo(&asm);
    assert_eq!(c.reg(Reg::X4), 0xFFFF_FFFF_FFAB_FFFF);
}

#[test]
fn forwarding_uses_the_youngest_matching_store() {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x3000);
    asm.li(Reg::X3, 111);
    asm.st8(Reg::X3, Reg::X2, 0);
    asm.li(Reg::X4, 222);
    asm.st8(Reg::X4, Reg::X2, 0);
    asm.ld8(Reg::X5, Reg::X2, 0);
    asm.halt();
    let c = run_ooo(&asm);
    assert_eq!(c.reg(Reg::X5), 222);
}

// ---------------------------------------------------------------------
// Structural limits
// ---------------------------------------------------------------------

#[test]
fn mshr_exhaustion_still_completes_correctly() {
    // 32 independent cold misses exceed the 16 MSHRs; later loads must
    // retry and everything still commits with the right values.
    let mut asm = Asm::new();
    let words: Vec<u64> = (0..32).map(|i| 1000 + i).collect();
    for (i, w) in words.iter().enumerate() {
        // One line (64 B) apart, all distinct lines.
        asm.data_u64s(0x10_0000 + (i as u64) * 64, &[*w]);
    }
    asm.li(Reg::X2, 0x10_0000);
    for i in 0..32i64 {
        asm.ld8(Reg::X3, Reg::X2, i * 64);
        asm.add(Reg::X10, Reg::X10, Reg::X3);
    }
    asm.halt();
    let c = run_ooo(&asm);
    let expect: u64 = words.iter().sum();
    assert_eq!(c.reg(Reg::X10), expect);
    assert!(c.hier.stats().dram_accesses >= 32);
}

#[test]
fn narrow_issue_width_still_correct() {
    // Independent work in a loop (i-cache warm after the first pass) so
    // issue bandwidth is the bottleneck, not fetch or dependencies.
    let mut asm = Asm::new();
    let done = asm.new_label();
    asm.li(Reg::X2, 50);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.addi(Reg::X5, Reg::X5, 1);
    asm.addi(Reg::X6, Reg::X6, 2);
    asm.addi(Reg::X7, Reg::X7, 3);
    asm.addi(Reg::X8, Reg::X8, 4);
    asm.addi(Reg::X9, Reg::X9, 5);
    asm.addi(Reg::X10, Reg::X10, 6);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let mut narrow = SimConfig::ooo();
    narrow.core.issue_width = 1;
    narrow.core.alu_units = 1;
    let slow = run_with(&asm, narrow);
    let fast = run_ooo(&asm);
    assert_eq!(slow.reg(Reg::X5), fast.reg(Reg::X5));
    assert_eq!(slow.reg(Reg::X10), 300);
    assert!(
        slow.cycle() > fast.cycle(),
        "1-wide must be slower than 8-wide"
    );
}

// ---------------------------------------------------------------------
// Serialization: fence, rdcycle, SpecOff
// ---------------------------------------------------------------------

#[test]
fn fence_orders_timing_reads() {
    // Without serialization, the second rdcycle could race ahead; the
    // fence forces it after the slow load commits.
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x4_0000);
    asm.rdcycle(Reg::X3);
    asm.ld8(Reg::X4, Reg::X2, 0); // cold miss, ~144 cycles
    asm.rdcycle(Reg::X5);
    asm.halt();
    let c = run_ooo(&asm);
    assert!(
        c.reg(Reg::X5) - c.reg(Reg::X3) >= 100,
        "serialising rdcycle must observe the full miss ({} .. {})",
        c.reg(Reg::X3),
        c.reg(Reg::X5)
    );
}

#[test]
fn spec_window_suppresses_wrong_path_execution() {
    // A mispredictable branch inside a SpecOff window: the wrong path must
    // never issue (one instruction in flight at a time).
    let mut asm = Asm::new();
    asm.data_u64s(0xA000, &[1]);
    let run_branchy = |asm: &mut Asm| {
        let skip = asm.new_label();
        asm.li(Reg::X2, 0xA000);
        asm.clflush(Reg::X2, 0);
        asm.ld8(Reg::X3, Reg::X2, 0); // slow; value 1
        asm.bne(Reg::X3, Reg::X0, skip); // taken; cold-predicted not taken
        asm.li(Reg::X4, 0xBAD); // wrong path
        asm.li(Reg::X5, 0xBAD2);
        asm.bind(skip);
    };
    asm.spec_off();
    run_branchy(&mut asm);
    asm.spec_on();
    asm.halt();
    let c = run_ooo(&asm);
    assert_eq!(
        c.stats.wrong_path_executed, 0,
        "no wrong path may execute inside the window"
    );

    // Control: the same code without the window does execute a wrong path.
    let mut asm2 = Asm::new();
    asm2.data_u64s(0xA000, &[1]);
    run_branchy(&mut asm2);
    asm2.halt();
    let c2 = run_ooo(&asm2);
    assert!(c2.stats.wrong_path_executed > 0, "control must speculate");
}

#[test]
fn spec_window_costs_time_but_not_correctness() {
    let body = |asm: &mut Asm, windowed: bool| {
        if windowed {
            asm.spec_off();
        }
        asm.li(Reg::X2, 10);
        let done = asm.new_label();
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.addi(Reg::X3, Reg::X3, 5);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        if windowed {
            asm.spec_on();
        }
        asm.halt();
    };
    let mut plain = Asm::new();
    body(&mut plain, false);
    let mut windowed = Asm::new();
    body(&mut windowed, true);
    let p = run_ooo(&plain);
    let w = run_ooo(&windowed);
    assert_eq!(p.reg(Reg::X3), 50);
    assert_eq!(w.reg(Reg::X3), 50);
    assert!(w.cycle() > p.cycle(), "the window serialises dispatch");
}

#[test]
fn wrong_path_spec_off_never_engages() {
    // SpecOff on the wrong path must not disable speculation (it takes
    // effect at commit): later wrong paths still execute.
    let mut asm = Asm::new();
    asm.data_u64s(0xA000, &[1]);
    let skip = asm.new_label();
    asm.li(Reg::X2, 0xA000);
    asm.clflush(Reg::X2, 0);
    asm.ld8(Reg::X3, Reg::X2, 0);
    asm.bne(Reg::X3, Reg::X0, skip); // taken; predicted not taken
    asm.spec_off(); // wrong path!
    asm.bind(skip);
    // A second mispredictable branch afterwards: speculation must be alive.
    let skip2 = asm.new_label();
    asm.clflush(Reg::X2, 0);
    asm.ld8(Reg::X4, Reg::X2, 0);
    asm.bne(Reg::X4, Reg::X0, skip2); // taken; predicted not taken (new pc)
    asm.li(Reg::X5, 0xBAD);
    asm.bind(skip2);
    asm.halt();
    let c = run_ooo(&asm);
    assert!(
        c.stats.wrong_path_executed > 0,
        "speculation must survive a squashed SpecOff"
    );
    assert_eq!(c.reg(Reg::X5), 0);
}

// ---------------------------------------------------------------------
// Predictors in the full pipeline
// ---------------------------------------------------------------------

#[test]
fn loop_branch_trains_after_first_iterations() {
    // A 100-iteration loop: the backward branch mispredicts at most a
    // handful of times once the counter saturates.
    let mut asm = Asm::new();
    let done = asm.new_label();
    asm.li(Reg::X2, 100);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let c = run_ooo(&asm);
    assert!(
        c.stats.branch_mispredicts <= 8,
        "a counted loop must train quickly ({} mispredicts)",
        c.stats.branch_mispredicts
    );
}

#[test]
fn repeated_indirect_target_trains_the_btb() {
    // Calling the same function pointer in a loop: after the first
    // resolution, the BTB predicts it.
    let mut asm = Asm::new();
    let f = asm.new_label();
    let main = asm.new_label();
    asm.jmp(main);
    asm.bind(f);
    asm.addi(Reg::X5, Reg::X5, 1);
    asm.ret();
    asm.bind(main);
    asm.li(Reg::X19, 0xE0_0000);
    asm.li_label(Reg::X6, f);
    let done = asm.new_label();
    asm.li(Reg::X2, 50);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.call_ind(Reg::X6);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let c = run_ooo(&asm);
    assert_eq!(c.reg(Reg::X5), 50);
    assert!(
        c.stats.branch_mispredicts <= 6,
        "indirect target must train ({} mispredicts)",
        c.stats.branch_mispredicts
    );
}

// ---------------------------------------------------------------------
// Policy mechanics observable from outside
// ---------------------------------------------------------------------

#[test]
fn strict_defers_more_than_permissive() {
    let mut asm = Asm::new();
    asm.data_u64s(0xB000, &[1]);
    asm.li(Reg::X8, 0xC000);
    asm.ld8(Reg::X9, Reg::X8, 0); // warm a fast line
    asm.li(Reg::X20, 16);
    let done = asm.new_label();
    let top = asm.here_label();
    asm.beq(Reg::X20, Reg::X0, done);
    asm.li(Reg::X2, 0xB000);
    asm.clflush(Reg::X2, 0);
    asm.ld8(Reg::X3, Reg::X2, 0); // slow feeder
    let skip = asm.new_label();
    asm.bne(Reg::X3, Reg::X0, skip); // taken, slow to resolve
    asm.nop();
    asm.bind(skip);
    asm.ld8(Reg::X4, Reg::X8, 0); // fast load in the shadow
    asm.addi(Reg::X5, Reg::X4, 1); // arith in the shadow
    asm.addi(Reg::X6, Reg::X5, 1);
    asm.subi(Reg::X20, Reg::X20, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();

    let mut perm = SimConfig::ooo();
    perm.policy = NdaPolicy::permissive();
    let mut strict = SimConfig::ooo();
    strict.policy = NdaPolicy::strict();
    let p = run_with(&asm, perm);
    let s = run_with(&asm, strict);
    assert!(
        s.stats.deferred_broadcasts > p.stats.deferred_broadcasts,
        "strict defers arithmetic too ({} vs {})",
        s.stats.deferred_broadcasts,
        p.stats.deferred_broadcasts
    );
    assert!(s.cycle() >= p.cycle());
}

#[test]
fn delay_on_miss_stalls_speculative_misses_only() {
    // A speculative L1-missing load under DoM waits for the branch; a
    // warm load does not.
    let mut asm = Asm::new();
    asm.data_u64s(0xB000, &[1]);
    asm.li(Reg::X8, 0xC000);
    asm.ld8(Reg::X9, Reg::X8, 0); // warm
    asm.fence();
    asm.li(Reg::X2, 0xB000);
    asm.clflush(Reg::X2, 0);
    asm.ld8(Reg::X3, Reg::X2, 0); // slow feeder
    let skip = asm.new_label();
    asm.bne(Reg::X3, Reg::X0, skip); // taken (eventually)
    asm.nop();
    asm.bind(skip);
    asm.ld8(Reg::X4, Reg::X8, 0); // speculative but warm: proceeds
    asm.ld8(Reg::X5, Reg::X0, 0x5_0000); // speculative cold: delayed under DoM
    asm.halt();
    let base = run_with(&asm, SimConfig::for_variant(Variant::Ooo));
    let dom = run_with(&asm, SimConfig::for_variant(Variant::DelayOnMiss));
    assert_eq!(base.reg(Reg::X4), dom.reg(Reg::X4));
    assert_eq!(base.reg(Reg::X5), dom.reg(Reg::X5));
    assert!(dom.cycle() >= base.cycle());
}

#[test]
fn invisispec_probe_loads_do_not_fill_before_exposure() {
    // Under IS-Future, a load in a branch shadow probes; squashed loads
    // never expose -> the line stays cold.
    let mut asm = Asm::new();
    asm.data_u64s(0xA000, &[1]);
    let skip = asm.new_label();
    asm.li(Reg::X2, 0xA000);
    asm.clflush(Reg::X2, 0);
    asm.ld8(Reg::X3, Reg::X2, 0); // slow, value 1
    asm.bne(Reg::X3, Reg::X0, skip); // taken; predicted NT -> wrong path:
    asm.ld8(Reg::X4, Reg::X0, 0x6_0000); // wrong-path probe
    asm.bind(skip);
    for _ in 0..64 {
        asm.nop();
    }
    asm.halt();
    let mut base = run_with(&asm, SimConfig::for_variant(Variant::Ooo));
    let mut is = run_with(&asm, SimConfig::for_variant(Variant::InvisiSpecFuture));
    let (bc, ic) = (base.cycle(), is.cycle());
    assert_eq!(
        base.hier.probe_data(0x6_0000, bc).level,
        nda_mem::Level::L1,
        "baseline leaves the wrong-path fill"
    );
    assert_eq!(
        is.hier.probe_data(0x6_0000, ic).level,
        nda_mem::Level::Mem,
        "InvisiSpec must not leave a wrong-path fill"
    );
}

#[test]
fn fpu_power_model_charges_wakeup_once() {
    let mut asm = Asm::new();
    asm.rdcycle(Reg::X10);
    asm.li(Reg::X2, 7);
    asm.mul(Reg::X3, Reg::X2, Reg::X2); // cold: pays wake penalty
    asm.rdcycle(Reg::X11);
    asm.mul(Reg::X4, Reg::X2, Reg::X2); // warm
    asm.rdcycle(Reg::X12);
    asm.halt();
    let mut cfg = SimConfig::ooo();
    cfg.core.fpu_power_model = true;
    let c = run_with(&asm, cfg);
    let cold = c.reg(Reg::X11) - c.reg(Reg::X10);
    let warm = c.reg(Reg::X12) - c.reg(Reg::X11);
    assert!(
        cold >= warm + cfg.core.fpu_wake_penalty / 2,
        "first multiply must pay the wake penalty (cold {cold}, warm {warm})"
    );
}

#[test]
fn commit_width_bounds_retirement() {
    // Loop so the i-cache is warm; with commit width 1 the steady state
    // cannot beat one instruction per cycle.
    let mut asm = Asm::new();
    let done = asm.new_label();
    asm.li(Reg::X2, 100);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.addi(Reg::X5, Reg::X5, 1);
    asm.addi(Reg::X6, Reg::X6, 1);
    asm.addi(Reg::X7, Reg::X7, 1);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let mut narrow = SimConfig::ooo();
    narrow.core.commit_width = 1;
    let slow = run_with(&asm, narrow);
    let fast = run_ooo(&asm);
    assert!(slow.cycle() > fast.cycle());
    let insts = slow.stats.committed_insts;
    assert!(slow.cycle() >= insts, "1-wide commit cannot beat 1 IPC");
}

// ---------------------------------------------------------------------
// SMARTS sampling (paper §6.1 methodology)
// ---------------------------------------------------------------------

#[test]
fn smarts_windows_measure_steady_state() {
    use nda_core::run::run_smarts;
    // A long uniform loop: every measurement window should see nearly the
    // same CPI, and it should be close to the whole-run CPI.
    let mut asm = Asm::new();
    let done = asm.new_label();
    asm.li(Reg::X2, 4000);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.addi(Reg::X3, Reg::X3, 1);
    asm.addi(Reg::X4, Reg::X4, 2);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let p = asm.assemble().unwrap();
    let windows = run_smarts(SimConfig::ooo(), &p, 1_000, 1_000, 6).unwrap();
    assert!(
        windows.len() >= 4,
        "enough instructions for several windows"
    );
    let mean = windows.iter().sum::<f64>() / windows.len() as f64;
    for w in &windows {
        assert!(
            (w - mean).abs() / mean < 0.10,
            "steady-state windows must agree (window {w:.3}, mean {mean:.3})"
        );
    }
}

#[test]
fn smarts_handles_programs_shorter_than_one_window() {
    use nda_core::run::run_smarts;
    let mut asm = Asm::new();
    asm.li(Reg::X2, 1);
    asm.halt();
    let p = asm.assemble().unwrap();
    let windows = run_smarts(SimConfig::ooo(), &p, 1_000, 1_000, 4).unwrap();
    assert!(windows.is_empty(), "no full window fits");
}
