//! Behavioural tests of the blocking in-order baseline: it must be
//! boring in exactly the ways that make it secure.

use nda_core::config::SimConfig;
use nda_core::{InOrderCore, Variant};
use nda_isa::{Asm, Reg};

fn run(asm: &Asm) -> InOrderCore {
    let p = asm.assemble().unwrap();
    let mut c = InOrderCore::new(SimConfig::for_variant(Variant::InOrder), &p);
    c.run(100_000_000).unwrap();
    c
}

#[test]
fn no_overlap_between_misses() {
    // Two independent cold misses: an OoO core overlaps them (MLP 2), the
    // blocking core pays them back to back (MLP exactly 1).
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x10_0000);
    asm.ld8(Reg::X3, Reg::X2, 0);
    asm.ld8(Reg::X4, Reg::X2, 4096);
    asm.halt();
    let c = run(&asm);
    let mlp = c.hier.stats().mlp.expect("two misses recorded");
    assert!(
        (mlp - 1.0).abs() < 1e-9,
        "blocking core cannot overlap misses (MLP {mlp})"
    );
    assert!(
        c.cycle() > 280,
        "two full serial misses ({} cycles)",
        c.cycle()
    );
}

#[test]
fn clflush_makes_the_next_access_slow_again() {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x20_000);
    asm.ld8(Reg::X3, Reg::X2, 0); // cold
    asm.rdcycle(Reg::X10);
    asm.ld8(Reg::X4, Reg::X2, 0); // warm
    asm.rdcycle(Reg::X11);
    asm.clflush(Reg::X2, 0);
    asm.ld8(Reg::X5, Reg::X2, 0); // cold again
    asm.rdcycle(Reg::X12);
    asm.halt();
    let c = run(&asm);
    let warm = c.reg(Reg::X11) - c.reg(Reg::X10);
    let flushed = c.reg(Reg::X12) - c.reg(Reg::X11);
    assert!(
        flushed > warm + 90,
        "flush must restore the miss (warm {warm}, flushed {flushed})"
    );
}

#[test]
fn spec_window_is_free_without_speculation() {
    // SpecOff/SpecOn are no-ops on a core that never speculates.
    let build = |windowed: bool| {
        let mut asm = Asm::new();
        if windowed {
            asm.spec_off();
        }
        asm.li(Reg::X2, 30);
        let done = asm.new_label();
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        if windowed {
            asm.spec_on();
        }
        asm.halt();
        asm
    };
    let plain = run(&build(false));
    let windowed = run(&build(true));
    // Two extra single-cycle instructions, nothing more.
    assert!(windowed.cycle() <= plain.cycle() + 4);
}

#[test]
fn every_cycle_is_accounted() {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x30_000);
    asm.ld8(Reg::X3, Reg::X2, 0);
    asm.mul(Reg::X4, Reg::X3, Reg::X3);
    asm.st8(Reg::X4, Reg::X2, 8);
    asm.halt();
    let c = run(&asm);
    let s = c.stats;
    assert_eq!(
        s.commit_cycles + s.memory_stall_cycles + s.backend_stall_cycles + s.frontend_stall_cycles,
        s.cycles,
        "the in-order cycle classification must also be exhaustive"
    );
    // The load is a full cold miss; the store lands in the just-filled
    // line, so one miss plus a hit dominate the run.
    assert!(s.memory_stall_cycles > 120, "the cold miss dominates");
}

#[test]
fn mispredict_counter_stays_zero() {
    // There is no predictor to be wrong: the counter must stay zero even
    // on wildly data-dependent control flow.
    let mut asm = Asm::new();
    asm.data_u64s(0x9000, &[1, 0, 1, 1, 0, 0, 1, 0]);
    let done = asm.new_label();
    asm.li(Reg::X2, 64);
    asm.li(Reg::X8, 0x9000);
    let top = asm.here_label();
    asm.beq(Reg::X2, Reg::X0, done);
    asm.andi(Reg::X3, Reg::X2, 7);
    asm.shli(Reg::X3, Reg::X3, 3);
    asm.add(Reg::X3, Reg::X3, Reg::X8);
    asm.ld8(Reg::X4, Reg::X3, 0);
    let skip = asm.new_label();
    asm.beq(Reg::X4, Reg::X0, skip);
    asm.addi(Reg::X5, Reg::X5, 1);
    asm.bind(skip);
    asm.subi(Reg::X2, Reg::X2, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    let c = run(&asm);
    assert_eq!(c.stats.branch_mispredicts, 0);
    assert_eq!(c.stats.squashes, 0);
    assert_eq!(c.stats.wrong_path_executed, 0);
}
