//! Regression and refinement tests for the top-down CPI stack.
//!
//! The headline regression: a completed InvisiSpec probe sitting at the
//! ROB head waiting out its exposure/validation access used to be charged
//! to `BackendStall` by the coarse classifier. Those cycles are memory
//! time (or pure defense overhead, `nda-delay`, when the probe hit in
//! L1) — never a backend-execution stall.

use nda_core::snapshot::HeadWait;
use nda_core::{run_variant, OooCore, SimConfig, Variant};
use nda_isa::{Asm, Program, Reg};
use nda_stats::CpiClass;

/// A loop whose branch condition reloads a slow (DRAM-missing on first
/// touch) location while the body issues a fast load feeding dependent
/// adds. Under the speculative shadow of the slow-resolving branch the
/// fast load is unsafe: Strict withholds its broadcast (`nda-delay`) and
/// InvisiSpec turns it into a probe that must await exposure at the head.
fn shadowed_loads_program() -> Program {
    let mut asm = Asm::new();
    asm.data_u64s(0x7000, &[0]);
    asm.data_u64s(0x8000, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let out = asm.new_label();
    let top = asm.new_label();
    asm.li(Reg::X2, 0x8000)
        .li(Reg::X7, 0x7000)
        .li(Reg::X5, 16)
        .li(Reg::X6, 0);
    asm.bind(top);
    asm.ld8(Reg::X9, Reg::X7, 0)
        .bne(Reg::X9, Reg::X0, out)
        .ld8(Reg::X3, Reg::X2, 0)
        .add(Reg::X6, Reg::X6, Reg::X3)
        .add(Reg::X6, Reg::X6, Reg::X3)
        .addi(Reg::X5, Reg::X5, u64::MAX) // -1
        .bne(Reg::X5, Reg::X0, top);
    asm.bind(out);
    asm.halt();
    asm.assemble().unwrap()
}

/// Cycles whose ROB head is a completed probe awaiting exposure must be
/// charged to a memory class (miss in flight), to `nda-delay` (an L1-hit
/// probe: pure defense overhead), or to `commit` (the exposure finished
/// within the same cycle) — never to a backend class.
#[test]
fn exposure_wait_cycles_charge_memory_not_backend() {
    let prog = shadowed_loads_program();
    let mut core = OooCore::new(SimConfig::for_variant(Variant::InvisiSpecSpectre), &prog);
    let mut prev = core.stats.cpi_stack;
    let mut exposure_cycles = 0u64;
    for _ in 0..200_000u64 {
        if core.halted() {
            break;
        }
        let waiting = core
            .snapshot()
            .head
            .is_some_and(|h| h.wait == HeadWait::AwaitingExposure);
        core.step_cycle();
        let cur = core.stats.cpi_stack;
        if waiting {
            exposure_cycles += 1;
            let charged = CpiClass::all()
                .into_iter()
                .find(|&c| cur.get(c) > prev.get(c))
                .expect("every cycle is classified");
            assert!(
                matches!(
                    charged,
                    CpiClass::MemL1
                        | CpiClass::MemL2
                        | CpiClass::MemDram
                        | CpiClass::NdaDelay
                        | CpiClass::Commit
                ),
                "exposure-wait cycle {} charged to {}",
                core.cycle(),
                charged.name()
            );
        }
        prev = cur;
    }
    assert!(core.halted(), "program must finish");
    assert!(
        exposure_cycles > 0,
        "the workload must actually exercise exposure waits"
    );
}

/// The fine stack refines the coarse Fig 9a classes exactly: same commit,
/// same memory, same frontend, and backend = fine backend + nda-delay.
#[test]
fn fine_stack_refines_coarse_classes() {
    let prog = shadowed_loads_program();
    for v in [
        Variant::Ooo,
        Variant::Strict,
        Variant::FullProtection,
        Variant::InvisiSpecSpectre,
        Variant::DelayOnMiss,
        Variant::InOrder,
    ] {
        let s = run_variant(v, &prog, 10_000_000).expect("halts").stats;
        assert_eq!(s.cpi_stack.total(), s.cycles, "{v}: partition");
        assert_eq!(s.cpi_stack.get(CpiClass::Commit), s.commit_cycles, "{v}");
        assert_eq!(s.cpi_stack.memory_total(), s.memory_stall_cycles, "{v}");
        assert_eq!(
            s.cpi_stack.get(CpiClass::FrontendFetch) + s.cpi_stack.get(CpiClass::FrontendSquash),
            s.frontend_stall_cycles,
            "{v}"
        );
        let fine_backend = s.cpi_stack.get(CpiClass::BackendIqFull)
            + s.cpi_stack.get(CpiClass::BackendRobFull)
            + s.cpi_stack.get(CpiClass::BackendLsqFull)
            + s.cpi_stack.get(CpiClass::BackendExec)
            + s.cpi_stack.get(CpiClass::NdaDelay);
        assert_eq!(fine_backend, s.backend_stall_cycles, "{v}");
    }
}

/// Strict propagation on a dependency chain behind unresolved branches
/// must surface nonzero `nda-delay` — the class the whole refactor exists
/// to expose — while Base OoO stays at zero on the same program.
#[test]
fn strict_charges_nda_delay_base_does_not() {
    let prog = shadowed_loads_program();

    let base = run_variant(Variant::Ooo, &prog, 10_000_000).expect("halts");
    let strict = run_variant(Variant::Strict, &prog, 10_000_000).expect("halts");
    assert_eq!(
        base.stats.cpi_stack.get(CpiClass::NdaDelay),
        0,
        "unprotected core can never charge nda-delay"
    );
    assert_eq!(base.regs, strict.regs, "policy never changes architecture");
    assert!(
        strict.stats.cpi_stack.get(CpiClass::NdaDelay) > 0,
        "Strict must charge the deferred-broadcast wait to nda-delay \
         (stack: {:?})",
        strict.stats.cpi_stack
    );
}
