//! Cycle-exact regression pins for the event-driven writeback path.
//!
//! The hot-loop overhaul (completion event queue, incremental wake-up,
//! scratch buffers) must be a pure host-side optimisation: simulated
//! timing is bit-identical to the original full-ROB-scan implementation.
//! These tests pin the exact cycle counts of a mixed load/branch/fence
//! program, captured on the pre-optimisation implementation, so any
//! scheduling drift shows up as a hard failure rather than a silent CPI
//! shift.

use nda_core::{run_with_config, OooCore, SimConfig, Variant, VecSink};
use nda_isa::{Asm, Reg};

/// A program exercising every timing-relevant mechanism at once: cache
/// misses and hits, store->load forwarding, data-dependent branches the
/// predictor keeps mispredicting, a serialising fence, and ALU chains.
fn mixed_program() -> nda_isa::Program {
    let mut asm = Asm::new();
    asm.data_u64s(0x8000, &[3, 1, 4, 1, 5, 9, 2, 6]);
    let done = asm.new_label();
    asm.li(Reg::X2, 0x8000) // table base
        .li(Reg::X3, 8) // loop counter
        .li(Reg::X4, 0) // accumulator
        .li(Reg::X8, 0x9000); // scratch slot
    let top = asm.here_label();
    asm.beq(Reg::X3, Reg::X0, done);
    asm.ld8(Reg::X5, Reg::X2, 0); // table load (cold first, then warm)
    asm.add(Reg::X4, Reg::X4, Reg::X5);
    asm.st8(Reg::X4, Reg::X8, 0); // store ...
    asm.ld8(Reg::X6, Reg::X8, 0); // ... forwarded load
                                  // A data-dependent branch on the low bit of the table value: the
                                  // gshare predictor cannot learn the pattern quickly, so mispredicts
                                  // (and squashes) stay in the mix.
    let even = asm.new_label();
    asm.andi(Reg::X7, Reg::X5, 1);
    asm.beq(Reg::X7, Reg::X0, even);
    asm.addi(Reg::X4, Reg::X4, 100);
    asm.bind(even);
    asm.fence(); // serialise: drains the pipeline every iteration
    asm.addi(Reg::X2, Reg::X2, 8);
    asm.subi(Reg::X3, Reg::X3, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    asm.assemble().unwrap()
}

/// The (variant, cycles, committed instructions) pins, captured from the
/// pre-event-queue scan implementation (seed of this PR). Architectural
/// register results are asserted separately below.
const PINS: &[(Variant, u64, u64)] = &[
    (Variant::Ooo, 629, 99),
    (Variant::Permissive, 629, 99),
    (Variant::Strict, 629, 99),
    (Variant::FullProtection, 629, 99),
    (Variant::InvisiSpecSpectre, 759, 99),
    (Variant::DelayOnMiss, 630, 99),
    // The taint variants pin *equal to Ooo* on this program: nothing here
    // feeds a speculatively-loaded value into a transmit address slot, so
    // the gate never fires and the taint walk must not perturb timing.
    (Variant::SttSpectre, 629, 99),
    (Variant::SttFuturistic, 629, 99),
    (Variant::ShadowBindingEager, 629, 99),
    (Variant::ShadowBindingLazy, 629, 99),
];

/// A pointer chase whose second load's *address* comes from a load issued
/// under a mispredicting data-dependent branch — the canonical
/// taint-gated transmit. Unlike [`mixed_program`], the taint variants
/// must price *above* the insecure baseline here, with the futuristic
/// threat model and the lazy commit-time untaint each paying more.
fn taint_gadget_program() -> nda_isa::Program {
    let mut asm = Asm::new();
    // A table of pointers into a second table of values.
    asm.data_u64s(
        0x8000,
        &[
            0x8100, 0x8108, 0x8110, 0x8118, 0x8120, 0x8128, 0x8130, 0x8138,
        ],
    );
    asm.data_u64s(0x8100, &[3, 1, 4, 1, 5, 9, 2, 6]);
    let done = asm.new_label();
    asm.li(Reg::X2, 0x8000) // pointer-table cursor
        .li(Reg::X3, 8) // loop counter
        .li(Reg::X4, 0); // accumulator
    let top = asm.here_label();
    asm.beq(Reg::X3, Reg::X0, done);
    asm.ld8(Reg::X5, Reg::X2, 0); // pointer load — tainted while a branch is in flight
    asm.ld8(Reg::X6, Reg::X5, 0); // dependent load: tainted address, gate fires
    asm.add(Reg::X4, Reg::X4, Reg::X6);
    // Data-dependent branch the predictor keeps mispredicting, so later
    // iterations always sit behind an unresolved branch.
    let even = asm.new_label();
    asm.andi(Reg::X7, Reg::X6, 1);
    asm.beq(Reg::X7, Reg::X0, even);
    asm.addi(Reg::X4, Reg::X4, 10);
    asm.bind(even);
    asm.addi(Reg::X2, Reg::X2, 8);
    asm.subi(Reg::X3, Reg::X3, 1);
    asm.jmp(top);
    asm.bind(done);
    asm.halt();
    asm.assemble().unwrap()
}

/// Pins for [`taint_gadget_program`]: the insecure baseline, the four
/// taint variants, and FullProtection as the cost ceiling.
const TAINT_PINS: &[(Variant, u64, u64)] = &[
    (Variant::Ooo, 507, 82),
    (Variant::SttSpectre, 535, 82),
    (Variant::SttFuturistic, 540, 82),
    (Variant::ShadowBindingEager, 535, 82),
    (Variant::ShadowBindingLazy, 540, 82),
    (Variant::FullProtection, 560, 82),
];

#[test]
fn taint_gated_pointer_chase_cycle_counts_are_pinned() {
    let prog = taint_gadget_program();
    let mut got = Vec::new();
    for &(v, ..) in TAINT_PINS {
        let mut cfg = SimConfig::for_variant(v);
        cfg.check_invariants = true;
        let r = run_with_config(cfg, &prog, 1_000_000).unwrap();
        println!(
            "    (Variant::{v:?}, {}, {}),",
            r.stats.cycles, r.stats.committed_insts
        );
        // sum = 31, five odd values add 10 each.
        assert_eq!(r.regs[4], 31 + 50, "{v}: wrong architectural result");
        got.push((v, r.stats.cycles, r.stats.committed_insts));
    }
    assert_eq!(
        got, TAINT_PINS,
        "taint-gated timing drifted from the pinned baseline"
    );
    let cycles = |v: Variant| got.iter().find(|(x, ..)| *x == v).unwrap().1;
    // Shape, independent of the exact numbers: gating costs cycles, and
    // the stricter guard/untaint choices cost at least as much.
    assert!(cycles(Variant::SttSpectre) > cycles(Variant::Ooo));
    assert!(cycles(Variant::SttFuturistic) >= cycles(Variant::SttSpectre));
    assert!(cycles(Variant::ShadowBindingLazy) >= cycles(Variant::ShadowBindingEager));
}

#[test]
fn mixed_load_branch_fence_cycle_counts_are_pinned() {
    let prog = mixed_program();
    let mut got = Vec::new();
    for &(v, ..) in PINS {
        let mut cfg = SimConfig::for_variant(v);
        cfg.check_invariants = true;
        let r = run_with_config(cfg, &prog, 1_000_000).unwrap();
        println!(
            "    (Variant::{v:?}, {}, {}),",
            r.stats.cycles, r.stats.committed_insts
        );
        // sum = 31, five odd table entries add 100 each.
        assert_eq!(r.regs[4], 31 + 500, "{v}: wrong architectural result");
        got.push((v, r.stats.cycles, r.stats.committed_insts));
    }
    assert_eq!(
        got, PINS,
        "simulated timing drifted from the pinned baseline"
    );
}

/// Attaching an event sink must not perturb timing: the same pins hold
/// with per-cycle trace draining enabled. (Tracing is observer-only; a
/// drift here means an exporter hook leaked into the schedule.)
#[test]
fn cycle_pins_hold_with_tracing_enabled() {
    let prog = mixed_program();
    for &(v, cycles, insts) in PINS {
        let mut core = OooCore::new(SimConfig::for_variant(v), &prog);
        let mut sink = VecSink::default();
        let r = core.run_with_sink(1_000_000, &mut sink).unwrap();
        assert_eq!(
            (r.stats.cycles, r.stats.committed_insts),
            (cycles, insts),
            "{v}: tracing changed simulated timing"
        );
        assert_eq!(r.regs[4], 31 + 500, "{v}: wrong architectural result");
        assert!(
            !sink.events.is_empty(),
            "{v}: the sink must actually have observed the run"
        );
    }
}
