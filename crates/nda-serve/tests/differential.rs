//! Differential tests: server responses must be byte-identical to the
//! documents the `nda-sim` CLI produces for equivalent invocations —
//! both paths call the same library entry points, and the server
//! sanitizes host-dependent wall-clock counters, so any divergence is
//! a protocol bug, not noise.

use nda_bench::{metrics_document, sweep, SweepConfig, SweepMode};
use nda_core::{run_variant, sanitize_result, Variant};
use nda_serve::{Engine, Request, ServeConfig, DEFAULT_BUDGET};
use nda_workloads::{by_name, WorkloadParams};

fn new_engine() -> Engine {
    Engine::new(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    })
    .expect("engine starts")
}

fn submit_line(engine: &Engine, line: &str) -> std::sync::Arc<nda_serve::Outcome> {
    let req = Request::parse(line).expect("request parses");
    engine.submit(req.op).wait()
}

/// `run` responses carry byte-for-byte what
/// `nda-sim run -w <w> -v <v> --metrics-out` writes.
#[test]
fn run_document_matches_cli_metrics_json() {
    let engine = new_engine();
    let o = submit_line(
        &engine,
        r#"{"id":1,"op":"run","workload":"mcf","variant":"Strict","iters":60}"#,
    );
    assert!(o.ok, "run failed: {:?}", o.error);

    // The CLI path: build the workload, run the variant in full detail,
    // serialize the metrics registry. The server additionally zeroes
    // host wall-clock counters; full-detail runs never set them.
    let w = by_name("mcf").unwrap();
    let prog = (w.build)(&WorkloadParams { seed: 1, iters: 60 });
    let r = run_variant(Variant::Strict, &prog, DEFAULT_BUDGET).unwrap();
    let expected = sanitize_result(r).metrics().to_json();
    assert_eq!(o.document, expected, "server run doc diverged from CLI");
}

/// `sweep` responses carry byte-for-byte what
/// `nda-sim sweep --metrics-out` writes for the same knobs.
#[test]
fn sweep_document_matches_cli_metrics_document() {
    let engine = new_engine();
    let o = submit_line(&engine, r#"{"id":1,"op":"sweep","samples":1,"iters":5}"#);
    assert!(o.ok, "sweep failed: {:?}", o.error);

    // Mirror of the CLI sweep configuration for those knobs (the
    // server pins jobs to its own pool width, which never changes the
    // result bytes — sweeps are bit-identical at any parallelism).
    let cfg = SweepConfig {
        samples: 1,
        iters: 5,
        jobs: 1,
        mode: SweepMode::Full,
        seed: 1,
        retries: 1,
        backoff_ms: 10,
        deadline_cycles: DEFAULT_BUDGET,
        chaos: None,
        ckpt_dir: None,
        ckpt_max_bytes: None,
    };
    let mut r = sweep(nda_workloads::all(), &Variant::all(), cfg);
    for row in &mut r.cells {
        for cell in row {
            for run in &mut cell.runs {
                *run = sanitize_result(*run);
            }
        }
    }
    let expected = metrics_document(&r, 1, 5, 1, 0);
    assert_eq!(o.document, expected, "server sweep doc diverged from CLI");
}

/// Chaos-injected panics degrade individual sweep cells to
/// `"status":"failed"` entries — the response still arrives, and the
/// server keeps answering afterwards.
#[test]
fn chaos_sweep_degrades_cells_but_not_the_server() {
    let engine = new_engine();
    let o = submit_line(
        &engine,
        r#"{"id":1,"op":"sweep","samples":1,"iters":5,"chaos_panic":100,"retries":0,"chaos_seed":7}"#,
    );
    assert!(o.ok, "chaos sweep must degrade, not fail: {:?}", o.error);
    assert!(
        o.document.contains("\"status\":\"failed\""),
        "100% chaos panics must surface failed cells"
    );

    // The worker that absorbed every panic still answers the next
    // request correctly — and byte-identically to an unchaosed engine.
    let after = submit_line(
        &engine,
        r#"{"id":2,"op":"run","workload":"mcf","variant":"OoO","iters":40}"#,
    );
    assert!(
        after.ok,
        "server wedged after chaos sweep: {:?}",
        after.error
    );
    let fresh = submit_line(
        &new_engine(),
        r#"{"id":9,"op":"run","workload":"mcf","variant":"OoO","iters":40}"#,
    );
    assert_eq!(after.document, fresh.document);
}

/// Deterministic across engines: same request, different engine
/// instance (and different shard count) → identical bytes.
#[test]
fn responses_are_engine_instance_independent() {
    let line = r#"{"id":3,"op":"analyze","target":"spectre v1 (cache)","iters":120}"#;
    let a = submit_line(&new_engine(), line);
    let b = submit_line(
        &Engine::new(ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        })
        .unwrap(),
        line,
    );
    assert!(a.ok && b.ok);
    assert_eq!(a.document, b.document);
}
