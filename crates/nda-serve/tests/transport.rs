//! Transport-level tests: the line protocol over in-memory streams and
//! real TCP sockets, exercising ordering, error recovery, cache
//! warm-up across connections, and clean shutdown.

use nda_serve::client::run_batch;
use nda_serve::{ServeConfig, Server};
use std::io::Cursor;
use std::net::TcpListener;

fn new_server() -> Server {
    Server::new(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn response_lines(out: &[u8]) -> Vec<String> {
    String::from_utf8(out.to_vec())
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len()..];
    &rest[..rest.find([',', '}']).unwrap()]
}

#[test]
fn stream_answers_in_order_and_recovers_from_bad_lines() {
    let server = new_server();
    let batch = concat!(
        "# comment and blank lines are skipped, not answered\n",
        "\n",
        r#"{"id":1,"op":"run","workload":"mcf","variant":"Strict","iters":30}"#,
        "\n",
        "this is not json\n",
        r#"{"id":3,"op":"run","workload":"mcf","variant":"Strict","iters":30}"#,
        "\n",
        r#"{"id":4,"op":"stats"}"#,
        "\n",
    );
    let mut out = Vec::new();
    let shutdown = server
        .serve_stream(Cursor::new(batch), &mut out)
        .expect("stream serves");
    assert!(!shutdown, "no shutdown request in this batch");

    let lines = response_lines(&out);
    assert_eq!(lines.len(), 4, "one response per request: {lines:?}");
    assert_eq!(field(&lines[0], "id"), "1");
    assert_eq!(field(&lines[0], "ok"), "true");
    assert_eq!(field(&lines[1], "id"), "0", "unparseable line answers id 0");
    assert_eq!(field(&lines[1], "ok"), "false");
    assert_eq!(field(&lines[2], "id"), "3");
    assert_eq!(field(&lines[2], "ok"), "true");
    // ids 1 and 3 are the same request: identical payloads modulo the
    // id (pipelined duplicates may dedup or memo-hit; either way the
    // document bytes must match).
    assert_eq!(
        lines[0]
            .replace("\"id\":1", "\"id\":3")
            .replace("\"cached\":true", "\"cached\":false"),
        lines[2].replace("\"cached\":true", "\"cached\":false")
    );
    // The trailing stats request observed the whole connection.
    assert_eq!(field(&lines[3], "op"), "\"stats\"");
    assert!(lines[3].contains("serve.requests"));
}

#[test]
fn second_stream_on_same_engine_is_fully_cached() {
    let server = new_server();
    let batch = concat!(
        r#"{"id":1,"op":"run","workload":"gcc","variant":"OoO","iters":30}"#,
        "\n",
        r#"{"id":2,"op":"analyze","target":"spectre v1 (cache)","iters":80}"#,
        "\n",
    );
    let mut first = Vec::new();
    server.serve_stream(Cursor::new(batch), &mut first).unwrap();
    let mut second = Vec::new();
    server
        .serve_stream(Cursor::new(batch), &mut second)
        .unwrap();

    let a = response_lines(&first);
    let b = response_lines(&second);
    assert_eq!(a.len(), 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(field(x, "cached"), "false", "cold pass must execute: {x}");
        assert_eq!(field(y, "cached"), "true", "warm pass must memo-hit: {y}");
        assert_eq!(
            x.replace("\"cached\":false", "\"cached\":true"),
            *y,
            "responses differ beyond the cached flag"
        );
    }
}

#[test]
fn tcp_round_trip_warm_pass_and_shutdown() {
    let server = new_server();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();

    // Run all socket traffic inside the scope but defer every assertion
    // until after shutdown + join: a panic before the shutdown request
    // would leave serve_tcp accepting forever and deadlock the scope.
    let (first, second, ack) = std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve_tcp(listener));

        let batch: Vec<String> = vec![
            r#"{"id":1,"op":"run","workload":"mcf","variant":"FullProtection","iters":30}"#.into(),
            r#"{"id":2,"op":"trace","attack":"spectre v1 (cache)","format":"perfetto"}"#.into(),
        ];
        let mut first = Vec::new();
        let a = run_batch(&addr, &batch, &mut first);
        let mut second = Vec::new();
        let b = run_batch(&addr, &batch, &mut second);

        let mut ack = Vec::new();
        let c = run_batch(
            &addr,
            &[r#"{"id":9,"op":"shutdown"}"#.to_string()],
            &mut ack,
        );
        handle.join().unwrap().expect("serve_tcp exits cleanly");
        (a.map(|_| first), b.map(|_| second), c.map(|_| ack))
    });

    let a = response_lines(&first.expect("first batch"));
    let b = response_lines(&second.expect("second batch"));
    assert_eq!(a.len(), 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(field(x, "ok"), "true", "cold response failed: {x}");
        assert_eq!(
            field(y, "cached"),
            "true",
            "second connection must be warm: {y}"
        );
        assert_eq!(x.replace("\"cached\":false", "\"cached\":true"), *y);
    }
    let ack = response_lines(&ack.expect("shutdown batch"));
    assert!(ack[0].contains("\"op\":\"shutdown\",\"ok\":true"));
}
