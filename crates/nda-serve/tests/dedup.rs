//! In-flight deduplication: N clients submitting the identical request
//! concurrently must yield byte-identical responses from exactly one
//! detailed simulation, and a waiter disconnecting mid-flight must not
//! cost anyone else their response.
//!
//! Determinism: the engine is built with a single shard, and a *decoy*
//! job is submitted first to occupy that shard's worker. The test then
//! spins until the worker has dequeued the decoy
//! (`serve.jobs_executed == 1`) before submitting the duplicates —
//! every duplicate therefore arrives while the only worker is
//! provably busy, so the first becomes the owner and the rest attach
//! as waiters; none can slip through to a memo hit. The decoy runs for
//! orders of magnitude longer than the submissions take.

use nda_serve::{render_response, Engine, Op, Request, ServeConfig};
use nda_stats::serve_names as names;
use proptest::prelude::*;

fn one_shard_engine() -> Engine {
    Engine::new(ServeConfig {
        shards: 1,
        jobs: 1,
        ..ServeConfig::default()
    })
    .expect("engine starts")
}

fn run_op(workload: &str, variant: &str, iters: u64) -> Op {
    Request::parse(&format!(
        r#"{{"id":1,"op":"run","workload":{workload:?},"variant":{variant:?},"iters":{iters}}}"#
    ))
    .expect("request parses")
    .op
}

/// Occupy the single shard worker and return once it has provably
/// dequeued the decoy (so everything submitted after this attaches
/// behind or onto in-flight work, never onto an idle engine).
fn submit_decoy(engine: &Engine) -> nda_serve::Pending {
    let pending = engine.submit(run_op("mcf", "InOrder", 1_500));
    while engine.counter(names::JOBS_EXECUTED) < 1 {
        std::thread::yield_now();
    }
    pending
}

#[test]
fn concurrent_identical_requests_execute_exactly_one_simulation() {
    let engine = one_shard_engine();
    let decoy = submit_decoy(&engine);
    let op = run_op("mcf", "Strict", 40);

    // N "clients": concurrent submit+wait threads, plus one waiter
    // submitted from here and dropped mid-flight (disconnect).
    const N: usize = 6;
    let dropped = engine.submit(op.clone());
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| scope.spawn(|| engine.submit(op.clone()).wait()))
            .collect();
        drop(dropped); // disconnect one waiter while the job is pending
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    assert!(decoy.wait().ok, "decoy run failed");

    // Exactly one detailed simulation for the N+1 duplicates (the
    // other simulation is the decoy), N attached as dedup waiters, and
    // nothing was answered from the memo.
    assert_eq!(
        engine.counter(names::SIMS_EXECUTED),
        2,
        "duplicate simulated twice"
    );
    assert_eq!(engine.counter(names::DEDUP_ATTACHED), N as u64);
    assert_eq!(engine.counter(names::CACHE_HITS), 0);
    assert_eq!(engine.counter(names::JOBS_EXECUTED), 2);

    // Byte-identical responses for every surviving waiter.
    let first = &outcomes[0];
    assert!(first.ok && !first.cached && !first.document.is_empty());
    for o in &outcomes {
        assert_eq!(
            render_response(7, "run", o),
            render_response(7, "run", first),
            "dedup waiters diverged"
        );
    }

    // The next identical submission is a memo hit: cached flag set,
    // same document, still no new simulation.
    let memo = engine.submit(op).wait();
    assert!(memo.cached, "repeat after completion must hit the memo");
    assert_eq!(memo.document, first.document);
    assert_eq!(engine.counter(names::SIMS_EXECUTED), 2);
    assert_eq!(engine.counter(names::CACHE_HITS), 1);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// The dedup contract holds across request shapes: for arbitrary
    /// (workload, variant, iters, fan-out) the duplicates collapse to
    /// one simulation and identical bytes.
    #[test]
    fn duplicate_submissions_collapse(
        wi in 0usize..3,
        vi in 0usize..3,
        iters in 20u64..60,
        n in 2usize..6,
    ) {
        let workloads = ["mcf", "gcc", "xalancbmk"];
        let variants = ["OoO", "Strict", "FullProtection"];
        let engine = one_shard_engine();
        let decoy = submit_decoy(&engine);
        let op = run_op(workloads[wi], variants[vi], iters);
        let pendings: Vec<_> = (0..n).map(|_| engine.submit(op.clone())).collect();
        let outcomes: Vec<_> = pendings.into_iter().map(|p| p.wait()).collect();
        drop(decoy);
        prop_assert_eq!(engine.counter(names::SIMS_EXECUTED), 2);
        prop_assert_eq!(engine.counter(names::DEDUP_ATTACHED), n as u64 - 1);
        for o in &outcomes {
            prop_assert!(o.ok);
            prop_assert_eq!(&o.document, &outcomes[0].document);
            prop_assert_eq!(o.cached, outcomes[0].cached);
        }
    }
}
