//! Load generator for the request engine: a ≥1000-request mixed load
//! (repeated and unique `run`/`analyze` specs, submitted from several
//! client threads) driven straight into an [`nda_serve::Engine`], with
//! the service-level numbers written to `BENCH_serve.json` at the
//! workspace root:
//!
//! * request latency p50 / p99 (exact order statistics over every
//!   request's submit→response time),
//! * cold and warm jobs/sec — the warm phase replays the same request
//!   pool once the memo and result store are populated and must clear
//!   **5× the cold rate** (asserted; this is the headline the
//!   content-addressed caches buy),
//! * cache hit rate, dedup collapse factor (requests answered per
//!   executed job) and per-shard occupancy from the `serve.*` counters.
//!
//! Knobs: `NDA_SERVE_REQUESTS` (total requests, default 1000, floored
//! at twice the pool size), `NDA_SERVE_CLIENTS` (client threads,
//! default 4), `NDA_SERVE_OUT` (redirect the JSON).

use nda_serve::{Engine, Request, ServeConfig};
use nda_stats::serve_names as names;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The request pool: every distinct payload the load is drawn from.
/// Small simulations keep the cold phase bounded; the mix covers
/// single-variant runs, a multi-variant run and analyzer requests.
fn request_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for w in ["mcf", "gcc", "xalancbmk"] {
        for v in [
            "InOrder",
            "OoO",
            "Strict",
            "RestrictedLoads",
            "FullProtection",
        ] {
            for iters in [30u64, 45] {
                pool.push(format!(
                    r#"{{"id":1,"op":"run","workload":{w:?},"variant":{v:?},"iters":{iters}}}"#
                ));
            }
        }
        pool.push(format!(
            r#"{{"id":1,"op":"run","workload":{w:?},"variants":["OoO","Strict"],"iters":30}}"#
        ));
    }
    for target in ["spectre v1 (cache)", "meltdown"] {
        pool.push(format!(
            r#"{{"id":1,"op":"analyze","target":{target:?},"iters":100}}"#
        ));
    }
    pool
}

/// Drive `total` requests from `clients` threads, round-robin over the
/// pool with per-thread offsets (so identical payloads overlap across
/// threads while jobs are in flight — that is what exercises dedup).
/// Returns (wall seconds, per-request latencies in ns).
fn drive(engine: &Engine, pool: &[String], total: usize, clients: usize) -> (f64, Vec<u64>) {
    let next = AtomicUsize::new(0);
    let latencies = Mutex::new(Vec::with_capacity(total));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let next = &next;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    // Stagger thread start points so duplicates of one
                    // payload arrive close together from different
                    // clients rather than strictly serially.
                    let line = &pool[(i + c * 3) % pool.len()];
                    let op = Request::parse(line).expect("pool line parses").op;
                    let t = Instant::now();
                    let o = engine.submit(op).wait();
                    assert!(o.ok, "load request failed: {:?}", o.error);
                    local.push(t.elapsed().as_nanos() as u64);
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    (t0.elapsed().as_secs_f64(), latencies.into_inner().unwrap())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let pool = request_pool();
    let total = env_usize("NDA_SERVE_REQUESTS", 1000).max(2 * pool.len());
    let clients = env_usize("NDA_SERVE_CLIENTS", 4);
    let store_dir = std::env::temp_dir().join(format!("nda-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let engine = Engine::new(ServeConfig {
        result_dir: Some(store_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("engine starts");
    let shards = engine.config().shards;
    println!(
        "serve load: {total} requests over a {}-entry pool, {clients} clients, {shards} shard(s)",
        pool.len()
    );

    // Cold phase: the first wave sees an empty memo and result store, so
    // every distinct payload costs one real job; duplicates in flight
    // collapse onto it. Sized at two rounds of the pool so every payload
    // is requested at least twice.
    let cold_total = 2 * pool.len();
    let (cold_wall, cold_lat) = drive(&engine, &pool, cold_total, clients);
    let cold_rate = cold_total as f64 / cold_wall.max(1e-12);

    // Warm phase: same pool, caches populated — the rest of the budget.
    let warm_total = total.saturating_sub(cold_total).max(pool.len());
    let (warm_wall, warm_lat) = drive(&engine, &pool, warm_total, clients);
    let warm_rate = warm_total as f64 / warm_wall.max(1e-12);

    let mut all: Vec<u64> = cold_lat.iter().chain(&warm_lat).copied().collect();
    all.sort_unstable();
    let (p50, p99) = (percentile(&all, 0.50), percentile(&all, 0.99));
    let mut warm_sorted = warm_lat.clone();
    warm_sorted.sort_unstable();

    let requests = engine.counter(names::REQUESTS);
    let cache_hits = engine.counter(names::CACHE_HITS);
    let dedup_attached = engine.counter(names::DEDUP_ATTACHED);
    let jobs_executed = engine.counter(names::JOBS_EXECUTED);
    let hit_rate = cache_hits as f64 / (requests as f64).max(1.0);
    // Requests answered per executed job: memo hits and attached
    // waiters never reach a worker, so this is the collapse the caches
    // and dedup bought under this load.
    let collapse = requests as f64 / (jobs_executed as f64).max(1.0);
    let occupancy: Vec<u64> = (0..shards)
        .map(|s| engine.counter(&names::shard_jobs(s)))
        .collect();

    println!(
        "cold: {cold_total} requests in {cold_wall:.3}s ({cold_rate:.1}/s) — \
         warm: {warm_total} in {warm_wall:.3}s ({warm_rate:.1}/s, {:.1}x)",
        warm_rate / cold_rate.max(1e-12)
    );
    println!(
        "latency: p50 {:.3}ms p99 {:.3}ms (warm p50 {:.3}ms); cache hit rate {:.3}, \
         dedup attached {dedup_attached}, collapse {collapse:.1} req/job, shard jobs {occupancy:?}",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        percentile(&warm_sorted, 0.50) as f64 / 1e6,
        hit_rate
    );
    assert!(
        warm_rate >= 5.0 * cold_rate,
        "warm throughput {warm_rate:.1}/s must be at least 5x cold {cold_rate:.1}/s"
    );

    let occupancy_json = occupancy
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"nda-bench-serve-v1\",\n\
         \x20 \"params\": {{\"requests\": {}, \"pool\": {}, \"clients\": {clients}, \
         \"shards\": {shards}}},\n\
         \x20 \"latency_ns\": {{\"p50\": {p50}, \"p99\": {p99}, \"warm_p50\": {}, \
         \"warm_p99\": {}}},\n\
         \x20 \"throughput\": {{\"cold_jobs_per_sec\": {cold_rate:.1}, \
         \"warm_jobs_per_sec\": {warm_rate:.1}, \"warm_over_cold\": {:.2}}},\n\
         \x20 \"caching\": {{\"requests\": {requests}, \"cache_hits\": {cache_hits}, \
         \"hit_rate\": {hit_rate:.4}, \"store_hits\": {}, \"dedup_attached\": {dedup_attached}, \
         \"jobs_executed\": {jobs_executed}, \"sims_executed\": {}, \
         \"collapse_requests_per_job\": {collapse:.2}}},\n\
         \x20 \"shard_jobs\": [{occupancy_json}]\n\
         }}\n",
        cold_total + warm_total,
        pool.len(),
        percentile(&warm_sorted, 0.50),
        percentile(&warm_sorted, 0.99),
        warm_rate / cold_rate.max(1e-12),
        engine.counter(names::STORE_HITS),
        engine.counter(names::SIMS_EXECUTED),
    );
    let out = std::env::var("NDA_SERVE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("wrote {out}");
}
