//! Transports: pipelined line-delimited JSON over TCP and
//! stdin/stdout.
//!
//! Each connection runs a reader thread and a writer loop. The reader
//! parses and submits requests as fast as the client sends them — so a
//! batch of identical requests deduplicates onto one in-flight job and
//! independent requests spread across the shards — while the writer
//! waits on the pending outcomes *in request order* and streams the
//! response lines back. Ordering is therefore per-connection FIFO even
//! though execution is out of order across shards.
//!
//! `stats` is resolved when the writer reaches it, i.e. after every
//! earlier response on the connection has been written — a trailing
//! `{"op":"stats"}` in a batch observes the whole batch. `shutdown`
//! acknowledges, stops the reader, and (on TCP) stops the accept loop
//! once the connection drains.

use crate::engine::{render_response, Engine, Pending};
use crate::protocol::{Op, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// A running engine plus the transport plumbing.
pub struct Server {
    engine: Arc<Engine>,
}

/// One unit the writer loop must emit, in request order.
enum Slot {
    /// A malformed line: respond with an error, echoing the id when one
    /// could be parsed.
    Bad { id: u64, error: String },
    /// A submitted job (or an immediately-ready outcome).
    Job {
        id: u64,
        op: &'static str,
        pending: Pending,
        start: Instant,
    },
    /// `stats`: resolved at write time so it observes all earlier
    /// responses on this connection.
    Stats { id: u64 },
    /// `shutdown`: acknowledge, then stop the server after this
    /// connection drains.
    Shutdown { id: u64 },
}

impl Server {
    /// Start the engine with the given configuration.
    pub fn new(cfg: crate::engine::ServeConfig) -> std::io::Result<Server> {
        Ok(Server {
            engine: Arc::new(Engine::new(cfg)?),
        })
    }

    /// The underlying engine (for stats, tests and embedding).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Serve one request stream: read lines from `input`, write one
    /// response line per request to `output` in request order. Returns
    /// when the input ends or a `shutdown` request is processed;
    /// `true` means shutdown was requested.
    pub fn serve_stream(
        &self,
        input: impl BufRead + Send,
        mut output: impl Write,
    ) -> std::io::Result<bool> {
        let engine = &self.engine;
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::sync_channel::<Slot>(1024);
            scope.spawn(move || {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    let trimmed = line.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    let slot = match Request::parse(trimmed) {
                        Err(error) => Slot::Bad {
                            id: recovered_id(trimmed),
                            error,
                        },
                        Ok(Request { id, op: Op::Stats }) => Slot::Stats { id },
                        Ok(Request {
                            id,
                            op: Op::Shutdown,
                        }) => Slot::Shutdown { id },
                        Ok(Request { id, op }) => {
                            let name = op.name();
                            let start = Instant::now();
                            Slot::Job {
                                id,
                                op: name,
                                pending: engine.submit(op),
                                start,
                            }
                        }
                    };
                    let stop = matches!(slot, Slot::Shutdown { .. });
                    if tx.send(slot).is_err() || stop {
                        break;
                    }
                }
            });
            let mut shutdown = false;
            for slot in rx {
                match slot {
                    Slot::Bad { id, error } => {
                        writeln!(
                            output,
                            "{{\"id\":{id},\"ok\":false,\"cached\":false,\"error\":{}}}",
                            nda_stats::escape_json(&error)
                        )?;
                    }
                    Slot::Job {
                        id,
                        op,
                        pending,
                        start,
                    } => {
                        let outcome = pending.wait();
                        engine.record_latency_us(start.elapsed().as_micros() as u64);
                        writeln!(output, "{}", render_response(id, op, &outcome))?;
                    }
                    Slot::Stats { id } => {
                        writeln!(
                            output,
                            "{{\"id\":{id},\"op\":\"stats\",\"ok\":true,\"cached\":false,\
                             \"document\":{}}}",
                            nda_stats::escape_json(&self.engine.stats_document())
                        )?;
                    }
                    Slot::Shutdown { id } => {
                        writeln!(
                            output,
                            "{{\"id\":{id},\"op\":\"shutdown\",\"ok\":true,\"cached\":false}}"
                        )?;
                        shutdown = true;
                        break;
                    }
                }
                output.flush()?;
            }
            output.flush()?;
            Ok(shutdown)
        })
    }

    /// Serve connections on an already-bound listener until a client
    /// sends `shutdown`. Connections are handled on their own threads
    /// and all share the engine (and its caches).
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let stop = stop.clone();
                scope.spawn(move || {
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    if let Ok(true) = self.serve_stream(reader, &stream) {
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it can observe the
                        // stop flag and exit.
                        let _ = TcpStream::connect(addr);
                    }
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                });
            }
        });
        Ok(())
    }
}

/// Best-effort id recovery from a line that failed full parsing, so
/// even the error response can be correlated by the client.
fn recovered_id(line: &str) -> u64 {
    crate::json::Json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(crate::json::Json::as_u64))
        .unwrap_or(0)
}
