//! A small batch client: pipeline a set of request lines to a server
//! and stream the response lines back, in order.
//!
//! This is what `nda-sim client` wraps and what the CI smoke drives:
//! write the whole batch, then read exactly one response line per
//! request. Blank lines and `#` comments in the batch are skipped (and
//! not counted), so request files can be annotated.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Send `lines` (raw request lines; blanks and `#` comments ignored)
/// to the server at `addr` and write each response line to `out`.
/// Returns the number of responses received.
pub fn run_batch(addr: &str, lines: &[String], out: &mut impl Write) -> std::io::Result<usize> {
    let requests: Vec<&str> = lines
        .iter()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let stream = TcpStream::connect(addr)?;
    let mut w = stream.try_clone()?;
    for line in &requests {
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    let reader = BufReader::new(&stream);
    let mut got = 0;
    for line in reader.lines() {
        let line = line?;
        writeln!(out, "{line}")?;
        got += 1;
        if got == requests.len() {
            break;
        }
    }
    if got < requests.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("server closed after {got} of {} responses", requests.len()),
        ));
    }
    Ok(got)
}
