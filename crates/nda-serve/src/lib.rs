//! # nda-serve — the long-running simulation server
//!
//! Batch-oriented front end over the whole reproduction: a line-
//! delimited JSON protocol (over TCP or stdin/stdout) accepting `run`,
//! `sweep`, `analyze` and `trace` requests and streaming back the same
//! documents the `nda-sim` CLI writes — metrics-registry JSON,
//! `nda-metrics-v1` sweep documents, Perfetto/Konata traces —
//! byte-for-byte.
//!
//! Performance is the point: requests are content-addressed with the
//! same hash+verbatim-material discipline as `nda_core::ckpt_store`,
//! answered from an in-memory memo or the persistent
//! [`nda_core::ResultStore`] when possible, deduplicated onto a single
//! in-flight job when identical requests race, and sharded by key so
//! cache-affine work lands on the same worker. One poisoned job
//! degrades one response (the PR 6 [`nda_bench::JobError`] taxonomy),
//! never the server. See DESIGN.md §15 for the architecture and the
//! `serve_load` bench (`BENCH_serve.json`) for the measured latency,
//! throughput, cache-hit and dedup-collapse numbers.
//!
//! ```
//! use nda_serve::{Engine, Op, Request, ServeConfig};
//!
//! let engine = Engine::new(ServeConfig { shards: 1, ..ServeConfig::default() })?;
//! let req = Request::parse(r#"{"id":1,"op":"run","workload":"mcf","iters":40}"#)?;
//! let first = engine.submit(req.op.clone()).wait();
//! let again = engine.submit(req.op).wait();
//! assert!(first.ok && !first.cached);
//! assert!(again.cached, "identical request must be a cache hit");
//! assert_eq!(first.document, again.document);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod json;
pub mod protocol;
pub mod server;

pub use engine::{render_response, Engine, Outcome, Pending, ServeConfig};
pub use protocol::{
    AnalyzeSpec, Op, Request, RunSpec, SweepSpec, TraceSpec, DEFAULT_BUDGET, PROTOCOL_MAGIC,
};
pub use server::Server;
