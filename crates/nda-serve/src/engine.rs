//! The request engine: sharded worker pools, in-flight deduplication
//! and two layers of content-addressed result caching.
//!
//! ## Shape
//!
//! ```text
//! submit(op) ──key──▶ memo? ──hit──▶ Ready(outcome, cached=true)
//!     │ miss
//!     ├──▶ inflight? ──yes──▶ attach waiter (dedup; no new job)
//!     │ no
//!     └──▶ enqueue on shard (key.hash % shards) ──▶ worker executes
//!              run cells: result store? ──hit──▶ skip the simulation
//!                                       └─miss─▶ simulate, store, publish
//! ```
//!
//! * **Memo** — an in-memory map from request key material to the
//!   finished [`Outcome`] (the full response payload). Hits never touch
//!   a queue. Bounded; evicted wholesale past the cap (recomputation is
//!   deterministic, so eviction can never change response bytes).
//! * **In-flight dedup** — while a key is being computed, further
//!   submissions of the same key attach to the owner's job. N
//!   concurrent identical requests execute exactly one simulation and
//!   all N receive byte-identical responses. A waiter that disconnects
//!   mid-flight just drops its receiver; publishing ignores it.
//! * **Shards** — each shard is one queue + one persistent worker
//!   thread; jobs land on `hash % shards`, so repeated and related keys
//!   are cache-affine to one worker instead of bouncing across the
//!   pool. Multi-variant `run` requests fan their cells across the
//!   PR 2 sweep executor ([`nda_bench::execute_jobs`]) inside the
//!   owning shard.
//! * **Result store** — finished run cells are persisted via
//!   [`nda_core::ResultStore`], content-addressed by the same
//!   hash+verbatim-material discipline as the checkpoint store, so a
//!   restarted server answers repeat runs without simulating.
//! * **Fault isolation** — every job (and every run cell) runs under
//!   `catch_unwind`; failures degrade to the [`JobError`] taxonomy on
//!   that one response. Budgets are enforced by the forward-progress
//!   watchdog via the per-request cycle limit, clamped to the
//!   server-wide [`ServeConfig::deadline_cycles`].

use crate::protocol::{AnalyzeSpec, Op, RunSpec, SweepSpec, TraceSpec};
use nda_attacks::AttackKind;
use nda_bench::{
    execute_jobs, metrics_document, panic_message, silence_contained_panics, sweep, Chaos,
    JobError, SweepConfig, SweepMode,
};
use nda_core::{
    collect_checkpoints_cached, run_sampled_with, run_variant, sanitize_result, CheckpointStore,
    OooCore, ResultKey, ResultStore, RunResult, SampledParams, SimConfig, SimError, Variant,
};
use nda_stats::serve_names as names;
use nda_stats::{escape_json, Hist, MetricsRegistry};
use nda_trace::{KonataSink, PerfettoSink, TraceFormat};
use nda_workloads::{by_name, Workload, WorkloadParams};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Engine configuration. `Default` matches the CLI: one worker per
/// host core, serial cells within a request, the CLI cycle budget, no
/// persistence.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard worker threads (≥ 1). Jobs land on `key.hash % shards`.
    pub shards: usize,
    /// Worker threads a single multi-variant run or sweep job may fan
    /// out to (≥ 1). These nest inside the owning shard worker.
    pub jobs: usize,
    /// Server-wide cycle-budget ceiling; per-request budgets are
    /// clamped to it before the watchdog enforces them.
    pub deadline_cycles: u64,
    /// Persistent result store directory (`None` = memo only).
    pub result_dir: Option<PathBuf>,
    /// Size cap for the result store (oldest-first GC past it).
    pub result_max_bytes: Option<u64>,
    /// Persistent checkpoint store for sampled runs.
    pub ckpt_dir: Option<PathBuf>,
    /// Size cap for the checkpoint store.
    pub ckpt_max_bytes: Option<u64>,
    /// Memo entries kept before wholesale eviction.
    pub memo_max: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            jobs: 1,
            deadline_cycles: crate::protocol::DEFAULT_BUDGET,
            result_dir: None,
            result_max_bytes: None,
            ckpt_dir: None,
            ckpt_max_bytes: None,
            memo_max: 4_096,
        }
    }
}

/// A finished response payload. `cached` is outcome-level: `true`
/// means no detailed simulation ran to produce it (memo hit, or every
/// run cell came from the persistent store) — every waiter attached to
/// the same job sees the same flag, so dedup responses stay
/// byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// `false` turns the response into an error line.
    pub ok: bool,
    /// Served without executing a simulation.
    pub cached: bool,
    /// The payload document (empty = omitted from the response).
    pub document: String,
    /// Error text (`<kind>: <detail>` for job failures).
    pub error: Option<String>,
}

impl Outcome {
    fn fail(error: String) -> Outcome {
        Outcome {
            ok: false,
            cached: false,
            document: String::new(),
            error: Some(error),
        }
    }
}

/// Render one response line (no trailing newline).
pub fn render_response(id: u64, op: &str, o: &Outcome) -> String {
    let mut line = format!(
        "{{\"id\":{id},\"op\":{},\"ok\":{},\"cached\":{}",
        escape_json(op),
        o.ok,
        o.cached
    );
    if let Some(e) = &o.error {
        line.push_str(",\"error\":");
        line.push_str(&escape_json(e));
    }
    if !o.document.is_empty() {
        line.push_str(",\"document\":");
        line.push_str(&escape_json(&o.document));
    }
    line.push('}');
    line
}

/// A response that may still be in flight; [`Pending::wait`] blocks
/// until the owning job publishes. Dropping a pending waiter is safe
/// at any point — the job continues for the other waiters.
pub enum Pending {
    /// Answered at submit time (memo hit, stats, validation error).
    Ready(Arc<Outcome>),
    /// Waiting on the owning job.
    Waiting(mpsc::Receiver<Arc<Outcome>>),
}

impl Pending {
    /// Block until the outcome is available.
    pub fn wait(self) -> Arc<Outcome> {
        match self {
            Pending::Ready(o) => o,
            Pending::Waiting(rx) => rx.recv().unwrap_or_else(|_| {
                Arc::new(Outcome::fail(
                    "io: engine shut down before the job published".into(),
                ))
            }),
        }
    }
}

struct Job {
    key: ResultKey,
    op: Op,
}

#[derive(Default)]
struct CacheMaps {
    /// Request key material → finished outcome (with `cached: true`).
    memo: HashMap<Vec<u8>, Arc<Outcome>>,
    /// Request key material → waiters of the in-flight owner job.
    inflight: HashMap<Vec<u8>, Vec<mpsc::Sender<Arc<Outcome>>>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    store_hits: AtomicU64,
    dedup_attached: AtomicU64,
    jobs_executed: AtomicU64,
    sims_executed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_panicked: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    caches: Mutex<CacheMaps>,
    store: Option<ResultStore>,
    ckpt: Option<CheckpointStore>,
    c: Counters,
    shard_jobs: Vec<AtomicU64>,
    latency_us: Mutex<Hist>,
}

/// The request engine. Cheap to share (`Arc`); [`Engine::submit`] is
/// safe from any number of threads.
pub struct Engine {
    shared: Arc<Shared>,
    queues: Mutex<Vec<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Open the stores and start the shard workers.
    pub fn new(cfg: ServeConfig) -> std::io::Result<Engine> {
        // Chaos panics inside sweep jobs are contained and reported as
        // degraded cells; keep their banners off the server's stderr.
        silence_contained_panics();
        let cfg = ServeConfig {
            shards: cfg.shards.max(1),
            jobs: cfg.jobs.max(1),
            ..cfg
        };
        let store = match &cfg.result_dir {
            Some(dir) => Some(ResultStore::open(dir)?.with_max_bytes(cfg.result_max_bytes)),
            None => None,
        };
        let ckpt = match &cfg.ckpt_dir {
            Some(dir) => Some(CheckpointStore::open(dir)?.with_max_bytes(cfg.ckpt_max_bytes)),
            None => None,
        };
        let shards = cfg.shards;
        let shared = Arc::new(Shared {
            cfg,
            caches: Mutex::new(CacheMaps::default()),
            store,
            ckpt,
            c: Counters::default(),
            shard_jobs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            latency_us: Mutex::new(Hist::new()),
        });
        let mut queues = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for n in 0..shards {
            let (tx, rx) = mpsc::channel::<Job>();
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("nda-serve-shard-{n}"))
                .spawn(move || worker_loop(&shared, n, rx))
                .expect("spawn shard worker");
            queues.push(tx);
            workers.push(handle);
        }
        Ok(Engine {
            shared,
            queues: Mutex::new(queues),
            workers: Mutex::new(workers),
        })
    }

    /// Submit one operation. Memo hits and `stats`/`shutdown` resolve
    /// immediately; everything else enqueues (or attaches to an
    /// identical in-flight job) and resolves via [`Pending::wait`].
    pub fn submit(&self, op: Op) -> Pending {
        self.shared.c.requests.fetch_add(1, Ordering::Relaxed);
        let Some(material) = op.key_material() else {
            // stats/shutdown: answered inline, never cached.
            let doc = match op {
                Op::Stats => self.stats_document(),
                _ => String::new(),
            };
            return Pending::Ready(Arc::new(Outcome {
                ok: true,
                cached: false,
                document: doc,
                error: None,
            }));
        };
        let key = ResultKey::from_material(material);
        let (tx, rx) = mpsc::channel();
        {
            let mut caches = self.shared.caches.lock().unwrap();
            if let Some(hit) = caches.memo.get(key.material()) {
                self.shared.c.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Pending::Ready(hit.clone());
            }
            if let Some(waiters) = caches.inflight.get_mut(key.material()) {
                waiters.push(tx);
                self.shared.c.dedup_attached.fetch_add(1, Ordering::Relaxed);
                return Pending::Waiting(rx);
            }
            caches.inflight.insert(key.material().to_vec(), vec![tx]);
            let queues = self.queues.lock().unwrap();
            if queues.is_empty() {
                // Shut down: unwind the reservation and fail fast.
                caches.inflight.remove(key.material());
                return Pending::Ready(Arc::new(Outcome::fail("io: engine is shut down".into())));
            }
            let shard = (key.hash() % queues.len() as u64) as usize;
            queues[shard]
                .send(Job { key, op })
                .expect("shard worker alive while sender is held");
        }
        Pending::Waiting(rx)
    }

    /// Snapshot the `serve.*` health metrics as a registry.
    pub fn stats_registry(&self) -> MetricsRegistry {
        let c = &self.shared.c;
        let mut m = MetricsRegistry::new();
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        m.counter(names::REQUESTS, load(&c.requests));
        m.counter(names::CACHE_HITS, load(&c.cache_hits));
        m.counter(names::STORE_HITS, load(&c.store_hits));
        m.counter(names::DEDUP_ATTACHED, load(&c.dedup_attached));
        m.counter(names::JOBS_EXECUTED, load(&c.jobs_executed));
        m.counter(names::SIMS_EXECUTED, load(&c.sims_executed));
        m.counter(names::JOBS_FAILED, load(&c.jobs_failed));
        m.counter(names::JOBS_PANICKED, load(&c.jobs_panicked));
        for (n, jobs) in self.shared.shard_jobs.iter().enumerate() {
            m.counter(&names::shard_jobs(n), load(jobs));
        }
        m.histogram(names::LATENCY_US, *self.shared.latency_us.lock().unwrap());
        m
    }

    /// The `stats` response document.
    pub fn stats_document(&self) -> String {
        self.stats_registry().to_json()
    }

    /// One `serve.*` counter by name (0 when absent) — the assertion
    /// surface for tests and the CI smoke.
    pub fn counter(&self, name: &str) -> u64 {
        self.stats_registry().get_counter(name).unwrap_or(0)
    }

    /// Record one end-to-end request latency (transports call this as
    /// they write each response).
    pub fn record_latency_us(&self, us: u64) {
        self.shared.latency_us.lock().unwrap().observe(us);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Drain and stop the shard workers: queues close, workers finish
    /// everything already enqueued (publishing as usual), then exit
    /// and are joined. Any waiter left attached to a job that somehow
    /// never ran receives an error outcome instead of blocking
    /// forever. Idempotent.
    pub fn shutdown(&self) {
        self.queues.lock().unwrap().clear();
        let workers: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // Fail any jobs that never ran so no waiter blocks forever.
        let orphans: Vec<_> = {
            let mut caches = self.shared.caches.lock().unwrap();
            caches.inflight.drain().collect()
        };
        for (_, waiters) in orphans {
            let o = Arc::new(Outcome::fail(
                "io: engine shut down before the job ran".into(),
            ));
            for w in waiters {
                let _ = w.send(o.clone());
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, shard: usize, rx: mpsc::Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        shared.c.jobs_executed.fetch_add(1, Ordering::Relaxed);
        shared.shard_jobs[shard].fetch_add(1, Ordering::Relaxed);
        let outcome =
            catch_unwind(AssertUnwindSafe(|| execute(shared, &job.op))).unwrap_or_else(|p| {
                shared.c.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                Outcome::fail(format!("panic: {}", panic_message(p)))
            });
        if !outcome.ok {
            shared.c.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        publish(shared, &job.key, Arc::new(outcome));
    }
}

/// Publish a finished outcome: memoize it (flagged `cached` for future
/// hits) and wake every waiter with the original. Disconnected waiters
/// (dropped receivers) are skipped silently.
fn publish(shared: &Shared, key: &ResultKey, outcome: Arc<Outcome>) {
    let waiters = {
        let mut caches = shared.caches.lock().unwrap();
        if caches.memo.len() >= shared.cfg.memo_max {
            // Wholesale epoch eviction: recomputation is deterministic,
            // so dropping the memo can never change response bytes.
            caches.memo.clear();
        }
        caches.memo.insert(
            key.material().to_vec(),
            Arc::new(Outcome {
                cached: true,
                ..(*outcome).clone()
            }),
        );
        caches.inflight.remove(key.material()).unwrap_or_default()
    };
    for w in waiters {
        let _ = w.send(outcome.clone());
    }
}

fn execute(shared: &Shared, op: &Op) -> Outcome {
    match op {
        Op::Run(spec) => execute_run(shared, spec),
        Op::Sweep(spec) => execute_sweep(shared, spec),
        Op::Analyze(spec) => execute_analyze(spec),
        Op::Trace(spec) => execute_trace(shared, spec),
        // Unreachable through submit(); kept total for robustness.
        Op::Stats | Op::Shutdown => Outcome {
            ok: true,
            cached: false,
            document: String::new(),
            error: None,
        },
    }
}

/// Run one (workload, variant) cell: persistent store first, then a
/// contained simulation. Returns the sanitized result and whether the
/// store answered it.
fn run_cell(shared: &Shared, spec: &RunSpec, v: Variant) -> Result<(RunResult, bool), JobError> {
    let key = ResultKey::from_material(spec.cell_material(v));
    if let Some(store) = &shared.store {
        if let Some(r) = store.load(&key) {
            shared.c.store_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((r, true));
        }
    }
    let budget = spec.budget.min(shared.cfg.deadline_cycles);
    shared.c.sims_executed.fetch_add(1, Ordering::Relaxed);
    let sim = catch_unwind(AssertUnwindSafe(|| simulate_cell(shared, spec, v, budget)));
    let r = match sim {
        Err(p) => {
            shared.c.jobs_panicked.fetch_add(1, Ordering::Relaxed);
            return Err(JobError::Panicked {
                message: panic_message(p),
            });
        }
        Ok(Err(e)) => return Err(JobError::from_sim(e, budget)),
        Ok(Ok(r)) => sanitize_result(r),
    };
    if let Some(store) = &shared.store {
        // Persistence is an optimisation; a full disk degrades to
        // recomputation, not to a failed response.
        let _ = store.save(&key, &r);
    }
    Ok((r, false))
}

fn simulate_cell(
    shared: &Shared,
    spec: &RunSpec,
    v: Variant,
    budget: u64,
) -> Result<RunResult, SimError> {
    let w = by_name(&spec.workload).expect("workload validated at parse time");
    let prog = (w.build)(&WorkloadParams {
        seed: spec.seed,
        iters: spec.iters,
    });
    if spec.sample_every > 0 {
        let params = SampledParams::new(spec.sample_every, spec.warm, spec.detail);
        let cfg = SimConfig::for_variant(v);
        let (set, _warm_hit) =
            collect_checkpoints_cached(shared.ckpt.as_ref(), &cfg, &prog, params, budget)?;
        run_sampled_with(cfg, &prog, &set, params)
    } else {
        run_variant(v, &prog, budget)
    }
}

fn execute_run(shared: &Shared, spec: &RunSpec) -> Outcome {
    if !spec.wrap {
        let v = spec.variants[0];
        return match run_cell(shared, spec, v) {
            Ok((r, hit)) => Outcome {
                ok: true,
                cached: hit,
                // Byte-for-byte what `nda-sim run --metrics-out` writes.
                document: r.metrics().to_json(),
                error: None,
            },
            Err(e) => Outcome::fail(format!("{}: {e}", e.kind_label())),
        };
    }
    let n = spec.variants.len();
    let jobs = shared.cfg.jobs.min(n).max(1);
    let cells = execute_jobs(n, jobs, |i| run_cell(shared, spec, spec.variants[i]));
    let mut entries = String::new();
    let mut all_hits = true;
    for (v, cell) in spec.variants.iter().zip(&cells) {
        if !entries.is_empty() {
            entries.push(',');
        }
        match cell {
            Some(Ok((r, hit))) => {
                all_hits &= hit;
                entries.push_str(&format!(
                    "{{\"variant\":{},\"status\":\"ok\",\"metrics\":{}}}",
                    escape_json(v.name()),
                    r.metrics().to_json()
                ));
            }
            Some(Err(e)) => {
                all_hits = false;
                entries.push_str(&format!(
                    "{{\"variant\":{},\"status\":\"failed\",\"error\":{}}}",
                    escape_json(v.name()),
                    escape_json(&format!("{}: {e}", e.kind_label()))
                ));
            }
            // execute_jobs only leaves None when a worker dies; run_cell
            // contains its own panics, so treat this as a lost cell.
            None => {
                all_hits = false;
                entries.push_str(&format!(
                    "{{\"variant\":{},\"status\":\"failed\",\"error\":\"panic: cell worker died\"}}",
                    escape_json(v.name())
                ));
            }
        }
    }
    Outcome {
        ok: true,
        cached: all_hits,
        document: format!(
            "{{\"schema\":\"nda-run-v1\",\"workload\":{},\"iters\":{},\"seed\":{},\
             \"sample_every\":{},\"variants\":[{}]}}",
            escape_json(&spec.workload),
            spec.iters,
            spec.seed,
            spec.sample_every,
            entries
        ),
        error: None,
    }
}

fn execute_sweep(shared: &Shared, spec: &SweepSpec) -> Outcome {
    let cfg = SweepConfig {
        samples: spec.samples,
        iters: spec.iters,
        jobs: spec.jobs.unwrap_or(shared.cfg.jobs).max(1),
        mode: if spec.sample_every > 0 {
            SweepMode::Sampled(SampledParams::new(
                spec.sample_every,
                spec.warm,
                spec.detail,
            ))
        } else {
            SweepMode::Full
        },
        seed: spec.seed,
        retries: spec.retries,
        backoff_ms: 10,
        deadline_cycles: spec.deadline_cycles.min(shared.cfg.deadline_cycles),
        chaos: (spec.chaos_panic > 0 || spec.chaos_slow > 0).then_some(Chaos {
            seed: spec.chaos_seed,
            panic_pct: spec.chaos_panic,
            slow_pct: spec.chaos_slow,
            target: None,
        }),
        ckpt_dir: shared.cfg.ckpt_dir.clone(),
        ckpt_max_bytes: shared.cfg.ckpt_max_bytes,
    };
    let mut r = sweep(nda_workloads::all(), &Variant::all(), cfg);
    // Zero the host-dependent wall-clock counters so the document —
    // and therefore the response — is a pure function of the request.
    for row in &mut r.cells {
        for cell in row {
            for run in &mut cell.runs {
                *run = sanitize_result(*run);
            }
        }
    }
    Outcome {
        ok: true,
        cached: false,
        // Byte-for-byte what `nda-sim sweep --metrics-out` writes
        // (degraded cells appear as "status":"failed" entries).
        document: metrics_document(&r, spec.samples, spec.iters, spec.seed, spec.sample_every),
        error: None,
    }
}

/// A validated `analyze` target.
pub(crate) enum AnalyzeTarget {
    /// An attack PoC (carries its secret labeling).
    Attack(AttackKind),
    /// A synthetic workload (empty labeling).
    Workload(&'static Workload),
}

/// Fuzzy attack lookup, same rules as the CLI.
pub(crate) fn parse_attack(name: &str) -> Option<AttackKind> {
    let squash = |s: &str| {
        s.to_ascii_lowercase()
            .replace([' ', '-', '_', '(', ')'], "")
    };
    AttackKind::all()
        .into_iter()
        .find(|k| squash(k.name()).contains(&squash(name)))
}

/// Resolve an analyze target: attack name first, then workload name.
pub(crate) fn resolve_analyze_target(name: &str) -> Option<AnalyzeTarget> {
    if let Some(k) = parse_attack(name) {
        return Some(AnalyzeTarget::Attack(k));
    }
    by_name(name).map(AnalyzeTarget::Workload)
}

fn execute_analyze(spec: &AnalyzeSpec) -> Outcome {
    use nda_analyze::{analyze, AnalyzeConfig};
    let (prog, secret_spec) = match resolve_analyze_target(&spec.target) {
        Some(AnalyzeTarget::Attack(k)) => (k.program(spec.secret), k.secret_spec()),
        Some(AnalyzeTarget::Workload(w)) => (
            (w.build)(&WorkloadParams {
                seed: spec.seed,
                iters: spec.iters,
            }),
            nda_isa::SecretSpec::empty(),
        ),
        None => return Outcome::fail(format!("unknown analyze target {:?}", spec.target)),
    };
    let mut cfg = AnalyzeConfig::default();
    if let Some(w) = spec.window {
        cfg.window = w as usize;
    }
    Outcome {
        ok: true,
        cached: false,
        // The same JSON `nda-sim analyze --json` prints.
        document: analyze(&prog, &secret_spec, &cfg).to_json(),
        error: None,
    }
}

fn execute_trace(shared: &Shared, spec: &TraceSpec) -> Outcome {
    let Some(k) = parse_attack(&spec.attack) else {
        return Outcome::fail(format!("unknown attack {:?}", spec.attack));
    };
    let mut cfg = SimConfig::for_variant(spec.variant);
    k.tweak_config(&mut cfg);
    let prog = k.program(spec.secret);
    let budget = spec.budget.min(shared.cfg.deadline_cycles);
    let mut core = OooCore::new(cfg, &prog);
    let (run, payload) = match spec.format {
        TraceFormat::Perfetto => {
            let mut sink = PerfettoSink::new();
            let run = core.run_with_sink(budget, &mut sink);
            (run, sink.into_json())
        }
        TraceFormat::Konata => {
            let mut sink = KonataSink::new();
            let run = core.run_with_sink(budget, &mut sink);
            (run, sink.into_log())
        }
    };
    match run {
        Ok(_) => Outcome {
            ok: true,
            cached: false,
            document: payload,
            error: None,
        },
        // Like the CLI, the partial trace is exactly what one wants
        // when the traced run errors out — ship it with the error.
        Err(e) => {
            let e = JobError::from_sim(e, budget);
            Outcome {
                ok: false,
                cached: false,
                document: payload,
                error: Some(format!("{}: {e}", e.kind_label())),
            }
        }
    }
}
