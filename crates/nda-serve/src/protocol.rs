//! The line-delimited JSON wire protocol and its content-addressed key
//! material.
//!
//! One request per line, one response per line, ids echoed verbatim and
//! responses delivered in request order per connection. Every request
//! is an object with an integer `"id"`, an `"op"`, and op-specific
//! fields whose defaults mirror the `nda-sim` CLI exactly — a `run`
//! request with only a workload behaves like `nda-sim run <w>`:
//!
//! ```json
//! {"id":1,"op":"run","workload":"mcf","variant":"Strict","iters":120}
//! {"id":2,"op":"run","workload":"gcc","variants":["OoO","FullProtection"]}
//! {"id":3,"op":"sweep","samples":1,"iters":40,"chaos_panic":30}
//! {"id":4,"op":"analyze","target":"spectre v1 (cache)"}
//! {"id":5,"op":"trace","attack":"meltdown","variant":"Strict"}
//! {"id":6,"op":"stats"}
//! {"id":7,"op":"shutdown"}
//! ```
//!
//! Responses are single lines; multi-line payloads (the sweep metrics
//! document, Perfetto traces) are carried as one escaped JSON string in
//! `"document"`, byte-for-byte what the equivalent CLI invocation would
//! have written to `--metrics-out`/`--trace-out`:
//!
//! ```json
//! {"id":1,"op":"run","ok":true,"cached":false,"document":"{\"counters\":..."}
//! {"id":9,"op":"run","ok":false,"cached":false,"error":"sim-error: ..."}
//! ```
//!
//! `"cached"` describes the *outcome*, not the waiter: `true` means the
//! response was produced without executing a detailed simulation (memo
//! hit, or every run cell loaded from the persistent result store). All
//! waiters deduplicated onto one in-flight job therefore receive
//! byte-identical lines.
//!
//! ## Key material
//!
//! Each cacheable op serializes its full semantic parameter set — and
//! nothing host-dependent — into a canonical byte string
//! ([`Op::key_material`]), hashed and stored exactly like
//! `nda_core::ckpt_store` keys: the material rides along with cached
//! entries and is compared byte-for-byte on lookup, so a hash collision
//! is a clean miss, never a wrong answer. Fields that cannot change the
//! response bytes (worker counts) are deliberately excluded; fields
//! that can (chaos plans, deadlines, retry budgets) are included.

use crate::json::Json;
use nda_core::Variant;
use nda_trace::TraceFormat;

/// Version tag leading every key-material string; bump on any layout
/// change so stale cache entries miss cleanly.
pub const PROTOCOL_MAGIC: &str = "nda-serve-v1";

/// Default per-request cycle budget, matching the CLI's `MAX_CYCLES`.
pub const DEFAULT_BUDGET: u64 = 2_000_000_000;

/// A `run` request: one workload under one or more variants.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Workload name (validated at parse time).
    pub workload: String,
    /// Variants to run, in request order.
    pub variants: Vec<Variant>,
    /// `true` when the request used the `"variants"` array form; the
    /// response document is then the wrapped per-variant form even for
    /// a single-element array.
    pub wrap: bool,
    /// Workload iterations (`--iters`, default 200).
    pub iters: u64,
    /// Workload seed (`--seed`, default 1).
    pub seed: u64,
    /// Sampled simulation interval (`--sample-every`, default 0 = full
    /// detail).
    pub sample_every: u64,
    /// Sampled window warm-up instructions (`--warm`, default 2000).
    pub warm: u64,
    /// Sampled window measured instructions (`--detail`, default 2000).
    pub detail: u64,
    /// Per-request cycle budget; the engine clamps it to its own
    /// server-wide deadline before enforcing it via the watchdog.
    pub budget: u64,
}

/// A `sweep` request: the full workloads × variants grid, exactly like
/// `nda-sim sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Samples per cell (default 2).
    pub samples: u64,
    /// Iterations per sample (default 200).
    pub iters: u64,
    /// Base seed (default 1).
    pub seed: u64,
    /// Sampled simulation interval (default 0 = full detail).
    pub sample_every: u64,
    /// Sampled warm-up instructions (default 2000).
    pub warm: u64,
    /// Sampled measured instructions (default 2000).
    pub detail: u64,
    /// Worker threads for this sweep; `None` = the engine's configured
    /// per-request parallelism. Excluded from key material (any value
    /// yields bit-identical results).
    pub jobs: Option<usize>,
    /// Extra attempts per failed cell (default 1).
    pub retries: u32,
    /// Per-cell cycle deadline (default the request budget).
    pub deadline_cycles: u64,
    /// Chaos: panic percentage (default 0).
    pub chaos_panic: u8,
    /// Chaos: starvation percentage (default 0).
    pub chaos_slow: u8,
    /// Chaos decision seed (default 0).
    pub chaos_seed: u64,
}

/// An `analyze` request: static leakage analysis of an attack or
/// workload (file targets are a CLI-only affordance).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeSpec {
    /// Attack or workload name, resolved in that order.
    pub target: String,
    /// Attack secret byte (default 42).
    pub secret: u8,
    /// Speculation-window override (default: ROB size).
    pub window: Option<u64>,
    /// Workload iterations when the target is a workload (default 200).
    pub iters: u64,
    /// Workload seed when the target is a workload (default 1).
    pub seed: u64,
}

/// A `trace` request: run an attack on an out-of-order variant with the
/// full pipeline event trace exported.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Attack name (fuzzy-matched like the CLI).
    pub attack: String,
    /// Core variant; must be out-of-order.
    pub variant: Variant,
    /// Secret byte (default 42).
    pub secret: u8,
    /// Export format (default Perfetto).
    pub format: TraceFormat,
    /// Cycle budget for the traced run.
    pub budget: u64,
}

/// One parsed operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Simulate a workload under a set of variants.
    Run(RunSpec),
    /// The full normalised-CPI sweep grid.
    Sweep(SweepSpec),
    /// Static speculative-leakage analysis.
    Analyze(AnalyzeSpec),
    /// Pipeline event trace of an attack window.
    Trace(TraceSpec),
    /// Snapshot of the engine's `serve.*` metrics.
    Stats,
    /// Acknowledge, then stop accepting connections.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed on the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

/// Fuzzy variant lookup, same rules as the CLI (`"full-protection"`,
/// `"FullProtection"`, `"full protection"` all resolve).
pub fn parse_variant(name: &str) -> Option<Variant> {
    Variant::all().into_iter().find(|v| {
        v.name().eq_ignore_ascii_case(name)
            || v.name()
                .replace([' ', '-'], "")
                .eq_ignore_ascii_case(&name.replace(['-', '_'], ""))
    })
}

fn field_u64(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or(format!("{key:?} must be a non-negative integer")),
    }
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or(format!("{key:?} must be a string"))
}

impl Request {
    /// Parse and validate one request line. Unknown ops, unknown
    /// workload/variant/attack names and malformed fields are rejected
    /// here, before anything is enqueued.
    pub fn parse(line: &str) -> Result<Request, String> {
        let obj = Json::parse(line)?;
        let id = obj
            .get("id")
            .ok_or("request needs an integer \"id\"")?
            .as_u64()
            .ok_or("\"id\" must be a non-negative integer")?;
        let op_name = field_str(&obj, "op")?;
        let op = match op_name {
            "run" => Op::Run(Self::parse_run(&obj)?),
            "sweep" => Op::Sweep(Self::parse_sweep(&obj)?),
            "analyze" => Op::Analyze(Self::parse_analyze(&obj)?),
            "trace" => Op::Trace(Self::parse_trace(&obj)?),
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request { id, op })
    }

    fn parse_run(obj: &Json) -> Result<RunSpec, String> {
        let workload = field_str(obj, "workload")?.to_string();
        if nda_workloads::by_name(&workload).is_none() {
            return Err(format!("unknown workload {workload:?}"));
        }
        let (variants, wrap) = match (obj.get("variant"), obj.get("variants")) {
            (Some(_), Some(_)) => {
                return Err("use either \"variant\" or \"variants\", not both".into())
            }
            (Some(v), None) => {
                let name = v.as_str().ok_or("\"variant\" must be a string")?;
                let v = parse_variant(name).ok_or(format!("unknown variant {name:?}"))?;
                (vec![v], false)
            }
            (None, Some(list)) => {
                let list = list.as_array().ok_or("\"variants\" must be an array")?;
                if list.is_empty() {
                    return Err("\"variants\" must not be empty".into());
                }
                let mut vs = Vec::with_capacity(list.len());
                for item in list {
                    let name = item
                        .as_str()
                        .ok_or("\"variants\" entries must be strings")?;
                    vs.push(parse_variant(name).ok_or(format!("unknown variant {name:?}"))?);
                }
                (vs, true)
            }
            (None, None) => (vec![Variant::Ooo], false),
        };
        Ok(RunSpec {
            workload,
            variants,
            wrap,
            iters: field_u64(obj, "iters", 200)?,
            seed: field_u64(obj, "seed", 1)?,
            sample_every: field_u64(obj, "sample_every", 0)?,
            warm: field_u64(obj, "warm", 2_000)?,
            detail: field_u64(obj, "detail", 2_000)?,
            budget: field_u64(obj, "budget", DEFAULT_BUDGET)?,
        })
    }

    fn parse_sweep(obj: &Json) -> Result<SweepSpec, String> {
        let chaos_panic = field_u64(obj, "chaos_panic", 0)?;
        let chaos_slow = field_u64(obj, "chaos_slow", 0)?;
        if chaos_panic > 100 || chaos_slow > 100 {
            return Err("chaos percentages must be 0..=100".into());
        }
        Ok(SweepSpec {
            samples: field_u64(obj, "samples", 2)?,
            iters: field_u64(obj, "iters", 200)?,
            seed: field_u64(obj, "seed", 1)?,
            sample_every: field_u64(obj, "sample_every", 0)?,
            warm: field_u64(obj, "warm", 2_000)?,
            detail: field_u64(obj, "detail", 2_000)?,
            jobs: obj
                .get("jobs")
                .map(|v| v.as_u64().ok_or("\"jobs\" must be a non-negative integer"))
                .transpose()?
                .map(|n| n.max(1) as usize),
            retries: field_u64(obj, "retries", 1)? as u32,
            deadline_cycles: field_u64(obj, "deadline_cycles", DEFAULT_BUDGET)?,
            chaos_panic: chaos_panic as u8,
            chaos_slow: chaos_slow as u8,
            chaos_seed: field_u64(obj, "chaos_seed", 0)?,
        })
    }

    fn parse_analyze(obj: &Json) -> Result<AnalyzeSpec, String> {
        let target = field_str(obj, "target")?.to_string();
        if crate::engine::resolve_analyze_target(&target).is_none() {
            return Err(format!(
                "{target:?} is not an attack or workload (file targets are CLI-only)"
            ));
        }
        Ok(AnalyzeSpec {
            target,
            secret: field_u64(obj, "secret", 42)? as u8,
            window: obj
                .get("window")
                .map(|v| {
                    v.as_u64()
                        .ok_or("\"window\" must be a non-negative integer")
                })
                .transpose()?,
            iters: field_u64(obj, "iters", 200)?,
            seed: field_u64(obj, "seed", 1)?,
        })
    }

    fn parse_trace(obj: &Json) -> Result<TraceSpec, String> {
        let attack = field_str(obj, "attack")?.to_string();
        if crate::engine::parse_attack(&attack).is_none() {
            return Err(format!("unknown attack {attack:?}"));
        }
        let variant = match obj.get("variant") {
            None => Variant::Ooo,
            Some(v) => {
                let name = v.as_str().ok_or("\"variant\" must be a string")?;
                parse_variant(name).ok_or(format!("unknown variant {name:?}"))?
            }
        };
        if variant == Variant::InOrder {
            return Err("tracing needs an out-of-order variant".into());
        }
        let format = match obj.get("format") {
            None => TraceFormat::Perfetto,
            Some(f) => {
                let name = f.as_str().ok_or("\"format\" must be a string")?;
                TraceFormat::parse(name)
                    .ok_or(format!("format {name:?} (use perfetto or konata)"))?
            }
        };
        Ok(TraceSpec {
            attack,
            variant,
            secret: field_u64(obj, "secret", 42)? as u8,
            format,
            budget: field_u64(obj, "budget", DEFAULT_BUDGET)?,
        })
    }
}

/// Canonical key-material builder: unambiguous (length-prefixed
/// strings, fixed-width integers) and versioned via
/// [`PROTOCOL_MAGIC`].
pub(crate) struct Mat(Vec<u8>);

impl Mat {
    pub(crate) fn new(op: &str) -> Mat {
        let mut m = Mat(Vec::with_capacity(96));
        m.str(PROTOCOL_MAGIC);
        m.str(op);
        m
    }

    pub(crate) fn str(&mut self, s: &str) -> &mut Mat {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Mat {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub(crate) fn done(self) -> Vec<u8> {
        self.0
    }
}

impl RunSpec {
    /// Key material for one (request, variant) cell — the identity a
    /// finished [`RunResult`](nda_core::RunResult) is stored under in
    /// the persistent result store. Two requests that share a cell
    /// (e.g. different variant *sets* over the same workload) hit the
    /// same stored result.
    pub fn cell_material(&self, v: Variant) -> Vec<u8> {
        let mut m = Mat::new("run-cell");
        m.str(&self.workload).str(v.name());
        m.u64(self.iters)
            .u64(self.seed)
            .u64(self.sample_every)
            .u64(self.warm)
            .u64(self.detail)
            .u64(self.budget);
        m.done()
    }
}

impl Op {
    /// Stable op label used in responses and display.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Run(_) => "run",
            Op::Sweep(_) => "sweep",
            Op::Analyze(_) => "analyze",
            Op::Trace(_) => "trace",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }

    /// The canonical request identity, or `None` for ops that must
    /// never be cached or deduplicated (`stats`, `shutdown`).
    pub fn key_material(&self) -> Option<Vec<u8>> {
        match self {
            Op::Run(s) => {
                let mut m = Mat::new("run");
                m.str(&s.workload);
                m.u64(s.variants.len() as u64);
                for v in &s.variants {
                    m.str(v.name());
                }
                m.u64(s.wrap as u64)
                    .u64(s.iters)
                    .u64(s.seed)
                    .u64(s.sample_every)
                    .u64(s.warm)
                    .u64(s.detail)
                    .u64(s.budget);
                Some(m.done())
            }
            Op::Sweep(s) => {
                let mut m = Mat::new("sweep");
                m.u64(s.samples)
                    .u64(s.iters)
                    .u64(s.seed)
                    .u64(s.sample_every)
                    .u64(s.warm)
                    .u64(s.detail)
                    .u64(s.retries as u64)
                    .u64(s.deadline_cycles)
                    .u64(s.chaos_panic as u64)
                    .u64(s.chaos_slow as u64)
                    .u64(s.chaos_seed);
                Some(m.done())
            }
            Op::Analyze(s) => {
                let mut m = Mat::new("analyze");
                m.str(&s.target);
                m.u64(s.secret as u64);
                match s.window {
                    None => m.u64(0),
                    Some(w) => m.u64(1).u64(w),
                };
                m.u64(s.iters).u64(s.seed);
                Some(m.done())
            }
            Op::Trace(s) => {
                let mut m = Mat::new("trace");
                m.str(&s.attack).str(s.variant.name());
                m.u64(s.secret as u64);
                m.str(match s.format {
                    TraceFormat::Perfetto => "perfetto",
                    TraceFormat::Konata => "konata",
                });
                m.u64(s.budget);
                Some(m.done())
            }
            Op::Stats | Op::Shutdown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_defaults_mirroring_the_cli() {
        let r = Request::parse(r#"{"id":1,"op":"run","workload":"mcf"}"#).unwrap();
        let Op::Run(s) = &r.op else {
            panic!("not a run")
        };
        assert_eq!(s.variants, vec![Variant::Ooo]);
        assert!(!s.wrap);
        assert_eq!((s.iters, s.seed, s.sample_every), (200, 1, 0));
        assert_eq!((s.warm, s.detail, s.budget), (2_000, 2_000, DEFAULT_BUDGET));
    }

    #[test]
    fn fuzzy_variant_names_resolve() {
        let r = Request::parse(
            r#"{"id":2,"op":"run","workload":"gcc","variants":["full-protection","in_order"]}"#,
        )
        .unwrap();
        let Op::Run(s) = &r.op else {
            panic!("not a run")
        };
        assert_eq!(s.variants, vec![Variant::FullProtection, Variant::InOrder]);
        assert!(s.wrap);
    }

    #[test]
    fn rejects_unknown_names_at_parse_time() {
        for line in [
            r#"{"id":1,"op":"run","workload":"nope"}"#,
            r#"{"id":1,"op":"run","workload":"mcf","variant":"nope"}"#,
            r#"{"id":1,"op":"frobnicate"}"#,
            r#"{"id":1,"op":"trace","attack":"nope"}"#,
            r#"{"id":1,"op":"trace","attack":"meltdown","variant":"InOrder"}"#,
            r#"{"id":1,"op":"analyze","target":"nope"}"#,
            r#"{"op":"stats"}"#,
        ] {
            assert!(Request::parse(line).is_err(), "accepted {line}");
        }
    }

    #[test]
    fn key_material_separates_semantic_fields_only() {
        let a = Request::parse(r#"{"id":1,"op":"sweep","samples":1,"iters":40}"#).unwrap();
        let b =
            Request::parse(r#"{"id":99,"op":"sweep","samples":1,"iters":40,"jobs":8}"#).unwrap();
        let c = Request::parse(r#"{"id":1,"op":"sweep","samples":1,"iters":41}"#).unwrap();
        // id and jobs are not identity; iters is.
        assert_eq!(a.op.key_material(), b.op.key_material());
        assert_ne!(a.op.key_material(), c.op.key_material());
        assert_eq!(
            Request::parse(r#"{"id":1,"op":"stats"}"#)
                .unwrap()
                .op
                .key_material(),
            None
        );
    }

    #[test]
    fn run_cell_material_is_shared_across_variant_sets() {
        let one =
            Request::parse(r#"{"id":1,"op":"run","workload":"mcf","variant":"Strict"}"#).unwrap();
        let many =
            Request::parse(r#"{"id":2,"op":"run","workload":"mcf","variants":["OoO","Strict"]}"#)
                .unwrap();
        let (Op::Run(a), Op::Run(b)) = (&one.op, &many.op) else {
            panic!()
        };
        // The request-level identities differ (different documents)...
        assert_ne!(one.op.key_material(), many.op.key_material());
        // ...but the Strict cell is the same stored RunResult.
        assert_eq!(
            a.cell_material(Variant::Strict),
            b.cell_material(Variant::Strict)
        );
        assert_ne!(
            a.cell_material(Variant::Strict),
            a.cell_material(Variant::Ooo)
        );
    }
}
