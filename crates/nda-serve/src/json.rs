//! A minimal JSON value parser for the request side of the wire
//! protocol.
//!
//! The server *emits* JSON through the same hand-rolled formatting the
//! rest of the workspace uses (`nda-stats` registries, the sweep
//! metrics document); it only needs to *read* the small, flat request
//! objects clients send. This is a strict recursive-descent parser over
//! the standard grammar — no extensions, no trailing garbage — kept
//! deliberately tiny so the vendored-deps-only constraint holds.

/// A parsed JSON value. Object keys keep their textual order (requests
/// are tiny; linear lookup beats pulling in a map).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error (a request line is exactly one object).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly
    /// (rejects fractions, negatives and anything above 2^53 where f64
    /// stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte {} in value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // protocol; reject rather than mis-decode.
                            out.push(char::from_u32(cp).ok_or(format!("invalid \\u{hex} escape"))?);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_shaped_object() {
        let v = Json::parse(
            r#"{"id":3,"op":"run","workload":"mcf","variants":["OoO","Strict"],"iters":200,"deep":{"x":null,"y":true}}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("op").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("variants").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("deep").unwrap().get("y").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("deep").unwrap().get("x"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#"{"s":"a\nb\t\"c\" A"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\nb\t\"c\" A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a":01x}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"\u{1}\"").is_err());
    }

    #[test]
    fn u64_guards_exactness() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(
            Json::parse("2000000000").unwrap().as_u64(),
            Some(2_000_000_000)
        );
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
