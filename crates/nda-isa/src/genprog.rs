//! Deterministic structured random-program generator.
//!
//! The differential test suites (`tests/differential.rs` at the workspace
//! root, plus per-crate proptests) need arbitrary programs that (a) always
//! terminate, (b) never fault, and (c) still exercise every micro-op class —
//! data-dependent branches, loads, stores (including aliasing pairs for the
//! store-bypass logic), calls/returns, indirect jumps through tables, and
//! long-latency arithmetic. [`generate`] builds such a program from a seed:
//! same seed, same program.

use crate::asm::Asm;
use crate::inst::{AluOp, MemSize};
use crate::program::Program;
use crate::reg::Reg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scratch data region base used by generated programs.
pub const SCRATCH_BASE: u64 = 0x0010_0000;
/// Scratch region size in bytes (power of two).
pub const SCRATCH_SIZE: u64 = 4096;

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Rough upper bound on emitted instructions (the generator stops
    /// opening new constructs past this point).
    pub target_len: usize,
    /// Maximum nesting depth of loops/conditionals.
    pub max_depth: usize,
    /// Emit indirect jumps/calls through in-memory tables.
    pub indirect: bool,
    /// Emit `Fence` barriers occasionally.
    pub fences: bool,
    /// Emit user-permitted `RdMsr` reads occasionally (exercises the
    /// load-like micro-op class without faulting).
    pub msrs: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            target_len: 400,
            max_depth: 3,
            indirect: true,
            fences: true,
            msrs: true,
        }
    }
}

/// Registers the generator mutates freely.
const WORK_REGS: [Reg; 10] = [
    Reg::X2,
    Reg::X3,
    Reg::X4,
    Reg::X5,
    Reg::X6,
    Reg::X7,
    Reg::X8,
    Reg::X9,
    Reg::X10,
    Reg::X11,
];
/// Holds `SCRATCH_BASE`.
const BASE_REG: Reg = Reg::X20;
/// Holds the indirect-table base.
const TABLE_REG: Reg = Reg::X21;
/// Loop counters (one per nesting level).
const LOOP_REGS: [Reg; 4] = [Reg::X24, Reg::X25, Reg::X26, Reg::X27];

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    /// Label sets that must be written into successive 4-entry jump tables.
    pending_tables: Vec<Vec<crate::asm::Label>>,
}

impl Gen {
    fn reg(&mut self) -> Reg {
        WORK_REGS[self.rng.gen_range(0..WORK_REGS.len())]
    }

    /// Emit `rd = scratch address derived from a work register` — always
    /// within the scratch region, 8-byte aligned.
    fn addr_into(&mut self, asm: &mut Asm, rd: Reg) {
        let src = self.reg();
        asm.andi(rd, src, (SCRATCH_SIZE - 1) & !7);
        asm.add(rd, rd, BASE_REG);
    }

    fn straight_line(&mut self, asm: &mut Asm) {
        let n = self.rng.gen_range(1..6);
        for _ in 0..n {
            match self.rng.gen_range(0..10) {
                0 => {
                    let rd = self.reg();
                    let imm = self.rng.gen_range(0..1_000u64);
                    asm.li(rd, imm);
                }
                1..=4 => {
                    let ops = [
                        AluOp::Add,
                        AluOp::Sub,
                        AluOp::Xor,
                        AluOp::And,
                        AluOp::Or,
                        AluOp::Mul,
                        AluOp::Shl,
                        AluOp::Shr,
                        AluOp::Slt,
                        AluOp::Sltu,
                        AluOp::Div,
                        AluOp::Rem,
                    ];
                    let op = ops[self.rng.gen_range(0..ops.len())];
                    let (rd, rs1, rs2) = (self.reg(), self.reg(), self.reg());
                    if self.rng.gen_bool(0.5) {
                        asm.alu(op, rd, rs1, rs2);
                    } else {
                        let imm = self.rng.gen_range(0..64u64);
                        asm.alui(op, rd, rs1, imm);
                    }
                }
                5 | 6 => {
                    if self.cfg.msrs && self.rng.gen_bool(0.1) {
                        // A user-permitted special-register read: the
                        // load-like class NDA treats like a load.
                        let rd = self.reg();
                        let idx = self.rng.gen_range(0..4u16);
                        asm.rdmsr(rd, idx);
                    } else {
                        // Load from scratch.
                        let rd = self.reg();
                        self.addr_into(asm, Reg::X28);
                        let size =
                            [MemSize::B1, MemSize::B4, MemSize::B8][self.rng.gen_range(0..3)];
                        asm.load(rd, Reg::X28, 0, size);
                    }
                }
                7 | 8 => {
                    // Store to scratch — occasionally immediately reload the
                    // same address to exercise store-to-load forwarding and
                    // the bypass-restriction machinery.
                    let src = self.reg();
                    self.addr_into(asm, Reg::X29);
                    let size = [MemSize::B1, MemSize::B4, MemSize::B8][self.rng.gen_range(0..3)];
                    asm.store(src, Reg::X29, 0, size);
                    if self.rng.gen_bool(0.4) {
                        let rd = self.reg();
                        asm.load(rd, Reg::X29, 0, size);
                    }
                }
                _ => {
                    if self.cfg.fences && self.rng.gen_bool(0.3) {
                        asm.fence();
                    } else if self.cfg.fences && self.rng.gen_bool(0.15) {
                        // A short Listing-4 no-speculation window.
                        asm.spec_off();
                        let rd = self.reg();
                        asm.addi(rd, rd, 1);
                        asm.spec_on();
                    } else {
                        asm.nop();
                    }
                }
            }
        }
    }

    fn construct(&mut self, asm: &mut Asm, depth: usize) {
        if asm.here() >= self.cfg.target_len {
            return;
        }
        match self.rng.gen_range(0..10) {
            // Counted loop.
            0..=2 if depth < self.cfg.max_depth => {
                let counter = LOOP_REGS[depth];
                let iters = self.rng.gen_range(1..5u64);
                asm.li(counter, iters);
                let top = asm.here_label();
                self.body(asm, depth + 1);
                asm.subi(counter, counter, 1);
                asm.bne(counter, Reg::X0, top);
            }
            // If/else on data parity — mispredicts, exercising squash.
            3..=5 if depth < self.cfg.max_depth => {
                let r = self.reg();
                let else_l = asm.new_label();
                let join = asm.new_label();
                asm.andi(Reg::X30, r, 1);
                asm.beq(Reg::X30, Reg::X0, else_l);
                self.body(asm, depth + 1);
                asm.jmp(join);
                asm.bind(else_l);
                self.body(asm, depth + 1);
                asm.bind(join);
            }
            // Indirect jump through a 4-entry table.
            6 if self.cfg.indirect && depth < self.cfg.max_depth => {
                let targets: Vec<_> = (0..4).map(|_| asm.new_label()).collect();
                let join = asm.new_label();
                let r = self.reg();
                // Each indirect site owns a distinct 32-byte table slot.
                let table_off = (self.pending_tables.len() * 32) as i64;
                asm.andi(Reg::X30, r, 3);
                asm.shli(Reg::X30, Reg::X30, 3);
                asm.add(Reg::X30, Reg::X30, TABLE_REG);
                asm.ld8(Reg::X30, Reg::X30, table_off);
                asm.jmp_ind(Reg::X30);
                for (k, t) in targets.iter().enumerate() {
                    asm.bind(*t);
                    asm.addi(Reg::X11, Reg::X11, (k + 1) as u64);
                    self.straight_line(asm);
                    asm.jmp(join);
                }
                asm.bind(join);
                // Record which labels went in the table; the caller patches
                // the table in the prologue using li_label + stores, so we
                // stash them for it.
                self.pending_tables.push(targets);
            }
            _ => self.straight_line(asm),
        }
    }

    fn body(&mut self, asm: &mut Asm, depth: usize) {
        let n = self.rng.gen_range(1..4);
        for _ in 0..n {
            self.construct(asm, depth);
        }
    }

    fn new(seed: u64, cfg: GenConfig) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            pending_tables: Vec::new(),
        }
    }
}

/// Generate a terminating, fault-free random program from `seed`.
///
/// The program initialises the scratch region pseudo-randomly, builds any
/// indirect-jump tables, runs the generated construct soup, stores a digest
/// of the work registers to memory, and halts.
pub fn generate(seed: u64, cfg: GenConfig) -> Program {
    let mut g = Gen::new(seed, cfg);
    let mut asm = Asm::new();
    // A small user-readable MSR file for the load-like class.
    if cfg.msrs {
        for idx in 0..4u16 {
            let v: u64 = g.rng.gen();
            asm.msr(idx, v);
            asm.msr_user_ok(idx);
        }
    }
    let body_start = asm.new_label();

    // Prologue: scratch base, table base, seeded work registers.
    asm.li(BASE_REG, SCRATCH_BASE);
    asm.li(TABLE_REG, SCRATCH_BASE + SCRATCH_SIZE);
    for (k, r) in WORK_REGS.iter().enumerate() {
        let v: u64 = g.rng.gen::<u32>() as u64 ^ ((k as u64) << 32);
        asm.li(*r, v);
    }
    asm.jmp(body_start);

    // A couple of callable leaf functions.
    let mut funcs = Vec::new();
    for _ in 0..2 {
        let f = asm.here_label();
        g.straight_line(&mut asm);
        asm.ret();
        funcs.push(f);
    }

    asm.bind(body_start);
    // Calls interleaved with generated constructs.
    let rounds = 3;
    for _ in 0..rounds {
        g.body(&mut asm, 0);
        if g.rng.gen_bool(0.7) {
            let f = funcs[g.rng.gen_range(0..funcs.len())];
            asm.call(f);
        }
    }

    // Epilogue: digest work registers into memory so memory comparison
    // catches register divergence too.
    for (k, r) in WORK_REGS.iter().enumerate() {
        asm.st8(*r, BASE_REG, (8 * k) as i64);
    }
    asm.halt();

    let mut program = asm.assemble().expect("generated program must assemble");

    // Indirect-jump tables live in the data segment: each pending label set
    // becomes four u64 instruction indices at successive 32-byte slots.
    let table_entries = resolve_tables(&g, &asm);
    let mut table_addr = SCRATCH_BASE + SCRATCH_SIZE;
    for table in table_entries {
        let mut bytes = Vec::new();
        for (k, idx) in table.into_iter().enumerate() {
            bytes.extend_from_slice(&(idx as u64).to_le_bytes());
            // Code-pointer provenance: rewrite passes relocate these
            // table slots when instructions are inserted.
            program.code_ptr_words.push(table_addr + 8 * k as u64);
        }
        program.data.push(crate::program::DataInit {
            addr: table_addr,
            bytes,
        });
        table_addr += 32;
    }

    // Pseudo-random scratch initialisation.
    let mut init = vec![0u8; SCRATCH_SIZE as usize];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_da7a);
    rng.fill(&mut init[..]);
    program.data.push(crate::program::DataInit {
        addr: SCRATCH_BASE,
        bytes: init,
    });
    program
}

fn resolve_tables(g: &Gen, asm: &Asm) -> Vec<Vec<usize>> {
    g.pending_tables
        .iter()
        .map(|labels| {
            labels
                .iter()
                .map(|l| asm.label_position(*l).expect("bound"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn generated_programs_terminate_and_are_deterministic() {
        for seed in 0..8 {
            let p1 = generate(seed, GenConfig::default());
            let p2 = generate(seed, GenConfig::default());
            assert_eq!(p1.insts, p2.insts, "seed {seed} not deterministic");
            let mut i = Interp::new(&p1);
            let exit = i.run(2_000_000).expect("terminates without fault");
            assert!(exit.halted);
            assert!(exit.retired > 10, "seed {seed} trivially short");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(1, GenConfig::default());
        let b = generate(2, GenConfig::default());
        assert_ne!(a.insts, b.insts);
    }

    #[test]
    fn indirect_tables_target_valid_instructions() {
        for seed in 0..8 {
            let p = generate(seed, GenConfig::default());
            for init in &p.data {
                if init.addr >= SCRATCH_BASE + SCRATCH_SIZE {
                    for chunk in init.bytes.chunks(8) {
                        let idx = u64::from_le_bytes(chunk.try_into().unwrap());
                        assert!((idx as usize) < p.insts.len());
                    }
                }
            }
        }
    }

    #[test]
    fn no_indirect_when_disabled() {
        let cfg = GenConfig {
            indirect: false,
            ..GenConfig::default()
        };
        for seed in 0..4 {
            let p = generate(seed, cfg);
            assert!(!p
                .insts
                .iter()
                .any(|i| matches!(i, crate::Inst::JmpInd { .. })));
        }
    }

    #[test]
    fn msr_reads_are_always_permitted() {
        for seed in 0..8 {
            let p = generate(seed, GenConfig::default());
            for i in &p.insts {
                if let crate::Inst::RdMsr { idx, .. } = i {
                    assert!(
                        p.msr_user_ok.contains(idx),
                        "seed {seed}: rdmsr {idx} would fault"
                    );
                }
            }
        }
    }

    #[test]
    fn no_msrs_when_disabled() {
        let cfg = GenConfig {
            msrs: false,
            ..GenConfig::default()
        };
        for seed in 0..4 {
            let p = generate(seed, cfg);
            assert!(!p
                .insts
                .iter()
                .any(|i| matches!(i, crate::Inst::RdMsr { .. })));
            assert!(p.msr_values.is_empty());
        }
    }
}
