//! Architectural memory: a sparse 64-bit paged store, the privilege map and
//! the MSR file.
//!
//! This is *state*, not timing — cache/DRAM timing lives in `nda-mem`. Both
//! the reference interpreter and the timing cores read and write through
//! [`SparseMem`], so wrong-path loads in the out-of-order core observe the
//! same bytes the architectural path would.

use std::collections::HashMap;
use std::sync::Arc;

/// Start of the privileged (kernel) address range: loads and stores at or
/// above this address fault in user mode, exactly the Meltdown setting.
pub const KERNEL_BASE: u64 = 0xffff_8000_0000_0000;

/// log2 of the page size.
pub const PAGE_SHIFT: u64 = 12;
/// Byte size of one [`SparseMem`] page.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse byte-addressable memory backed by 4 KiB copy-on-write pages.
///
/// Reads of untouched memory return zero, which keeps wrong-path execution
/// total (a mis-steered load can never crash the simulator).
/// Equality compares resident pages, so a page explicitly written to all
/// zeros differs from an untouched one — identical *operation histories*
/// (the checkpoint round-trip case) always compare equal.
///
/// Pages are `Arc`-shared: `clone` bumps refcounts instead of copying the
/// resident set, and a write clones only the page it lands on
/// ([`Arc::make_mut`]). Sampled simulation leans on this — every
/// checkpoint holds a full memory image, and every detailed window clones
/// one back into a core, so multi-megabyte workloads would otherwise pay
/// a full-image copy per checkpoint and per window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMem {
    pages: HashMap<u64, Arc<[u8; PAGE_SIZE]>>,
}

impl SparseMem {
    /// New, empty memory.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Write one byte (allocating the page on demand, un-sharing it if a
    /// checkpoint still references it).
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Arc::new([0u8; PAGE_SIZE]));
        Arc::make_mut(page)[(addr & PAGE_MASK) as usize] = val;
    }

    /// Read `size` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// Accesses contained in one page (the overwhelmingly common case) do a
    /// single page lookup and one slice copy; only page-straddling accesses
    /// fall back to the per-byte path. This is the hot read of the
    /// fast-forward engine ([`crate::TranslatedProgram`]).
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..size as usize].copy_from_slice(&p[off..off + size as usize]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            };
        }
        let mut v: u64 = 0;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `size` bytes of `val` (1, 2, 4 or 8) little-endian.
    ///
    /// Page-contained accesses (the common case) do one page lookup and one
    /// slice copy; page-straddling accesses fall back to per-byte writes.
    pub fn write(&mut self, addr: u64, val: u64, size: u64) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE]));
            Arc::make_mut(page)[off..off + size as usize]
                .copy_from_slice(&val.to_le_bytes()[..size as usize]);
            return;
        }
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Copy a byte slice into memory starting at `addr`.
    ///
    /// Chunked at page granularity: one page lookup per 4 KiB, not per
    /// byte. Data-segment loads are on the constructor path of every core
    /// and interpreter (and the sampled-simulation windows construct a
    /// fresh core per checkpoint), so multi-megabyte workload images make
    /// the per-byte path a real cost.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(rest.len());
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE]));
            Arc::make_mut(page)[off..off + n].copy_from_slice(&rest[..n]);
            addr = addr.wrapping_add(n as u64);
            rest = &rest[n..];
        }
    }

    /// Number of resident pages (for tests and capacity sanity checks).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident pages sorted by page index — a deterministic iteration
    /// order for serialization (the internal `HashMap` order is not).
    /// Round-tripping through [`SparseMem::from_pages`] reproduces a memory
    /// that compares equal, including the exact resident-page set.
    pub fn dump_pages(&self) -> Vec<(u64, Arc<[u8; PAGE_SIZE]>)> {
        let mut pages: Vec<_> = self
            .pages
            .iter()
            .map(|(&idx, p)| (idx, Arc::clone(p)))
            .collect();
        pages.sort_unstable_by_key(|&(idx, _)| idx);
        pages
    }

    /// Rebuild a memory from pages produced by [`SparseMem::dump_pages`].
    pub fn from_pages(pages: impl IntoIterator<Item = (u64, Arc<[u8; PAGE_SIZE]>)>) -> SparseMem {
        SparseMem {
            pages: pages.into_iter().collect(),
        }
    }
}

/// Privilege classification of addresses.
///
/// The reproduction models a single user/kernel split at [`KERNEL_BASE`]
/// (the Linux direct-map convention that Meltdown attacked).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrivilegeMap;

impl PrivilegeMap {
    /// `true` if `addr` requires kernel privilege.
    #[inline]
    pub fn is_privileged(self, addr: u64) -> bool {
        addr >= KERNEL_BASE
    }
}

/// The model-specific-register file.
///
/// `RdMsr` of a register not in the user-permitted set faults — but, like a
/// Meltdown-style load, the *value* may still propagate speculatively when
/// the simulated implementation flaw is enabled (LazyFP / Meltdown v3a).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsrFile {
    values: HashMap<u16, u64>,
    user_ok: HashMap<u16, bool>,
}

impl MsrFile {
    /// Empty MSR file: every register reads as zero and is privileged.
    pub fn new() -> MsrFile {
        MsrFile::default()
    }

    /// Build from a program's initializers.
    pub fn from_program(p: &crate::Program) -> MsrFile {
        let mut f = MsrFile::new();
        for &(idx, v) in &p.msr_values {
            f.set(idx, v);
        }
        for &idx in &p.msr_user_ok {
            f.permit_user(idx);
        }
        f
    }

    /// Set an MSR's value.
    pub fn set(&mut self, idx: u16, val: u64) {
        self.values.insert(idx, val);
    }

    /// Read an MSR's value (zero if never set).
    pub fn read(&self, idx: u16) -> u64 {
        self.values.get(&idx).copied().unwrap_or(0)
    }

    /// Allow unprivileged reads of `idx`.
    pub fn permit_user(&mut self, idx: u16) {
        self.user_ok.insert(idx, true);
    }

    /// `true` if user code may read `idx` without faulting.
    pub fn user_may_read(&self, idx: u16) -> bool {
        self.user_ok.get(&idx).copied().unwrap_or(false)
    }

    /// Deterministic snapshot: `(values sorted by index, user-readable
    /// indices sorted)`. Round-trips exactly through
    /// [`MsrFile::from_parts`].
    pub fn dump(&self) -> (Vec<(u16, u64)>, Vec<u16>) {
        let mut values: Vec<_> = self.values.iter().map(|(&i, &v)| (i, v)).collect();
        values.sort_unstable_by_key(|&(i, _)| i);
        let mut user_ok: Vec<u16> = self
            .user_ok
            .iter()
            .filter(|&(_, &ok)| ok)
            .map(|(&i, _)| i)
            .collect();
        user_ok.sort_unstable();
        (values, user_ok)
    }

    /// Rebuild an MSR file from a [`MsrFile::dump`] snapshot.
    pub fn from_parts(values: &[(u16, u64)], user_ok: &[u16]) -> MsrFile {
        let mut f = MsrFile::new();
        for &(idx, v) in values {
            f.set(idx, v);
        }
        for &idx in user_ok {
            f.permit_user(idx);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMem::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = SparseMem::new();
        for &size in &[1u64, 2, 4, 8] {
            let val = 0x1122_3344_5566_7788u64;
            m.write(0x1000, val, size);
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size)) - 1
            };
            assert_eq!(m.read(0x1000, size), val & mask, "size {size}");
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMem::new();
        m.write(0x2000, 0x0102_0304, 4);
        assert_eq!(m.read_u8(0x2000), 0x04);
        assert_eq!(m.read_u8(0x2003), 0x01);
    }

    #[test]
    fn writes_cross_page_boundaries() {
        let mut m = SparseMem::new();
        let addr = (1 << PAGE_SHIFT) - 2; // straddles first page boundary
        m.write(addr, 0xAABB_CCDD_EEFF_1122, 8);
        assert_eq!(m.read(addr, 8), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn write_bytes_copies_slice() {
        let mut m = SparseMem::new();
        m.write_bytes(0x3000, &[1, 2, 3]);
        assert_eq!(m.read(0x3000, 4), 0x0003_0201);
    }

    #[test]
    fn kernel_range_is_privileged() {
        let p = PrivilegeMap;
        assert!(p.is_privileged(KERNEL_BASE));
        assert!(p.is_privileged(u64::MAX));
        assert!(!p.is_privileged(KERNEL_BASE - 1));
        assert!(!p.is_privileged(0x40_0000));
    }

    #[test]
    fn msr_permissions() {
        let mut f = MsrFile::new();
        f.set(7, 0x5151);
        assert_eq!(f.read(7), 0x5151);
        assert_eq!(f.read(8), 0);
        assert!(!f.user_may_read(7));
        f.permit_user(7);
        assert!(f.user_may_read(7));
    }
}
