//! Executable program container.

use crate::inst::Inst;
use crate::TEXT_BASE;

/// One data-segment initializer: `bytes` copied to `addr` before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataInit {
    /// Destination address in the simulated address space.
    pub addr: u64,
    /// Bytes to place there.
    pub bytes: Vec<u8>,
}

/// A complete SpecRISC program: text, entry point, data initializers, MSR
/// file contents and the fault-handler vector.
///
/// Produced by [`Asm::assemble`](crate::Asm::assemble); consumed by the
/// reference interpreter and by every timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The instructions; the PC is an index into this vector.
    pub insts: Vec<Inst>,
    /// Instruction index where execution starts.
    pub entry: usize,
    /// Data-segment initializers applied before execution.
    pub data: Vec<DataInit>,
    /// Where control transfers when a fault (privileged access) commits.
    /// `None` means a committed fault terminates the program.
    pub fault_handler: Option<usize>,
    /// Initial model-specific-register values, indexed by MSR number.
    pub msr_values: Vec<(u16, u64)>,
    /// MSR numbers user code may read without faulting.
    pub msr_user_ok: Vec<u16>,
    /// Base address of the text segment (for i-cache addressing).
    pub text_base: u64,
    /// Instruction indices of `Li` instructions whose immediate is a *code
    /// pointer* (an instruction index), recorded by
    /// [`Asm::li_label`](crate::Asm::li_label). Rewrite passes
    /// ([`crate::rewrite`]) use this provenance to relocate materialized
    /// function-pointer constants when instructions are inserted; a plain
    /// data constant that merely collides with a valid pc is never
    /// misclassified because only `li_label` records an entry.
    pub code_ptr_lis: Vec<usize>,
    /// Byte addresses of 8-byte little-endian words in the data segment
    /// whose initial value is a *code pointer* (an instruction index) —
    /// jump-table slots, for example. The data-segment counterpart of
    /// `code_ptr_lis`: rewrite passes relocate the stored index when
    /// instructions are inserted. Each address must lie fully inside one
    /// [`DataInit`] region.
    pub code_ptr_words: Vec<u64>,
}

impl Program {
    /// An empty program (single `Halt`), mostly useful in tests.
    pub fn empty() -> Program {
        Program {
            insts: vec![Inst::Halt],
            entry: 0,
            data: Vec::new(),
            fault_handler: None,
            msr_values: Vec::new(),
            msr_user_ok: Vec::new(),
            text_base: TEXT_BASE,
            code_ptr_lis: Vec::new(),
            code_ptr_words: Vec::new(),
        }
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetch the instruction at `pc`, or `None` past the end of text.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// I-cache byte address of the instruction at index `pc`.
    #[inline]
    pub fn inst_addr(&self, pc: usize) -> u64 {
        self.text_base + crate::INST_BYTES * pc as u64
    }
}

impl Default for Program {
    fn default() -> Program {
        Program::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_halts_at_entry() {
        let p = Program::empty();
        assert_eq!(p.fetch(p.entry), Some(Inst::Halt));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn inst_addr_is_stride_four() {
        let p = Program::empty();
        assert_eq!(p.inst_addr(0), TEXT_BASE);
        assert_eq!(p.inst_addr(3), TEXT_BASE + 12);
    }

    #[test]
    fn fetch_out_of_range_is_none() {
        let p = Program::empty();
        assert_eq!(p.fetch(99), None);
    }
}
