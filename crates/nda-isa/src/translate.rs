//! Pre-decoded ("threaded-code") functional execution.
//!
//! [`Interp::step_info`] re-decodes every instruction through a
//! 500-plus-line match and reports its effects through a [`StepInfo`]
//! struct that the warming driver then re-matches. For the sampled
//! simulator's fast-forward phase — millions of instructions per
//! checkpoint schedule — that double dispatch is the wall-clock
//! bottleneck. This module decodes a [`Program`] **once** into a flat
//! array of resolved ops ([`TranslatedProgram`]): immediates folded,
//! register numbers extracted to raw indices, load/store offsets
//! pre-converted to their wrapping `u64` form, access widths reduced to a
//! byte count, and each op's i-cache byte address and 64-byte line id
//! precomputed so per-instruction warming reduces to one integer compare.
//!
//! [`Interp::run_translated`] then drives the *same* [`Interp`] state from
//! that array. Because it mutates the interpreter's own fields, there is no
//! second architectural state to keep in sync: registers, PC, memory, MSRs,
//! fault delivery, retirement counting and halt behaviour are shared with
//! the reference engine by construction, and the differential suite pins
//! the two engines to `Interp == Interp` equality after every program.
//!
//! Warming side effects are delivered through the [`ExecHooks`] trait
//! instead of a materialized [`StepInfo`]: each callback corresponds to one
//! arm of the sampled simulator's warming match, is statically dispatched,
//! and compiles to nothing for [`NoHooks`]. The callback order per
//! instruction (instruction line, control-flow update, data touch, flush)
//! replicates the reference warming order exactly, so cache and predictor
//! state after a translated fast-forward is bit-identical to the
//! interpreted path — including predictor accuracy counters, which
//! participate in checkpoint equality.

use crate::inst::{AluOp, BranchCond, Inst, Src2};
use crate::interp::{Fault, Interp, InterpError};
use crate::program::Program;
use crate::reg::RA;

/// Warming callbacks invoked by [`Interp::run_translated`] for the
/// committed instruction stream.
///
/// Every method defaults to a no-op; implementors override exactly the
/// events they warm on. Call order within one instruction is fixed:
/// [`ExecHooks::inst`] first, then the control-flow callback (if any), then
/// [`ExecHooks::data`], then [`ExecHooks::flush`]. A faulting instruction
/// reports only [`ExecHooks::inst`] — its data access never happened.
pub trait ExecHooks {
    /// An instruction at i-cache byte address `iaddr` (64-byte line id
    /// `iline`) executed. Called for **every** step, including faulting
    /// ones; implementors that warm i-caches per line filter on `iline`.
    #[inline]
    fn inst(&mut self, iaddr: u64, iline: u64) {
        let _ = (iaddr, iline);
    }

    /// A conditional branch at `iaddr` resolved with direction `taken`.
    #[inline]
    fn branch(&mut self, iaddr: u64, taken: bool) {
        let _ = (iaddr, taken);
    }

    /// A direct call executed; `ret_pc` is its fall-through index.
    #[inline]
    fn call(&mut self, ret_pc: usize) {
        let _ = ret_pc;
    }

    /// An indirect call at `iaddr` executed: fall-through `ret_pc`,
    /// resolved target `next_pc`.
    #[inline]
    fn call_ind(&mut self, iaddr: u64, ret_pc: usize, next_pc: usize) {
        let _ = (iaddr, ret_pc, next_pc);
    }

    /// An indirect jump at `iaddr` resolved to `next_pc`.
    #[inline]
    fn jmp_ind(&mut self, iaddr: u64, next_pc: usize) {
        let _ = (iaddr, next_pc);
    }

    /// A return executed.
    #[inline]
    fn ret(&mut self) {}

    /// A non-faulting load or store touched byte address `addr`.
    #[inline]
    fn data(&mut self, addr: u64) {
        let _ = addr;
    }

    /// A `clflush` evicted the line containing `addr`.
    #[inline]
    fn flush(&mut self, addr: u64) {
        let _ = addr;
    }
}

/// Hook implementation that warms nothing — pure fast-forwarding.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ExecHooks for NoHooks {}

/// One pre-decoded operation. Register fields are raw indices (always
/// `< 32` by construction from [`crate::Reg`]), immediates and offsets are
/// pre-folded into the form the execute step consumes.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Li {
        rd: u8,
        imm: u64,
    },
    AluRR {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluRI {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: u64,
    },
    Load {
        rd: u8,
        base: u8,
        off: u64,
        size: u64,
    },
    Store {
        src: u8,
        base: u8,
        off: u64,
        size: u64,
    },
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: usize,
    },
    Jmp {
        target: usize,
    },
    JmpInd {
        base: u8,
    },
    Call {
        target: usize,
    },
    CallInd {
        base: u8,
    },
    Ret,
    RdCycle {
        rd: u8,
    },
    RdMsr {
        rd: u8,
        idx: u16,
    },
    ClFlush {
        base: u8,
        off: u64,
    },
    /// `Nop`, `Fence`, `SpecOff` and `SpecOn` — architecturally identical
    /// on the functional path (timing semantics live in the cores).
    Nop,
    Halt,
}

#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    /// I-cache byte address of this instruction.
    iaddr: u64,
    /// 64-byte i-cache line id (`iaddr / 64`), precomputed so the warming
    /// driver's per-instruction line check is a single compare.
    iline: u64,
}

fn translate(inst: Inst) -> OpKind {
    let r = |reg: crate::Reg| reg.index() as u8;
    match inst {
        Inst::Li { rd, imm } => OpKind::Li { rd: r(rd), imm },
        Inst::Alu { op, rd, rs1, src2 } => match src2 {
            Src2::Reg(rs2) => OpKind::AluRR {
                op,
                rd: r(rd),
                rs1: r(rs1),
                rs2: r(rs2),
            },
            Src2::Imm(imm) => OpKind::AluRI {
                op,
                rd: r(rd),
                rs1: r(rs1),
                imm,
            },
        },
        Inst::Load {
            rd,
            base,
            off,
            size,
        } => OpKind::Load {
            rd: r(rd),
            base: r(base),
            off: off as u64,
            size: size.bytes(),
        },
        Inst::Store {
            src,
            base,
            off,
            size,
        } => OpKind::Store {
            src: r(src),
            base: r(base),
            off: off as u64,
            size: size.bytes(),
        },
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => OpKind::Branch {
            cond,
            rs1: r(rs1),
            rs2: r(rs2),
            target,
        },
        Inst::Jmp { target } => OpKind::Jmp { target },
        Inst::JmpInd { base } => OpKind::JmpInd { base: r(base) },
        Inst::Call { target } => OpKind::Call { target },
        Inst::CallInd { base } => OpKind::CallInd { base: r(base) },
        Inst::Ret => OpKind::Ret,
        Inst::RdCycle { rd } => OpKind::RdCycle { rd: r(rd) },
        Inst::RdMsr { rd, idx } => OpKind::RdMsr { rd: r(rd), idx },
        Inst::ClFlush { base, off } => OpKind::ClFlush {
            base: r(base),
            off: off as u64,
        },
        Inst::Fence | Inst::SpecOff | Inst::SpecOn | Inst::Nop => OpKind::Nop,
        Inst::Halt => OpKind::Halt,
    }
}

/// A [`Program`] decoded once into a flat array of resolved ops.
///
/// Construction is `O(text)` and performed once per program; every
/// fast-forward interval then dispatches on the dense [`OpKind`] enum with
/// no per-step re-decode. The translation is positional — op `i`
/// corresponds to instruction index `i` — so the PC semantics of the
/// reference interpreter carry over unchanged.
#[derive(Debug, Clone)]
pub struct TranslatedProgram {
    ops: Vec<Op>,
}

impl TranslatedProgram {
    /// Pre-decode `program`.
    pub fn new(program: &Program) -> TranslatedProgram {
        TranslatedProgram {
            ops: program
                .insts
                .iter()
                .enumerate()
                .map(|(pc, &inst)| {
                    let iaddr = program.inst_addr(pc);
                    Op {
                        kind: translate(inst),
                        iaddr,
                        iline: iaddr / 64,
                    }
                })
                .collect(),
        }
    }

    /// Number of pre-decoded ops (equals the program's text length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the translated text is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Interp {
    #[inline]
    fn reg_idx(&self, r: u8) -> u64 {
        self.regs[(r & 31) as usize]
    }

    #[inline]
    fn set_reg_idx(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.regs[(r & 31) as usize] = v;
        }
    }

    /// Execute up to `max_steps` instructions from the pre-decoded
    /// `tp`, reporting warming events to `hooks`. Returns the number of
    /// instructions **executed** (faulting steps execute without retiring,
    /// exactly as in [`Interp::step_info`]); stops early on `Halt`.
    ///
    /// `tp` must be the translation of the program this interpreter runs
    /// (positional PC correspondence is assumed; debug builds assert the
    /// text lengths match). Architectural behaviour — registers, PC,
    /// memory, MSRs, fault delivery, retirement and halt — is bit-exact
    /// with driving [`Interp::step_info`] in a loop, and the hook call
    /// sequence matches the sampled simulator's reference warming order.
    ///
    /// # Errors
    ///
    /// [`InterpError::PcOutOfRange`] when the PC leaves the text segment
    /// and [`InterpError::UnhandledFault`] when a fault commits with no
    /// registered handler — the same conditions, in the same order, as the
    /// reference engine.
    pub fn run_translated<H: ExecHooks>(
        &mut self,
        tp: &TranslatedProgram,
        max_steps: u64,
        hooks: &mut H,
    ) -> Result<u64, InterpError> {
        debug_assert_eq!(tp.ops.len(), self.program.len(), "translation mismatch");
        let mut executed = 0u64;
        while executed < max_steps && !self.halted {
            let Some(op) = tp.ops.get(self.pc) else {
                return Err(InterpError::PcOutOfRange { pc: self.pc });
            };
            hooks.inst(op.iaddr, op.iline);
            executed += 1;
            let mut next = self.pc + 1;
            match op.kind {
                OpKind::Li { rd, imm } => self.set_reg_idx(rd, imm),
                OpKind::AluRR { op, rd, rs1, rs2 } => {
                    let v = op.apply(self.reg_idx(rs1), self.reg_idx(rs2));
                    self.set_reg_idx(rd, v);
                }
                OpKind::AluRI { op, rd, rs1, imm } => {
                    let v = op.apply(self.reg_idx(rs1), imm);
                    self.set_reg_idx(rd, v);
                }
                OpKind::Load {
                    rd,
                    base,
                    off,
                    size,
                } => {
                    let addr = self.reg_idx(base).wrapping_add(off);
                    if self.priv_map.is_privileged(addr) {
                        self.deliver_fault(Fault::PrivilegedAccess { addr })?;
                        continue;
                    }
                    let v = self.mem.read(addr, size);
                    self.set_reg_idx(rd, v);
                    hooks.data(addr);
                }
                OpKind::Store {
                    src,
                    base,
                    off,
                    size,
                } => {
                    let addr = self.reg_idx(base).wrapping_add(off);
                    if self.priv_map.is_privileged(addr) {
                        self.deliver_fault(Fault::PrivilegedAccess { addr })?;
                        continue;
                    }
                    let v = self.reg_idx(src);
                    self.mem.write(addr, v, size);
                    hooks.data(addr);
                }
                OpKind::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let taken = cond.eval(self.reg_idx(rs1), self.reg_idx(rs2));
                    if taken {
                        next = target;
                    }
                    hooks.branch(op.iaddr, taken);
                }
                OpKind::Jmp { target } => next = target,
                OpKind::JmpInd { base } => {
                    next = self.reg_idx(base) as usize;
                    hooks.jmp_ind(op.iaddr, next);
                }
                OpKind::Call { target } => {
                    let ret_pc = self.pc + 1;
                    self.set_reg_idx(RA.index() as u8, ret_pc as u64);
                    next = target;
                    hooks.call(ret_pc);
                }
                OpKind::CallInd { base } => {
                    let t = self.reg_idx(base) as usize;
                    let ret_pc = self.pc + 1;
                    self.set_reg_idx(RA.index() as u8, ret_pc as u64);
                    next = t;
                    hooks.call_ind(op.iaddr, ret_pc, t);
                }
                OpKind::Ret => {
                    next = self.reg_idx(RA.index() as u8) as usize;
                    hooks.ret();
                }
                OpKind::RdCycle { rd } => {
                    let v = self.retired;
                    self.set_reg_idx(rd, v);
                }
                OpKind::RdMsr { rd, idx } => {
                    if !self.msrs.user_may_read(idx) {
                        self.deliver_fault(Fault::PrivilegedMsr { idx })?;
                        continue;
                    }
                    let v = self.msrs.read(idx);
                    self.set_reg_idx(rd, v);
                }
                OpKind::ClFlush { base, off } => {
                    let addr = self.reg_idx(base).wrapping_add(off);
                    hooks.flush(addr);
                }
                OpKind::Nop => {}
                OpKind::Halt => {
                    self.halted = true;
                    self.retired += 1;
                    continue;
                }
            }
            self.retired += 1;
            self.pc = next;
        }
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::genprog::{generate, GenConfig};
    use crate::inst::MemSize;
    use crate::mem::KERNEL_BASE;
    use crate::reg::Reg;

    /// Hook that records the exact event sequence for order pinning.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl ExecHooks for Recorder {
        fn inst(&mut self, iaddr: u64, iline: u64) {
            self.events.push(format!("inst {iaddr:#x} {iline}"));
        }
        fn branch(&mut self, iaddr: u64, taken: bool) {
            self.events.push(format!("branch {iaddr:#x} {taken}"));
        }
        fn call(&mut self, ret_pc: usize) {
            self.events.push(format!("call {ret_pc}"));
        }
        fn call_ind(&mut self, iaddr: u64, ret_pc: usize, next_pc: usize) {
            self.events
                .push(format!("callind {iaddr:#x} {ret_pc} {next_pc}"));
        }
        fn jmp_ind(&mut self, iaddr: u64, next_pc: usize) {
            self.events.push(format!("jmpind {iaddr:#x} {next_pc}"));
        }
        fn ret(&mut self) {
            self.events.push("ret".into());
        }
        fn data(&mut self, addr: u64) {
            self.events.push(format!("data {addr:#x}"));
        }
        fn flush(&mut self, addr: u64) {
            self.events.push(format!("flush {addr:#x}"));
        }
    }

    /// The hook sequence the reference warming driver would produce from
    /// `step_info` reports, for differential comparison. The `inst` event
    /// fires iff the fetch succeeds, matching `run_translated` (which
    /// reports the instruction line before executing it, including on
    /// handled *and* unhandled faults, but not on a PC escape).
    #[allow(clippy::type_complexity)]
    fn reference_events(
        program: &Program,
        max_steps: u64,
    ) -> (Interp, Vec<String>, Result<u64, InterpError>) {
        let mut interp = Interp::new(program);
        let mut ev = Vec::new();
        let mut executed = 0u64;
        let res = loop {
            if executed >= max_steps || interp.halted() {
                break Ok(executed);
            }
            let pc = interp.pc();
            if program.fetch(pc).is_some() {
                let iaddr = program.inst_addr(pc);
                ev.push(format!("inst {iaddr:#x} {}", iaddr / 64));
            }
            let info = match interp.step_info() {
                Ok(Some(info)) => info,
                Ok(None) => break Ok(executed),
                Err(e) => break Err(e),
            };
            executed += 1;
            if info.faulted {
                continue;
            }
            match info.inst {
                Inst::Branch { .. } => {
                    ev.push(format!(
                        "branch {iaddr:#x} {}",
                        info.taken.unwrap_or(false),
                        iaddr = program.inst_addr(info.pc)
                    ));
                }
                Inst::Call { .. } => ev.push(format!("call {}", info.pc + 1)),
                Inst::CallInd { .. } => ev.push(format!(
                    "callind {iaddr:#x} {} {}",
                    info.pc + 1,
                    info.next_pc,
                    iaddr = program.inst_addr(info.pc)
                )),
                Inst::JmpInd { .. } => ev.push(format!(
                    "jmpind {iaddr:#x} {}",
                    info.next_pc,
                    iaddr = program.inst_addr(info.pc)
                )),
                Inst::Ret => ev.push("ret".into()),
                _ => {}
            }
            if let Some(addr) = info.data_addr {
                ev.push(format!("data {addr:#x}"));
            }
            if let Some(addr) = info.flush_addr {
                ev.push(format!("flush {addr:#x}"));
            }
        };
        (interp, ev, res)
    }

    fn assert_engines_agree(program: &Program, max_steps: u64) {
        let tp = TranslatedProgram::new(program);
        let mut fast = Interp::new(program);
        let mut rec = Recorder::default();
        let fast_res = fast.run_translated(&tp, max_steps, &mut rec);
        let (reference, ref_events, ref_res) = reference_events(program, max_steps);
        assert_eq!(fast, reference, "architectural state diverged");
        assert_eq!(rec.events, ref_events, "warming event stream diverged");
        assert_eq!(fast_res, ref_res, "termination diverged");
    }

    #[test]
    fn straight_line_program_matches_reference() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 0x1_0000);
        asm.li(Reg::X3, 0xAB);
        asm.st1(Reg::X3, Reg::X2, 5);
        asm.ld1(Reg::X4, Reg::X2, 5);
        asm.clflush(Reg::X2, 5);
        asm.halt();
        assert_engines_agree(&asm.assemble().unwrap(), 1000);
    }

    #[test]
    fn control_flow_and_calls_match_reference() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        let done = asm.new_label();
        asm.li(Reg::X2, 3);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.call(f);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(f);
        asm.addi(Reg::X5, Reg::X5, 7);
        asm.ret();
        asm.bind(done);
        asm.halt();
        assert_engines_agree(&asm.assemble().unwrap(), 10_000);
    }

    #[test]
    fn faulting_load_with_handler_matches_reference() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.li(Reg::X2, KERNEL_BASE);
        asm.load(Reg::X3, Reg::X2, 0, MemSize::B8);
        asm.halt();
        asm.bind(h);
        asm.li(Reg::X4, 1);
        asm.halt();
        assert_engines_agree(&asm.assemble().unwrap(), 1000);
    }

    #[test]
    fn faulting_msr_read_matches_reference() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.msr(1, 0x42).msr(2, 0x43).msr_user_ok(2);
        asm.rdmsr(Reg::X5, 2);
        asm.rdmsr(Reg::X6, 1); // faults
        asm.halt();
        asm.bind(h);
        asm.halt();
        assert_engines_agree(&asm.assemble().unwrap(), 1000);
    }

    #[test]
    fn unhandled_fault_is_the_same_error() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, KERNEL_BASE);
        asm.load(Reg::X3, Reg::X2, 0, MemSize::B8);
        asm.halt();
        let p = asm.assemble().unwrap();
        let tp = TranslatedProgram::new(&p);
        let mut fast = Interp::new(&p);
        let err = fast
            .run_translated(&tp, 1000, &mut NoHooks)
            .expect_err("must fault");
        let mut reference = Interp::new(&p);
        let ref_err = reference.run(1000).expect_err("must fault");
        assert_eq!(err, ref_err);
    }

    #[test]
    fn pc_out_of_range_is_the_same_error() {
        let mut asm = Asm::new();
        asm.nop();
        let p = asm.assemble().unwrap();
        let tp = TranslatedProgram::new(&p);
        let mut fast = Interp::new(&p);
        assert_eq!(
            fast.run_translated(&tp, 10, &mut NoHooks),
            Err(InterpError::PcOutOfRange { pc: 1 })
        );
    }

    #[test]
    fn step_budget_stops_mid_program_resumably() {
        let mut asm = Asm::new();
        let top = asm.here_label();
        asm.addi(Reg::X2, Reg::X2, 1);
        asm.beq(Reg::X0, Reg::X0, top);
        let p = asm.assemble().unwrap();
        let tp = TranslatedProgram::new(&p);
        let mut fast = Interp::new(&p);
        // Drive in uneven chunks; state must track the reference stepping.
        let mut total = 0u64;
        for chunk in [1u64, 3, 2, 10] {
            total += fast.run_translated(&tp, chunk, &mut NoHooks).unwrap();
        }
        let mut reference = Interp::new(&p);
        for _ in 0..total {
            reference.step().unwrap();
        }
        assert_eq!(fast, reference);
    }

    #[test]
    fn halted_interp_executes_nothing() {
        let p = Program::empty();
        let tp = TranslatedProgram::new(&p);
        let mut i = Interp::new(&p);
        assert_eq!(i.run_translated(&tp, 10, &mut NoHooks).unwrap(), 1);
        assert!(i.halted());
        assert_eq!(i.run_translated(&tp, 10, &mut NoHooks).unwrap(), 0);
    }

    #[test]
    fn fuzzed_programs_match_reference() {
        for seed in 0..40u64 {
            let p = generate(seed, GenConfig::default());
            assert_engines_agree(&p, 200_000);
        }
    }
}
