//! Architectural reference interpreter.
//!
//! [`Interp`] executes a [`Program`] with *no* micro-architecture at all —
//! no speculation, no caches, no pipelines. It defines the architectural
//! contract every timing model must match: the differential test suites run
//! random programs on this interpreter and on each core model and require
//! identical final registers, memory and retired-instruction counts. NDA
//! may change *when* things happen, never *what* happens.

use crate::inst::{Inst, Src2};
use crate::mem::{MsrFile, PrivilegeMap, SparseMem};
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS, RA};
use std::error::Error;
use std::fmt;

/// An architectural fault (permission violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Load or store touched the kernel address range in user mode.
    PrivilegedAccess {
        /// The offending address.
        addr: u64,
    },
    /// `RdMsr` of a register not in the user-permitted set.
    PrivilegedMsr {
        /// The offending MSR number.
        idx: u16,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PrivilegedAccess { addr } => write!(f, "privileged access to {addr:#x}"),
            Fault::PrivilegedMsr { idx } => write!(f, "privileged read of msr {idx}"),
        }
    }
}

/// Errors terminating interpretation abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The PC left the text segment.
    PcOutOfRange {
        /// The out-of-range PC.
        pc: usize,
    },
    /// A fault committed and the program has no fault handler.
    UnhandledFault(Fault),
    /// The step budget was exhausted before `Halt`.
    StepLimit,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            InterpError::UnhandledFault(fault) => write!(f, "unhandled fault: {fault}"),
            InterpError::StepLimit => write!(f, "step limit exhausted before halt"),
        }
    }
}

impl Error for InterpError {}

/// Summary of a completed [`Interp::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitInfo {
    /// `true` if the program executed `Halt`.
    pub halted: bool,
    /// Architecturally retired instructions (faulting instructions do not
    /// retire; the transfer to the handler is not counted).
    pub retired: u64,
    /// Number of faults delivered to the fault handler.
    pub faults: u64,
}

/// Per-step architectural effects, reported by [`Interp::step_info`] so a
/// functional-warming driver (sampled simulation's fast-forward phase) can
/// touch caches and train predictors without re-decoding the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// PC of the instruction that executed (instruction index).
    pub pc: usize,
    /// The instruction itself.
    pub inst: Inst,
    /// Byte address touched by a *non-faulting* load or store.
    pub data_addr: Option<u64>,
    /// Byte address evicted by `ClFlush`.
    pub flush_addr: Option<u64>,
    /// Resolved direction of a conditional branch.
    pub taken: Option<bool>,
    /// PC after the step (the fault handler when `faulted`).
    pub next_pc: usize,
    /// `true` if the instruction faulted (and therefore did not retire).
    pub faulted: bool,
}

/// The reference interpreter. See the [module documentation](self).
///
/// Fields are crate-visible so the pre-decoded fast path
/// ([`Interp::run_translated`](crate::translate)) can drive the *same*
/// architectural state without per-field accessor overhead — the two
/// engines share one state representation, which is what makes their
/// bit-exactness a structural property rather than a copy discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct Interp {
    pub(crate) program: Program,
    pub(crate) regs: [u64; NUM_REGS],
    pub(crate) pc: usize,
    /// Architectural memory; shared semantics with the timing cores.
    pub mem: SparseMem,
    /// The MSR file.
    pub msrs: MsrFile,
    pub(crate) priv_map: PrivilegeMap,
    pub(crate) retired: u64,
    pub(crate) faults: u64,
    pub(crate) halted: bool,
}

/// Exact architectural snapshot of an [`Interp`], detached from the
/// program text. Produced by [`Interp::dump_state`] and consumed by
/// [`Interp::from_state`]; the persistent checkpoint store serializes this
/// (the program itself is part of the store key, so only the mutable state
/// travels with each entry).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpState {
    /// The architectural register file.
    pub regs: [u64; NUM_REGS],
    /// Program counter (instruction index).
    pub pc: usize,
    /// Retired-instruction count.
    pub retired: u64,
    /// Faults delivered so far.
    pub faults: u64,
    /// Whether `Halt` has executed.
    pub halted: bool,
    /// Architectural memory image.
    pub mem: SparseMem,
    /// MSR file contents.
    pub msrs: MsrFile,
}

impl Interp {
    /// Create an interpreter with the program's data segment and MSR file
    /// loaded.
    pub fn new(program: &Program) -> Interp {
        let mut mem = SparseMem::new();
        for init in &program.data {
            mem.write_bytes(init.addr, &init.bytes);
        }
        Interp {
            msrs: MsrFile::from_program(program),
            mem,
            program: program.clone(),
            regs: [0; NUM_REGS],
            pc: program.entry,
            priv_map: PrivilegeMap,
            retired: 0,
            faults: 0,
            halted: false,
        }
    }

    /// Current value of an architectural register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Set an architectural register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The full architectural register file.
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Retired-instruction count so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// `true` once `Halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Faults delivered so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Snapshot the complete architectural state (registers, PC, memory,
    /// MSRs, retirement/fault counters, halt flag). See [`InterpState`].
    pub fn dump_state(&self) -> InterpState {
        InterpState {
            regs: self.regs,
            pc: self.pc,
            retired: self.retired,
            faults: self.faults,
            halted: self.halted,
            mem: self.mem.clone(),
            msrs: self.msrs.clone(),
        }
    }

    /// Rebuild an interpreter from a [`Interp::dump_state`] snapshot and
    /// the program it was taken from. The result compares equal to the
    /// original interpreter (`Interp` derives `PartialEq`), which is the
    /// bit-exactness contract of the persistent checkpoint store.
    pub fn from_state(program: &Program, state: InterpState) -> Interp {
        Interp {
            program: program.clone(),
            regs: state.regs,
            pc: state.pc,
            mem: state.mem,
            msrs: state.msrs,
            priv_map: PrivilegeMap,
            retired: state.retired,
            faults: state.faults,
            halted: state.halted,
        }
    }

    pub(crate) fn deliver_fault(&mut self, fault: Fault) -> Result<(), InterpError> {
        self.faults += 1;
        match self.program.fault_handler {
            Some(h) => {
                self.pc = h;
                Ok(())
            }
            None => Err(InterpError::UnhandledFault(fault)),
        }
    }

    /// Execute a single instruction.
    ///
    /// # Errors
    ///
    /// See [`InterpError`]. A fault with a registered handler is *not* an
    /// error; control transfers to the handler.
    pub fn step(&mut self) -> Result<(), InterpError> {
        self.step_info().map(|_| ())
    }

    /// Execute a single instruction and report its architectural effects.
    ///
    /// Semantically identical to [`Interp::step`] ([`Interp::step`] *is*
    /// this call with the report discarded); the [`StepInfo`] exists so the
    /// sampled-simulation fast-forward driver can warm caches and train
    /// predictors from the committed stream. Returns `Ok(None)` when the
    /// interpreter has already halted.
    ///
    /// # Errors
    ///
    /// See [`InterpError`]. A fault with a registered handler is *not* an
    /// error; the report has `faulted` set and `next_pc` at the handler.
    pub fn step_info(&mut self) -> Result<Option<StepInfo>, InterpError> {
        if self.halted {
            return Ok(None);
        }
        let inst = self
            .program
            .fetch(self.pc)
            .ok_or(InterpError::PcOutOfRange { pc: self.pc })?;
        let mut info = StepInfo {
            pc: self.pc,
            inst,
            data_addr: None,
            flush_addr: None,
            taken: None,
            next_pc: self.pc + 1,
            faulted: false,
        };
        let mut next = self.pc + 1;
        match inst {
            Inst::Li { rd, imm } => self.set_reg(rd, imm),
            Inst::Alu { op, rd, rs1, src2 } => {
                let a = self.reg(rs1);
                let b = match src2 {
                    Src2::Reg(r) => self.reg(r),
                    Src2::Imm(i) => i,
                };
                self.set_reg(rd, op.apply(a, b));
            }
            Inst::Load {
                rd,
                base,
                off,
                size,
            } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                if self.priv_map.is_privileged(addr) {
                    self.deliver_fault(Fault::PrivilegedAccess { addr })?;
                    info.faulted = true;
                    info.next_pc = self.pc;
                    return Ok(Some(info));
                }
                let v = self.mem.read(addr, size.bytes());
                self.set_reg(rd, v);
                info.data_addr = Some(addr);
            }
            Inst::Store {
                src,
                base,
                off,
                size,
            } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                if self.priv_map.is_privileged(addr) {
                    self.deliver_fault(Fault::PrivilegedAccess { addr })?;
                    info.faulted = true;
                    info.next_pc = self.pc;
                    return Ok(Some(info));
                }
                let v = self.reg(src);
                self.mem.write(addr, v, size.bytes());
                info.data_addr = Some(addr);
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                if taken {
                    next = target;
                }
                info.taken = Some(taken);
            }
            Inst::Jmp { target } => next = target,
            Inst::JmpInd { base } => next = self.reg(base) as usize,
            Inst::Call { target } => {
                self.set_reg(RA, (self.pc + 1) as u64);
                next = target;
            }
            Inst::CallInd { base } => {
                let t = self.reg(base) as usize;
                self.set_reg(RA, (self.pc + 1) as u64);
                next = t;
            }
            Inst::Ret => next = self.reg(RA) as usize,
            Inst::RdCycle { rd } => {
                // The reference machine has no clock; expose retired count
                // so the value is deterministic. Timing models return real
                // cycles — differential tests therefore exclude RdCycle.
                let v = self.retired;
                self.set_reg(rd, v);
            }
            Inst::RdMsr { rd, idx } => {
                if !self.msrs.user_may_read(idx) {
                    self.deliver_fault(Fault::PrivilegedMsr { idx })?;
                    info.faulted = true;
                    info.next_pc = self.pc;
                    return Ok(Some(info));
                }
                let v = self.msrs.read(idx);
                self.set_reg(rd, v);
            }
            Inst::ClFlush { base, off } => {
                // Architecturally a no-op (the interpreter has no caches);
                // reported so a warming driver can mirror the eviction.
                info.flush_addr = Some(self.reg(base).wrapping_add(off as u64));
            }
            Inst::Fence | Inst::SpecOff | Inst::SpecOn | Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                self.retired += 1;
                info.next_pc = self.pc;
                return Ok(Some(info));
            }
        }
        self.retired += 1;
        self.pc = next;
        info.next_pc = next;
        Ok(Some(info))
    }

    /// Run until `Halt` or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// [`InterpError::StepLimit`] if the budget runs out, plus any
    /// [`Interp::step`] error.
    pub fn run(&mut self, max_steps: u64) -> Result<ExitInfo, InterpError> {
        for _ in 0..max_steps {
            if self.halted {
                break;
            }
            self.step()?;
        }
        if !self.halted {
            return Err(InterpError::StepLimit);
        }
        Ok(ExitInfo {
            halted: true,
            retired: self.retired,
            faults: self.faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::inst::MemSize;
    use crate::mem::KERNEL_BASE;

    fn run(asm: &Asm) -> Interp {
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        i.run(100_000).unwrap();
        i
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 20)
            .li(Reg::X3, 22)
            .add(Reg::X4, Reg::X2, Reg::X3)
            .halt();
        let i = run(&asm);
        assert_eq!(i.reg(Reg::X4), 42);
        assert_eq!(i.retired(), 4);
    }

    #[test]
    fn x0_stays_zero() {
        let mut asm = Asm::new();
        asm.li(Reg::X0, 99).halt();
        let i = run(&asm);
        assert_eq!(i.reg(Reg::X0), 0);
    }

    #[test]
    fn loop_with_counter() {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 10).li(Reg::X3, 0);
        let top = asm.here_label();
        asm.beq(Reg::X2, Reg::X0, done);
        asm.addi(Reg::X3, Reg::X3, 3);
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.jmp(top);
        asm.bind(done);
        asm.halt();
        let i = run(&asm);
        assert_eq!(i.reg(Reg::X3), 30);
    }

    #[test]
    fn memory_roundtrip_via_program() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 0x1_0000);
        asm.li(Reg::X3, 0xAB);
        asm.st1(Reg::X3, Reg::X2, 5);
        asm.ld1(Reg::X4, Reg::X2, 5);
        asm.halt();
        let i = run(&asm);
        assert_eq!(i.reg(Reg::X4), 0xAB);
    }

    #[test]
    fn data_segment_visible() {
        let mut asm = Asm::new();
        asm.data_u64s(0x2000, &[0xfeed]);
        asm.li(Reg::X2, 0x2000).ld8(Reg::X3, Reg::X2, 0).halt();
        let i = run(&asm);
        assert_eq!(i.reg(Reg::X3), 0xfeed);
    }

    #[test]
    fn call_and_ret() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        asm.call(f);
        asm.halt();
        asm.bind(f);
        asm.li(Reg::X5, 7);
        asm.ret();
        let i = run(&asm);
        assert_eq!(i.reg(Reg::X5), 7);
        assert!(i.halted());
    }

    #[test]
    fn indirect_call_through_table() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        let table = 0x3000u64;
        asm.li(Reg::X2, table);
        asm.ld8(Reg::X3, Reg::X2, 0);
        asm.call_ind(Reg::X3);
        asm.halt();
        asm.bind(f);
        asm.li(Reg::X6, 0x77);
        asm.ret();
        let mut p = asm.assemble().unwrap();
        // Store the function's instruction index in the table.
        let target = 4u64; // index of li x6 (after: li, ld8, callind, halt)
        p.data.push(crate::DataInit {
            addr: table,
            bytes: target.to_le_bytes().to_vec(),
        });
        let mut i = Interp::new(&p);
        i.run(1000).unwrap();
        assert_eq!(i.reg(Reg::X6), 0x77);
    }

    #[test]
    fn privileged_load_without_handler_errors() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, KERNEL_BASE);
        asm.load(Reg::X3, Reg::X2, 0, MemSize::B8);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        let err = i.run(100).unwrap_err();
        assert!(matches!(
            err,
            InterpError::UnhandledFault(Fault::PrivilegedAccess { .. })
        ));
    }

    #[test]
    fn privileged_load_with_handler_recovers() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.li(Reg::X2, KERNEL_BASE);
        asm.load(Reg::X3, Reg::X2, 0, MemSize::B8);
        asm.halt(); // skipped: fault jumps to handler
        asm.bind(h);
        asm.li(Reg::X4, 1);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        let exit = i.run(100).unwrap();
        assert_eq!(exit.faults, 1);
        assert_eq!(i.reg(Reg::X4), 1);
        assert_eq!(
            i.reg(Reg::X3),
            0,
            "faulting load must not write its destination"
        );
    }

    #[test]
    fn privileged_msr_faults_permitted_msr_reads() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.msr(1, 0x42).msr(2, 0x43).msr_user_ok(2);
        asm.rdmsr(Reg::X5, 2);
        asm.rdmsr(Reg::X6, 1); // faults
        asm.halt();
        asm.bind(h);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        let exit = i.run(100).unwrap();
        assert_eq!(i.reg(Reg::X5), 0x43);
        assert_eq!(i.reg(Reg::X6), 0);
        assert_eq!(exit.faults, 1);
    }

    #[test]
    fn step_info_reports_effects_and_matches_step() {
        let mut asm = Asm::new();
        let done = asm.new_label();
        asm.li(Reg::X2, 0x1_0000);
        asm.li(Reg::X3, 0xAB);
        asm.st1(Reg::X3, Reg::X2, 5);
        asm.ld1(Reg::X4, Reg::X2, 5);
        asm.beq(Reg::X4, Reg::X3, done);
        asm.nop();
        asm.bind(done);
        asm.halt();
        let p = asm.assemble().unwrap();

        let mut a = Interp::new(&p);
        let mut b = Interp::new(&p);
        let mut infos = Vec::new();
        while !a.halted() {
            infos.push(a.step_info().unwrap().expect("not halted"));
            b.step().unwrap();
        }
        assert_eq!(a, b, "step_info and step must be interchangeable");
        assert_eq!(a.step_info().unwrap(), None, "halted reports None");

        // st1 / ld1 report the touched address; the branch its direction.
        assert_eq!(infos[2].data_addr, Some(0x1_0005));
        assert_eq!(infos[3].data_addr, Some(0x1_0005));
        assert_eq!(infos[4].taken, Some(true));
        assert_eq!(infos[4].next_pc, 6);
        assert!(infos.iter().all(|i| !i.faulted));
    }

    #[test]
    fn step_info_flags_faults_without_data_addr() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.li(Reg::X2, KERNEL_BASE);
        asm.load(Reg::X3, Reg::X2, 0, MemSize::B8);
        asm.halt();
        asm.bind(h);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        i.step().unwrap();
        let info = i.step_info().unwrap().unwrap();
        assert!(info.faulted);
        assert_eq!(info.data_addr, None, "faulting access must not warm");
        assert_eq!(info.next_pc, 3, "control transfers to the handler");
        assert_eq!(i.retired(), 1, "faulting instruction did not retire");
    }

    #[test]
    fn step_limit_reported() {
        let mut asm = Asm::new();
        let top = asm.here_label();
        asm.jmp(top);
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(10).unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn pc_out_of_range_reported() {
        let mut asm = Asm::new();
        asm.nop();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        let err = i.run(10).unwrap_err();
        assert_eq!(err, InterpError::PcOutOfRange { pc: 1 });
    }
}
