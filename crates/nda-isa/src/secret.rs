//! Secret labeling for static leakage analysis.
//!
//! A [`SecretSpec`] tells an analysis which architectural state holds data
//! the program must not transmit through a side channel: byte ranges of
//! the data segment, model-specific registers, and (for Meltdown-style
//! settings) the entire privileged half of the address space. The spec is
//! part of the *threat model*, not the program — the same program analyzed
//! under different specs yields different gadget sets, and an empty spec
//! means nothing is secret (the benign-workload baseline).

use crate::mem::KERNEL_BASE;

/// A labeled byte range `[start, start + len)` of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretRange {
    /// First byte of the range.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl SecretRange {
    /// `true` if `[start, start + len)` overlaps this range at all.
    pub fn overlaps(&self, start: u64, len: u64) -> bool {
        let a_end = self.start.saturating_add(self.len);
        let b_end = start.saturating_add(len);
        start < a_end && self.start < b_end
    }

    /// `true` if `[start, start + len)` lies entirely inside this range.
    pub fn contains(&self, start: u64, len: u64) -> bool {
        start >= self.start && start.saturating_add(len) <= self.start.saturating_add(self.len)
    }
}

/// What an analysis should treat as secret.
///
/// Built with the fluent `with_*` methods:
///
/// ```
/// use nda_isa::SecretSpec;
///
/// let spec = SecretSpec::empty()
///     .with_range(0x52_0000, 1)
///     .with_msr(0x10)
///     .with_privileged();
/// assert!(spec.overlaps(0x52_0000, 1));
/// assert!(spec.msr_labeled(0x10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecretSpec {
    /// Labeled data ranges.
    pub ranges: Vec<SecretRange>,
    /// Labeled model-specific registers.
    pub msrs: Vec<u16>,
    /// Treat every privileged (kernel) address and every non-user-readable
    /// MSR as secret — the Meltdown/LazyFP threat model.
    pub privileged: bool,
}

impl SecretSpec {
    /// A spec labeling nothing: the benign baseline.
    pub fn empty() -> SecretSpec {
        SecretSpec::default()
    }

    /// Label the byte range `[start, start + len)`.
    pub fn with_range(mut self, start: u64, len: u64) -> SecretSpec {
        self.ranges.push(SecretRange { start, len });
        self
    }

    /// Label MSR `idx`.
    pub fn with_msr(mut self, idx: u16) -> SecretSpec {
        self.msrs.push(idx);
        self
    }

    /// Label all privileged state (kernel memory, privileged MSRs).
    pub fn with_privileged(mut self) -> SecretSpec {
        self.privileged = true;
        self
    }

    /// `true` if nothing at all is labeled.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.msrs.is_empty() && !self.privileged
    }

    /// `true` if an access to `[start, start + len)` *may* touch a secret:
    /// it overlaps a labeled range, or reaches kernel space under the
    /// privileged label.
    pub fn overlaps(&self, start: u64, len: u64) -> bool {
        self.ranges.iter().any(|r| r.overlaps(start, len))
            || (self.privileged && start.saturating_add(len) > KERNEL_BASE)
    }

    /// `true` if an access to `[start, start + len)` *definitely* touches
    /// only labeled bytes — it lies entirely within one labeled range or
    /// entirely in kernel space under the privileged label.
    pub fn contains(&self, start: u64, len: u64) -> bool {
        self.ranges.iter().any(|r| r.contains(start, len))
            || (self.privileged && start >= KERNEL_BASE)
    }

    /// `true` if MSR `idx` is explicitly labeled secret.
    pub fn msr_labeled(&self, idx: u16) -> bool {
        self.msrs.contains(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_labels_nothing() {
        let s = SecretSpec::empty();
        assert!(s.is_empty());
        assert!(!s.overlaps(0, u64::MAX));
        assert!(!s.contains(KERNEL_BASE, 8));
        assert!(!s.msr_labeled(0));
    }

    #[test]
    fn range_overlap_and_containment() {
        let s = SecretSpec::empty().with_range(0x1000, 16);
        assert!(s.overlaps(0x100f, 2));
        assert!(!s.overlaps(0x1010, 4));
        assert!(s.contains(0x1008, 8));
        assert!(!s.contains(0x1008, 9));
        assert!(!s.is_empty());
    }

    #[test]
    fn privileged_label_covers_kernel_space() {
        let s = SecretSpec::empty().with_privileged();
        assert!(s.overlaps(KERNEL_BASE + 0x1000, 1));
        assert!(s.contains(KERNEL_BASE + 0x1000, 8));
        assert!(!s.overlaps(KERNEL_BASE - 0x1000, 8));
        // An access straddling the boundary may but does not definitely
        // touch kernel bytes.
        assert!(s.overlaps(KERNEL_BASE - 4, 8));
        assert!(!s.contains(KERNEL_BASE - 4, 8));
    }

    #[test]
    fn msr_labels() {
        let s = SecretSpec::empty().with_msr(0x10);
        assert!(s.msr_labeled(0x10));
        assert!(!s.msr_labeled(0x11));
    }
}
