//! A small label-based assembler for SpecRISC.
//!
//! [`Asm`] is a non-consuming builder: emit instructions in order, create
//! [`Label`]s for forward/backward control flow, and call
//! [`Asm::assemble`] to resolve every reference into a [`Program`].
//!
//! ```
//! use nda_isa::{Asm, Reg};
//!
//! let mut asm = Asm::new();
//! let done = asm.new_label();
//! asm.li(Reg::X2, 3);
//! let top = asm.here_label();
//! asm.beq(Reg::X2, Reg::X0, done);
//! asm.subi(Reg::X2, Reg::X2, 1);
//! asm.jmp(top);
//! asm.bind(done);
//! asm.halt();
//! let prog = asm.assemble()?;
//! assert!(prog.len() > 0);
//! # Ok::<(), nda_isa::AsmError>(())
//! ```

use crate::inst::{AluOp, BranchCond, Inst, MemSize, Src2};
use crate::program::{DataInit, Program};
use crate::reg::Reg;
use crate::TEXT_BASE;
use std::error::Error;
use std::fmt;

/// A control-flow label. Created by [`Asm::new_label`], positioned by
/// [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never [`Asm::bind`]-ed.
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
    /// The program has no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            AsmError::Rebound(l) => write!(f, "label {l:?} bound twice"),
            AsmError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl Error for AsmError {}

/// The assembler/builder. See the [module documentation](self) for an
/// example.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    /// (instruction index, label) pairs whose `target` field is patched at
    /// assembly time.
    fixups: Vec<(usize, Label)>,
    labels: Vec<Option<usize>>,
    data: Vec<DataInit>,
    fault_handler: Option<Label>,
    msr_values: Vec<(u16, u64)>,
    msr_user_ok: Vec<u16>,
    text_base: u64,
}

impl Asm {
    /// A fresh assembler with the default text base.
    pub fn new() -> Asm {
        Asm {
            text_base: TEXT_BASE,
            ..Asm::default()
        }
    }

    /// Index of the *next* instruction to be emitted.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Create an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Create a label already bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.new_label();
        self.labels[l.0] = Some(self.here());
        l
    }

    /// Bind `label` to the current position.
    ///
    /// Binding the same label twice is reported by [`Asm::assemble`].
    pub fn bind(&mut self, label: Label) -> &mut Asm {
        match self.labels[label.0] {
            // Rebinding is recorded as a sentinel and reported at assemble
            // time so builder chains stay infallible.
            Some(_) => self.labels[label.0] = Some(usize::MAX),
            None => self.labels[label.0] = Some(self.here()),
        }
        self
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Asm {
        self.insts.push(inst);
        self
    }

    fn push_target(&mut self, inst: Inst, label: Label) -> &mut Asm {
        self.fixups.push((self.insts.len(), label));
        self.insts.push(inst);
        self
    }

    // ---- data & environment -------------------------------------------

    /// Initialize `bytes` at `addr` in the data segment.
    pub fn data(&mut self, addr: u64, bytes: &[u8]) -> &mut Asm {
        self.data.push(DataInit {
            addr,
            bytes: bytes.to_vec(),
        });
        self
    }

    /// Initialize little-endian `u64` words starting at `addr`.
    pub fn data_u64s(&mut self, addr: u64, words: &[u64]) -> &mut Asm {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data(addr, &bytes)
    }

    /// Set the fault-handler entry point.
    pub fn fault_handler(&mut self, label: Label) -> &mut Asm {
        self.fault_handler = Some(label);
        self
    }

    /// Set an initial MSR value.
    pub fn msr(&mut self, idx: u16, val: u64) -> &mut Asm {
        self.msr_values.push((idx, val));
        self
    }

    /// Allow user-mode reads of MSR `idx`.
    pub fn msr_user_ok(&mut self, idx: u16) -> &mut Asm {
        self.msr_user_ok.push(idx);
        self
    }

    // ---- instructions ---------------------------------------------------

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: u64) -> &mut Asm {
        self.push(Inst::Li { rd, imm })
    }

    /// `rd = rs` (encoded as `add rd, rs, 0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.alui(AluOp::Add, rd, rs, 0)
    }

    /// Register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op,
            rd,
            rs1,
            src2: Src2::Reg(rs2),
        })
    }

    /// Register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: u64) -> &mut Asm {
        self.push(Inst::Alu {
            op,
            rd,
            rs1,
            src2: Src2::Imm(imm),
        })
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: u64) -> &mut Asm {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 - imm`.
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: u64) -> &mut Asm {
        self.alui(AluOp::Sub, rd, rs1, imm)
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: u64) -> &mut Asm {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 << imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: u64) -> &mut Asm {
        self.alui(AluOp::Shl, rd, rs1, imm)
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// Load of `size` bytes: `rd = mem[base + off]`, zero-extended.
    pub fn load(&mut self, rd: Reg, base: Reg, off: i64, size: MemSize) -> &mut Asm {
        self.push(Inst::Load {
            rd,
            base,
            off,
            size,
        })
    }

    /// `rd = mem8[base + off]`.
    pub fn ld8(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Asm {
        self.load(rd, base, off, MemSize::B8)
    }

    /// `rd = mem1[base + off]` (one byte, zero-extended).
    pub fn ld1(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Asm {
        self.load(rd, base, off, MemSize::B1)
    }

    /// Store of `size` bytes: `mem[base + off] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, off: i64, size: MemSize) -> &mut Asm {
        self.push(Inst::Store {
            src,
            base,
            off,
            size,
        })
    }

    /// `mem8[base + off] = src`.
    pub fn st8(&mut self, src: Reg, base: Reg, off: i64) -> &mut Asm {
        self.store(src, base, off, MemSize::B8)
    }

    /// `mem1[base + off] = src`.
    pub fn st1(&mut self, src: Reg, base: Reg, off: i64) -> &mut Asm {
        self.store(src, base, off, MemSize::B1)
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_target(
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target: usize::MAX,
            },
            label,
        )
    }

    /// Branch if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Branch if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Branch if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Branch if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Branch if `rs1 < rs2` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// Branch if `rs1 >= rs2` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.branch(BranchCond::Geu, rs1, rs2, label)
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Asm {
        self.push_target(Inst::Jmp { target: usize::MAX }, label)
    }

    /// Indirect jump to the instruction index in `base`.
    pub fn jmp_ind(&mut self, base: Reg) -> &mut Asm {
        self.push(Inst::JmpInd { base })
    }

    /// Direct call to `label` (link register updated).
    pub fn call(&mut self, label: Label) -> &mut Asm {
        self.push_target(Inst::Call { target: usize::MAX }, label)
    }

    /// Indirect call through `base` (link register updated).
    pub fn call_ind(&mut self, base: Reg) -> &mut Asm {
        self.push(Inst::CallInd { base })
    }

    /// Return through the link register.
    pub fn ret(&mut self) -> &mut Asm {
        self.push(Inst::Ret)
    }

    /// `rd = cycle counter` (serializing).
    pub fn rdcycle(&mut self, rd: Reg) -> &mut Asm {
        self.push(Inst::RdCycle { rd })
    }

    /// `rd = msr[idx]` (load-like).
    pub fn rdmsr(&mut self, rd: Reg, idx: u16) -> &mut Asm {
        self.push(Inst::RdMsr { rd, idx })
    }

    /// Flush the cache line containing `base + off`.
    pub fn clflush(&mut self, base: Reg, off: i64) -> &mut Asm {
        self.push(Inst::ClFlush { base, off })
    }

    /// Full speculation barrier.
    pub fn fence(&mut self) -> &mut Asm {
        self.push(Inst::Fence)
    }

    /// Enter the Listing-4 no-speculation window (`stop_speculative_exec`).
    pub fn spec_off(&mut self) -> &mut Asm {
        self.push(Inst::SpecOff)
    }

    /// Leave the no-speculation window (`resume_speculative_exec`).
    pub fn spec_on(&mut self) -> &mut Asm {
        self.push(Inst::SpecOn)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Asm {
        self.push(Inst::Nop)
    }

    /// Stop the program.
    pub fn halt(&mut self) -> &mut Asm {
        self.push(Inst::Halt)
    }

    /// Load the *instruction index* a label resolves to into `rd`.
    ///
    /// Emits an `li` patched at assembly time; this is how programs build
    /// function-pointer tables for indirect calls (paper Listing 3).
    pub fn li_label(&mut self, rd: Reg, label: Label) -> &mut Asm {
        self.fixups.push((self.insts.len(), label));
        self.insts.push(Inst::Li { rd, imm: u64::MAX });
        self
    }

    /// Position a label is bound to, or `None` if unbound.
    pub fn label_position(&self, label: Label) -> Option<usize> {
        match self.labels.get(label.0).copied().flatten() {
            Some(usize::MAX) | None => None,
            pos => pos,
        }
    }

    /// Resolve labels and produce the [`Program`].
    ///
    /// # Errors
    ///
    /// [`AsmError::UnboundLabel`] if any referenced label was never bound,
    /// [`AsmError::Rebound`] if a label was bound twice, and
    /// [`AsmError::EmptyProgram`] for an empty text segment.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if self.insts.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        for (i, bound) in self.labels.iter().enumerate() {
            if *bound == Some(usize::MAX) {
                return Err(AsmError::Rebound(Label(i)));
            }
        }
        let resolve = |l: Label| -> Result<usize, AsmError> {
            match self.labels[l.0] {
                Some(pos) if pos != usize::MAX => Ok(pos),
                _ => Err(AsmError::UnboundLabel(l)),
            }
        };
        let mut insts = self.insts.clone();
        let mut code_ptr_lis = Vec::new();
        for &(idx, label) in &self.fixups {
            let pos = resolve(label)?;
            match &mut insts[idx] {
                Inst::Branch { target, .. } | Inst::Jmp { target } | Inst::Call { target } => {
                    *target = pos
                }
                Inst::Li { imm, .. } => {
                    *imm = pos as u64;
                    // Record code-pointer provenance so rewrite passes can
                    // relocate the materialized instruction index.
                    code_ptr_lis.push(idx);
                }
                other => unreachable!("fixup on non-target instruction {other:?}"),
            }
        }
        code_ptr_lis.sort_unstable();
        code_ptr_lis.dedup();
        let fault_handler = match self.fault_handler {
            Some(l) => Some(resolve(l)?),
            None => None,
        };
        Ok(Program {
            insts,
            entry: 0,
            data: self.data.clone(),
            fault_handler,
            msr_values: self.msr_values.clone(),
            msr_user_ok: self.msr_user_ok.clone(),
            text_base: self.text_base,
            code_ptr_lis,
            code_ptr_words: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new();
        let fwd = asm.new_label();
        let back = asm.here_label();
        asm.jmp(fwd);
        asm.jmp(back);
        asm.bind(fwd);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.insts[0], Inst::Jmp { target: 2 });
        assert_eq!(p.insts[1], Inst::Jmp { target: 0 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Asm::new();
        let l = asm.new_label();
        asm.jmp(l);
        assert!(matches!(asm.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut asm = Asm::new();
        let l = asm.new_label();
        asm.nop();
        asm.bind(l);
        asm.nop();
        asm.bind(l);
        asm.halt();
        assert!(matches!(asm.assemble(), Err(AsmError::Rebound(_))));
    }

    #[test]
    fn empty_program_is_an_error() {
        let asm = Asm::new();
        assert_eq!(asm.assemble(), Err(AsmError::EmptyProgram));
    }

    #[test]
    fn li_label_materializes_instruction_index() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        asm.li_label(Reg::X2, f);
        asm.halt();
        asm.bind(f);
        asm.ret();
        let p = asm.assemble().unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Li {
                rd: Reg::X2,
                imm: 2
            }
        );
    }

    #[test]
    fn data_u64s_little_endian() {
        let mut asm = Asm::new();
        asm.data_u64s(0x100, &[0x0102]);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.data[0].bytes[0], 0x02);
        assert_eq!(p.data[0].bytes.len(), 8);
    }

    #[test]
    fn fault_handler_resolves() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.nop();
        asm.bind(h);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.fault_handler, Some(1));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!AsmError::EmptyProgram.to_string().is_empty());
        assert!(!AsmError::UnboundLabel(Label(3)).to_string().is_empty());
    }
}
