//! Architectural register names.

use std::fmt;

/// One of the 32 architectural general-purpose registers.
///
/// `X0` is hard-wired to zero (writes are discarded); `X1` doubles as the
/// link register `ra` written by [`Inst::Call`](crate::Inst::Call) and read
/// by [`Inst::Ret`](crate::Inst::Ret).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    X0 = 0,
    X1,
    X2,
    X3,
    X4,
    X5,
    X6,
    X7,
    X8,
    X9,
    X10,
    X11,
    X12,
    X13,
    X14,
    X15,
    X16,
    X17,
    X18,
    X19,
    X20,
    X21,
    X22,
    X23,
    X24,
    X25,
    X26,
    X27,
    X28,
    X29,
    X30,
    X31,
}

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 32;

/// The link register written by `Call`/`CallInd` and consumed by `Ret`.
pub const RA: Reg = Reg::X1;

impl Reg {
    /// Register index in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        assert!(idx < NUM_REGS, "register index {idx} out of range");
        // SAFETY-free: exhaustive match avoids any transmute.
        ALL_REGS[idx]
    }

    /// `true` for the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Reg::X0
    }

    /// Iterator over every architectural register, `X0..=X31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        ALL_REGS.iter().copied()
    }
}

/// Table of every register, indexable by register number.
pub const ALL_REGS: [Reg; NUM_REGS] = [
    Reg::X0,
    Reg::X1,
    Reg::X2,
    Reg::X3,
    Reg::X4,
    Reg::X5,
    Reg::X6,
    Reg::X7,
    Reg::X8,
    Reg::X9,
    Reg::X10,
    Reg::X11,
    Reg::X12,
    Reg::X13,
    Reg::X14,
    Reg::X15,
    Reg::X16,
    Reg::X17,
    Reg::X18,
    Reg::X19,
    Reg::X20,
    Reg::X21,
    Reg::X22,
    Reg::X23,
    Reg::X24,
    Reg::X25,
    Reg::X26,
    Reg::X27,
    Reg::X28,
    Reg::X29,
    Reg::X30,
    Reg::X31,
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..NUM_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_matches_index() {
        assert_eq!(Reg::X0.to_string(), "x0");
        assert_eq!(Reg::X31.to_string(), "x31");
    }

    #[test]
    fn zero_register_identified() {
        assert!(Reg::X0.is_zero());
        assert!(!Reg::X1.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_out_of_range_panics() {
        let _ = Reg::from_index(32);
    }

    #[test]
    fn all_yields_each_register_once() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), NUM_REGS);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
