//! Static rewrite infrastructure: insert-before patches with sound pc
//! relocation.
//!
//! Mitigation passes (`nda-analyze::mitigate`) repair gadgets by inserting
//! instructions — a serializing fence ahead of a transmitter, an
//! address-clamping `and` ahead of a wild load, a `spec_off`/`spec_on`
//! bracket around an indirect transfer. Inserting into a SpecRISC program
//! shifts every later instruction index, and instruction indices are the
//! *only* form of code address the ISA has: branch/jump/call targets, the
//! entry point, the fault handler, `ra` values materialized by calls,
//! function-pointer constants built by
//! [`Asm::li_label`](crate::Asm::li_label), and jump-table words in the
//! data segment named by `Program::code_ptr_words`. [`apply`] performs a batch of
//! [`Patch`]es and relocates all of them in one pass, returning the
//! rewritten program plus a [`PcMap`] describing where everything went.
//!
//! Two relocation rules matter:
//!
//! * **Control transfers land on the inserted prefix.** A transfer to old
//!   pc `i` is redirected to the *first* instruction inserted before `i`
//!   ([`PcMap::target`]), so every path into a patched instruction — fall
//!   through or jump — executes the inserted guard first. This is what
//!   makes a fence in front of a transmitter a sound barrier rather than a
//!   barrier on one incoming edge.
//! * **Instruction identity is tracked separately.** [`PcMap::inst`] gives
//!   the new index of the original instruction itself, so analyses and
//!   differential harnesses can follow a specific source/sink across the
//!   rewrite.
//!
//! Because insertions never break the contiguity of the original
//! instruction sequence (`inst(i) + 1 == target(i + 1)` for every `i`),
//! relocated `ra` values stay consistent: a `call` at its new position
//! writes exactly `target(old_ra)` when the return site's prefix is empty
//! and the prefix start otherwise — either way the value equals what
//! relocating the old `ra` through [`PcMap::target`] yields.
//!
//! Inserted instructions must be position-independent (no
//! branch/jump/call targets, no code-pointer immediates): they are emitted
//! verbatim and never relocated. Every instruction the mitigation passes
//! insert (`fence`, `spec_off`, `spec_on`, ALU ops) satisfies this.

use crate::inst::Inst;
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// One edit: instructions to insert *before* the instruction at `at`, and
/// optionally a replacement for the instruction itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Old instruction index the patch anchors to.
    pub at: usize,
    /// Instructions emitted ahead of (old) `at`; control transfers to `at`
    /// land on the first of them.
    pub insert_before: Vec<Inst>,
    /// Replacement for the instruction at `at` (`None` keeps it).
    pub replace: Option<Inst>,
}

impl Patch {
    /// Insert `insts` before old pc `at`.
    pub fn insert_before(at: usize, insts: Vec<Inst>) -> Patch {
        Patch {
            at,
            insert_before: insts,
            replace: None,
        }
    }

    /// Replace the instruction at old pc `at`.
    pub fn replace(at: usize, inst: Inst) -> Patch {
        Patch {
            at,
            insert_before: Vec::new(),
            replace: Some(inst),
        }
    }
}

/// Errors from [`apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// A patch anchors past the end of the text segment.
    OutOfRange {
        /// The offending anchor.
        at: usize,
        /// Program length.
        len: usize,
    },
    /// Two patches replace the same instruction.
    ConflictingReplace {
        /// The contested pc.
        at: usize,
    },
    /// A control-transfer target or code-pointer immediate points past the
    /// end of the text segment and cannot be relocated.
    DanglingTarget {
        /// Pc of the instruction holding the reference.
        pc: usize,
        /// The unrelocatable target.
        target: usize,
    },
    /// `code_ptr_lis` names a pc that does not hold an `Li`.
    BadProvenance {
        /// The offending provenance entry.
        pc: usize,
    },
    /// `code_ptr_words` names a byte address that is not an 8-byte word
    /// fully contained in one data initializer.
    BadWordProvenance {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::OutOfRange { at, len } => {
                write!(f, "patch at pc {at} out of range (program length {len})")
            }
            RewriteError::ConflictingReplace { at } => {
                write!(f, "conflicting replacements at pc {at}")
            }
            RewriteError::DanglingTarget { pc, target } => {
                write!(
                    f,
                    "instruction at pc {pc} references unmappable target {target}"
                )
            }
            RewriteError::BadProvenance { pc } => {
                write!(
                    f,
                    "code-pointer provenance names non-li instruction at pc {pc}"
                )
            }
            RewriteError::BadWordProvenance { addr } => {
                write!(
                    f,
                    "code-pointer word provenance names address {addr:#x} outside the data segment"
                )
            }
        }
    }
}

impl Error for RewriteError {}

/// Relocation map from old instruction indices to new ones. See the
/// [module documentation](self) for the `target`/`inst` distinction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcMap {
    /// `prefix_start[i]`: new index of the first instruction inserted
    /// before old `i` (== `inst_pos[i]` when nothing was inserted). Has
    /// `old_len + 1` entries; the last maps the one-past-end index.
    prefix_start: Vec<usize>,
    /// `inst_pos[i]`: new index of original instruction `i`. Also
    /// `old_len + 1` entries.
    inst_pos: Vec<usize>,
}

impl PcMap {
    /// The identity map over a program of `len` instructions.
    pub fn identity(len: usize) -> PcMap {
        let ids: Vec<usize> = (0..=len).collect();
        PcMap {
            prefix_start: ids.clone(),
            inst_pos: ids,
        }
    }

    /// Number of instructions in the old program.
    pub fn old_len(&self) -> usize {
        self.inst_pos.len() - 1
    }

    /// Number of instructions in the new program.
    pub fn new_len(&self) -> usize {
        *self.inst_pos.last().expect("non-empty by construction")
    }

    /// Where control transfers to old pc `old` now land (prefix start).
    /// `old == old_len` (one-past-end, e.g. a return address past the last
    /// instruction) maps to `new_len`.
    pub fn target(&self, old: usize) -> usize {
        self.prefix_start[old]
    }

    /// New index of the original instruction at old pc `old`.
    pub fn inst(&self, old: usize) -> usize {
        self.inst_pos[old]
    }

    /// `true` if the map moved nothing.
    pub fn is_identity(&self) -> bool {
        self.prefix_start.iter().enumerate().all(|(i, &v)| i == v)
            && self.inst_pos.iter().enumerate().all(|(i, &v)| i == v)
    }

    /// Compose with a `later` rewrite of this map's output program:
    /// the result maps old pcs of `self` to new pcs of `later`.
    pub fn compose(&self, later: &PcMap) -> PcMap {
        PcMap {
            prefix_start: self
                .prefix_start
                .iter()
                .map(|&mid| later.target(mid))
                .collect(),
            inst_pos: self.inst_pos.iter().map(|&mid| later.inst(mid)).collect(),
        }
    }
}

/// Apply `patches` to `p`, relocating every code reference. Patches may
/// share an anchor pc: their `insert_before` sequences concatenate in
/// slice order (at most one may carry a replacement).
///
/// # Errors
///
/// See [`RewriteError`]. On error the program is unchanged (nothing is
/// returned).
pub fn apply(p: &Program, patches: &[Patch]) -> Result<(Program, PcMap), RewriteError> {
    let len = p.insts.len();
    let mut inserts: Vec<Vec<Inst>> = vec![Vec::new(); len];
    let mut replaces: Vec<Option<Inst>> = vec![None; len];
    for patch in patches {
        if patch.at >= len {
            return Err(RewriteError::OutOfRange { at: patch.at, len });
        }
        inserts[patch.at].extend_from_slice(&patch.insert_before);
        if let Some(r) = patch.replace {
            if replaces[patch.at].is_some() {
                return Err(RewriteError::ConflictingReplace { at: patch.at });
            }
            replaces[patch.at] = Some(r);
        }
    }

    // Lay out the new text segment and record both mappings.
    let mut insts =
        Vec::with_capacity(len + patches.iter().map(|p| p.insert_before.len()).sum::<usize>());
    let mut prefix_start = Vec::with_capacity(len + 1);
    let mut inst_pos = Vec::with_capacity(len + 1);
    for pc in 0..len {
        prefix_start.push(insts.len());
        insts.extend_from_slice(&inserts[pc]);
        inst_pos.push(insts.len());
        insts.push(replaces[pc].unwrap_or(p.insts[pc]));
    }
    prefix_start.push(insts.len());
    inst_pos.push(insts.len());
    let map = PcMap {
        prefix_start,
        inst_pos,
    };

    // Relocate control transfers. Only original (possibly replaced)
    // instructions are remapped; inserted instructions are emitted
    // verbatim (they must be position-independent).
    let remap = |pc: usize, t: usize| -> Result<usize, RewriteError> {
        if t > len {
            return Err(RewriteError::DanglingTarget { pc, target: t });
        }
        Ok(map.target(t))
    };
    for old_pc in 0..len {
        let slot = map.inst(old_pc);
        match &mut insts[slot] {
            Inst::Branch { target, .. } | Inst::Jmp { target } | Inst::Call { target } => {
                *target = remap(old_pc, *target)?;
            }
            _ => {}
        }
    }

    // Relocate materialized code pointers (their immediates are old
    // instruction indices) and move the provenance entries themselves.
    let mut code_ptr_lis = Vec::with_capacity(p.code_ptr_lis.len());
    for &li_pc in &p.code_ptr_lis {
        if li_pc >= len {
            return Err(RewriteError::BadProvenance { pc: li_pc });
        }
        let slot = map.inst(li_pc);
        match &mut insts[slot] {
            Inst::Li { imm, .. } => {
                let t = *imm as usize;
                *imm = remap(li_pc, t)? as u64;
            }
            _ => return Err(RewriteError::BadProvenance { pc: li_pc }),
        }
        code_ptr_lis.push(slot);
    }

    // Relocate code pointers stored in the data segment (jump-table
    // slots named by `code_ptr_words`): each is an 8-byte little-endian
    // instruction index rewritten through the same target mapping as
    // every other control transfer.
    let mut data = p.data.clone();
    for &addr in &p.code_ptr_words {
        let mut found = false;
        for init in &mut data {
            let Some(off) = addr.checked_sub(init.addr) else {
                continue;
            };
            let off = off as usize;
            if off + 8 > init.bytes.len() {
                continue;
            }
            let word = &mut init.bytes[off..off + 8];
            let t = u64::from_le_bytes(word.try_into().expect("8-byte slice")) as usize;
            if t > len {
                return Err(RewriteError::DanglingTarget { pc: 0, target: t });
            }
            word.copy_from_slice(&(map.target(t) as u64).to_le_bytes());
            found = true;
            break;
        }
        if !found {
            return Err(RewriteError::BadWordProvenance { addr });
        }
    }

    let entry = map.target(p.entry.min(len));
    let fault_handler = match p.fault_handler {
        Some(h) => Some(remap(h.min(len), h.min(len))?),
        None => None,
    };
    Ok((
        Program {
            insts,
            entry,
            data,
            fault_handler,
            msr_values: p.msr_values.clone(),
            msr_user_ok: p.msr_user_ok.clone(),
            text_base: p.text_base,
            code_ptr_lis,
            code_ptr_words: p.code_ptr_words.clone(),
        },
        map,
    ))
}

/// Replace every `rdcycle rd` with `li rd, 0`.
///
/// The reference interpreter returns the retired-instruction count for
/// `rdcycle`, so inserting *any* instruction perturbs every later timing
/// read — architecturally equivalent programs would diverge in
/// timing-derived state. Differential equivalence checks therefore compare
/// programs with the clock virtualized away: apply this to *both* sides
/// and any remaining divergence is a genuine semantic change. The
/// replacement is positionally 1:1 (no pc shifts).
pub fn neutralize_rdcycle(p: &Program) -> Program {
    let mut out = p.clone();
    for inst in &mut out.insts {
        if let Inst::RdCycle { rd } = *inst {
            *inst = Inst::Li { rd, imm: 0 };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::interp::Interp;
    use crate::reg::Reg;

    /// li x2,len; loop: branch/call layout exercising every reference kind.
    fn program_with_all_reference_kinds() -> Program {
        let mut a = Asm::new();
        let f = a.new_label();
        let h = a.new_label();
        a.fault_handler(h);
        a.li_label(Reg::X2, f); // 0: code pointer
        a.call(f); // 1
        a.call_ind(Reg::X2); // 2
        a.halt(); // 3
        a.bind(f);
        a.li(Reg::X5, 7); // 4
        a.ret(); // 5
        a.bind(h);
        a.halt(); // 6
        a.assemble().unwrap()
    }

    #[test]
    fn empty_patch_list_is_identity() {
        let p = program_with_all_reference_kinds();
        let (q, map) = apply(&p, &[]).unwrap();
        assert_eq!(p, q);
        assert!(map.is_identity());
        assert_eq!(map.old_len(), p.insts.len());
        assert_eq!(map.new_len(), p.insts.len());
    }

    #[test]
    fn insertion_redirects_transfers_to_prefix() {
        let p = program_with_all_reference_kinds();
        // Two fences before the function body at old pc 4.
        let (q, map) = apply(
            &p,
            &[Patch::insert_before(4, vec![Inst::Fence, Inst::Fence])],
        )
        .unwrap();
        assert_eq!(q.insts.len(), p.insts.len() + 2);
        assert_eq!(map.target(4), 4, "transfers land on the first fence");
        assert_eq!(map.inst(4), 6, "the original li moved past the prefix");
        // call f now targets the prefix start.
        assert_eq!(q.insts[map.inst(1)], Inst::Call { target: 4 });
        // The code-pointer li was rewritten to the prefix start too.
        assert_eq!(
            q.insts[map.inst(0)],
            Inst::Li {
                rd: Reg::X2,
                imm: 4
            }
        );
        assert_eq!(q.code_ptr_lis, vec![map.inst(0)]);
        // Fault handler past the insertion shifted with it.
        assert_eq!(q.fault_handler, Some(8));
        // Contiguity invariant: inst(i) + 1 == target(i + 1).
        for i in 0..map.old_len() {
            assert_eq!(map.inst(i) + 1, map.target(i + 1));
        }
    }

    #[test]
    fn rewritten_program_still_runs_through_both_call_paths() {
        let p = program_with_all_reference_kinds();
        let (q, _) = apply(
            &p,
            &[
                Patch::insert_before(1, vec![Inst::Nop]),
                Patch::insert_before(4, vec![Inst::Fence]),
                Patch::insert_before(5, vec![Inst::Nop, Inst::Nop]),
            ],
        )
        .unwrap();
        let mut a = Interp::new(&p);
        let mut b = Interp::new(&q);
        a.run(1000).unwrap();
        b.run(1000).unwrap();
        assert!(a.halted() && b.halted());
        assert_eq!(a.reg(Reg::X5), 7);
        assert_eq!(b.reg(Reg::X5), 7, "direct and indirect calls both reach f");
    }

    #[test]
    fn replace_swaps_the_anchored_instruction() {
        let p = program_with_all_reference_kinds();
        let (q, map) = apply(
            &p,
            &[Patch::replace(
                4,
                Inst::Li {
                    rd: Reg::X5,
                    imm: 9,
                },
            )],
        )
        .unwrap();
        assert_eq!(
            q.insts[map.inst(4)],
            Inst::Li {
                rd: Reg::X5,
                imm: 9
            }
        );
        let mut i = Interp::new(&q);
        i.run(1000).unwrap();
        assert_eq!(i.reg(Reg::X5), 9);
    }

    #[test]
    fn conflicting_replacements_rejected() {
        let p = program_with_all_reference_kinds();
        let err = apply(
            &p,
            &[Patch::replace(4, Inst::Nop), Patch::replace(4, Inst::Halt)],
        )
        .unwrap_err();
        assert_eq!(err, RewriteError::ConflictingReplace { at: 4 });
    }

    #[test]
    fn out_of_range_patch_rejected() {
        let p = program_with_all_reference_kinds();
        let err = apply(&p, &[Patch::insert_before(99, vec![Inst::Nop])]).unwrap_err();
        assert!(matches!(err, RewriteError::OutOfRange { at: 99, .. }));
    }

    #[test]
    fn shared_anchor_concatenates_in_patch_order() {
        let p = program_with_all_reference_kinds();
        let (q, map) = apply(
            &p,
            &[
                Patch::insert_before(3, vec![Inst::Fence]),
                Patch::insert_before(3, vec![Inst::Nop]),
            ],
        )
        .unwrap();
        assert_eq!(q.insts[map.target(3)], Inst::Fence);
        assert_eq!(q.insts[map.target(3) + 1], Inst::Nop);
        assert_eq!(q.insts[map.inst(3)], Inst::Halt);
    }

    #[test]
    fn data_segment_jump_table_words_are_relocated() {
        // x2 = load table[0]; jmp_ind x2; target: li x5,7; halt.
        let mut a = Asm::new();
        let t = a.new_label();
        a.li(Reg::X2, 0x2000);
        a.ld8(Reg::X2, Reg::X2, 0); // 1: x2 = mem[0x2000] (a code pointer)
        a.jmp_ind(Reg::X2); // 2
        a.halt(); // 3 (skipped)
        a.bind(t);
        a.li(Reg::X5, 7); // 4
        a.halt(); // 5
        let mut p = a.assemble().unwrap();
        p.data.push(crate::program::DataInit {
            addr: 0x2000,
            bytes: 4u64.to_le_bytes().to_vec(),
        });
        p.code_ptr_words.push(0x2000);

        let (q, map) = apply(&p, &[Patch::insert_before(4, vec![Inst::Fence])]).unwrap();
        let slot = q.data.iter().find(|d| d.addr == 0x2000).unwrap();
        assert_eq!(
            u64::from_le_bytes(slot.bytes[..8].try_into().unwrap()),
            map.target(4) as u64,
            "table word must follow the jump target through the rewrite"
        );
        let mut i = Interp::new(&q);
        i.run(1000).unwrap();
        assert_eq!(
            i.reg(Reg::X5),
            7,
            "indirect jump through the table still lands"
        );

        // A provenance address outside any data region is rejected.
        let mut bad = p.clone();
        bad.code_ptr_words.push(0x9999);
        let err = apply(&bad, &[Patch::insert_before(4, vec![Inst::Fence])]).unwrap_err();
        assert_eq!(err, RewriteError::BadWordProvenance { addr: 0x9999 });
    }

    #[test]
    fn compose_chains_two_rewrites() {
        let p = program_with_all_reference_kinds();
        let (q, m1) = apply(&p, &[Patch::insert_before(4, vec![Inst::Fence])]).unwrap();
        let (r, m2) = apply(&q, &[Patch::insert_before(0, vec![Inst::Nop])]).unwrap();
        let m = m1.compose(&m2);
        assert_eq!(m.old_len(), p.insts.len());
        assert_eq!(m.new_len(), r.insts.len());
        // Old pc 4: fence prefix from round 1, shifted by round 2's nop.
        assert_eq!(m.target(4), m2.target(m1.target(4)));
        assert_eq!(m.inst(4), m2.inst(m1.inst(4)));
        assert_eq!(
            r.insts[m.inst(4)],
            Inst::Li {
                rd: Reg::X5,
                imm: 7
            }
        );
    }

    #[test]
    fn neutralize_rdcycle_is_positionally_stable() {
        let mut a = Asm::new();
        a.rdcycle(Reg::X9);
        a.li(Reg::X2, 1);
        a.rdcycle(Reg::X10);
        a.halt();
        let p = a.assemble().unwrap();
        let q = neutralize_rdcycle(&p);
        assert_eq!(q.insts.len(), p.insts.len());
        assert_eq!(
            q.insts[0],
            Inst::Li {
                rd: Reg::X9,
                imm: 0
            }
        );
        assert_eq!(
            q.insts[2],
            Inst::Li {
                rd: Reg::X10,
                imm: 0
            }
        );
        assert_eq!(q.insts[1], p.insts[1]);
    }
}
