//! # SpecRISC — the micro-op ISA of the NDA reproduction
//!
//! NDA ("Non-speculative Data Access", MICRO-52 2019) operates at the
//! micro-op level of an out-of-order core: it classifies micro-ops into
//! loads / load-like special-register reads, stores, branches and plain
//! arithmetic, and restricts when each may *broadcast* its result to
//! dependents. This crate defines a small load/store ISA with exactly those
//! classes, plus everything required to write the paper's attack listings
//! (1–3) and the SPEC-like workloads:
//!
//! * [`Inst`] — the instruction set (one instruction == one micro-op),
//! * [`Asm`] — a label-based assembler/builder producing [`Program`]s,
//! * [`SparseMem`] — the 64-bit architectural memory (page-sparse),
//! * [`Interp`] — an architectural reference interpreter used as the
//!   differential-correctness oracle for every timing model,
//! * [`genprog`] — a deterministic structured random-program generator used
//!   by the property-based test suites.
//!
//! ```
//! use nda_isa::{Asm, Reg, Interp};
//!
//! let mut asm = Asm::new();
//! asm.li(Reg::X2, 20);
//! asm.li(Reg::X3, 22);
//! asm.add(Reg::X4, Reg::X2, Reg::X3);
//! asm.halt();
//! let prog = asm.assemble().expect("assembles");
//! let mut interp = Interp::new(&prog);
//! let exit = interp.run(1_000).expect("runs");
//! assert!(exit.halted);
//! assert_eq!(interp.reg(Reg::X4), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cfg;
pub mod encode;
pub mod genprog;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod program;
pub mod reg;
pub mod rewrite;
pub mod secret;
pub mod translate;

pub use asm::{Asm, AsmError, Label};
pub use cfg::{indirect_target_candidates, inst_successors, return_sites, BasicBlock, Cfg};
pub use encode::{decode_program, encode_program, DecodeError};
pub use inst::{AluOp, BranchCond, Inst, MemSize};
pub use interp::{ExitInfo, Fault, Interp, InterpError, InterpState, StepInfo};
pub use mem::{MsrFile, PrivilegeMap, SparseMem, KERNEL_BASE, PAGE_SHIFT, PAGE_SIZE};
pub use program::{DataInit, Program};
pub use reg::Reg;
pub use rewrite::{apply as apply_patches, neutralize_rdcycle, Patch, PcMap, RewriteError};
pub use secret::{SecretRange, SecretSpec};
pub use translate::{ExecHooks, NoHooks, TranslatedProgram};

/// Byte size of one encoded instruction; instruction index `i` lives at
/// i-cache address `text_base + 4 * i`.
pub const INST_BYTES: u64 = 4;

/// Default base address of the text segment in the simulated address space.
pub const TEXT_BASE: u64 = 0x0040_0000;
