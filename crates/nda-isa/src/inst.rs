//! The SpecRISC instruction set.
//!
//! Each instruction corresponds to exactly one micro-op of the simulated
//! out-of-order core, so NDA's per-micro-op safety classification (paper §5)
//! maps 1:1 onto [`Inst`] variants via [`Inst::class`].

use crate::reg::Reg;
use std::fmt;

/// Arithmetic/logic operations for [`Inst::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    Mul,
    /// Unsigned division; division by zero yields `u64::MAX` (RISC-V style).
    Div,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Rem,
    /// Set-if-less-than, signed: `rd = (rs1 as i64) < (src2 as i64)`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Execution latency in cycles on the out-of-order core's FUs
    /// (64-bit integer division on Haswell-class parts takes tens of
    /// cycles and is not pipelined).
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 24,
            _ => 1,
        }
    }

    /// Apply the operation architecturally.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }
}

/// Comparison condition for [`Inst::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluate the condition architecturally.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Access width of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MemSize {
    B1,
    B2,
    B4,
    B8,
}

impl MemSize {
    /// Width in bytes (1, 2, 4 or 8).
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

/// The second operand of an ALU instruction: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src2 {
    /// Read the value of a register.
    Reg(Reg),
    /// Use a 64-bit immediate.
    Imm(u64),
}

/// NDA's micro-op classification (paper §5, Table 2).
///
/// `LoadLike` covers special-register reads (`RdMsr`) which the paper treats
/// "like loads" for both permissive propagation and load restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UopClass {
    Arith,
    Load,
    LoadLike,
    Store,
    Branch,
    /// Fully serializing (`RdCycle`, `Fence`, `Halt`): never executes
    /// speculatively.
    Serializing,
}

/// One SpecRISC instruction (== one micro-op).
///
/// Branch/jump targets are *instruction indices* into the program text, not
/// byte addresses; the i-cache address of index `i` is
/// `text_base + 4 * i` (see [`crate::INST_BYTES`]). Indirect targets
/// ([`Inst::JmpInd`], [`Inst::CallInd`], [`Inst::Ret`]) read an instruction
/// index from a register, which is what lets the paper's Listing-3 BTB
/// covert channel store "function pointers" in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // fields are spelled out in each variant's doc line
pub enum Inst {
    /// `rd = imm`.
    Li { rd: Reg, imm: u64 },
    /// `rd = op(rs1, src2)`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        src2: Src2,
    },
    /// `rd = zero_extend(mem[rs_base + off])`.
    Load {
        rd: Reg,
        base: Reg,
        off: i64,
        size: MemSize,
    },
    /// `mem[rs_base + off] = truncate(rs_src)`.
    Store {
        src: Reg,
        base: Reg,
        off: i64,
        size: MemSize,
    },
    /// Conditional direct branch to instruction index `target`.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: usize,
    },
    /// Unconditional direct jump.
    Jmp { target: usize },
    /// Indirect jump to the instruction index in `base`.
    JmpInd { base: Reg },
    /// Direct call: `ra = pc + 1`, jump to `target`.
    Call { target: usize },
    /// Indirect call through `base`: `ra = pc + 1`, jump to `regs[base]`.
    CallInd { base: Reg },
    /// Return: jump to `regs[ra]`, predicted via the RAS.
    Ret,
    /// `rd = current cycle`. Serializing, modelling `rdtscp`.
    RdCycle { rd: Reg },
    /// `rd = msr[idx]`: special-register read, treated like a load by NDA
    /// (models the AVX/MSR secrets of LazyFP and Meltdown v3a). Faults if
    /// `idx` is not in the program's permitted-MSR set.
    RdMsr { rd: Reg, idx: u16 },
    /// Evict the line containing `regs[base] + off` from every cache level.
    ClFlush { base: Reg, off: i64 },
    /// Full speculation barrier (the `lfence` contrast of paper §3.2).
    Fence,
    /// Enter the no-speculation window of the paper's §8 / Listing 4
    /// (`stop_speculative_exec()`): until [`Inst::SpecOn`] commits, the
    /// out-of-order core executes one instruction at a time with no
    /// wrong-path dispatch. Takes effect at commit, so a wrong-path
    /// `SpecOff` does nothing — the paper notes this defense is only
    /// sound *in addition to* NDA.
    SpecOff,
    /// Leave the no-speculation window (`resume_speculative_exec()`).
    SpecOn,
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

impl Inst {
    /// NDA's classification of this micro-op.
    pub fn class(self) -> UopClass {
        match self {
            Inst::Li { .. } | Inst::Alu { .. } | Inst::Nop | Inst::ClFlush { .. } => {
                UopClass::Arith
            }
            Inst::Load { .. } => UopClass::Load,
            Inst::RdMsr { .. } => UopClass::LoadLike,
            Inst::Store { .. } => UopClass::Store,
            Inst::Branch { .. }
            | Inst::Jmp { .. }
            | Inst::JmpInd { .. }
            | Inst::Call { .. }
            | Inst::CallInd { .. }
            | Inst::Ret => UopClass::Branch,
            Inst::RdCycle { .. } | Inst::Fence | Inst::SpecOff | Inst::SpecOn | Inst::Halt => {
                UopClass::Serializing
            }
        }
    }

    /// `true` for loads *and* load-like special-register reads — the set the
    /// paper's permissive propagation and load restriction act on.
    pub fn is_load_like(self) -> bool {
        matches!(self.class(), UopClass::Load | UopClass::LoadLike)
    }

    /// `true` for any control-flow micro-op (all `jmp`/`call`/`ret`
    /// variants), the steering points of paper §4.1.
    pub fn is_branch(self) -> bool {
        self.class() == UopClass::Branch
    }

    /// `true` for stores (whose unresolved addresses gate Bypass
    /// Restriction, paper §5.2).
    pub fn is_store(self) -> bool {
        self.class() == UopClass::Store
    }

    /// `true` if control flow after this instruction is *not* simply
    /// `pc + 1` (taken branches resolve dynamically).
    pub fn is_control(self) -> bool {
        self.is_branch() || matches!(self, Inst::Halt)
    }

    /// Destination architectural register, if any. `Call`/`CallInd` write
    /// the link register.
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Inst::Li { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::RdCycle { rd }
            | Inst::RdMsr { rd, .. } => rd,
            Inst::Call { .. } | Inst::CallInd { .. } => crate::reg::RA,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// Positional source operands for rename/execute: slot 0 is the first
    /// register operand (base/rs1), slot 1 the second (data/rs2). `x0` maps
    /// to `None` (it reads as the constant zero and needs no rename).
    pub fn operands(self) -> [Option<Reg>; 2] {
        let f = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self {
            Inst::Alu { rs1, src2, .. } => {
                let second = match src2 {
                    Src2::Reg(r) => f(r),
                    Src2::Imm(_) => None,
                };
                [f(rs1), second]
            }
            Inst::Load { base, .. } => [f(base), None],
            Inst::Store { src, base, .. } => [f(base), f(src)],
            Inst::Branch { rs1, rs2, .. } => [f(rs1), f(rs2)],
            Inst::JmpInd { base } | Inst::CallInd { base } => [f(base), None],
            Inst::Ret => [f(crate::reg::RA), None],
            Inst::ClFlush { base, .. } => [f(base), None],
            _ => [None, None],
        }
    }

    /// Source architectural registers (at most three), excluding `x0`.
    pub fn srcs(self) -> SrcIter {
        let mut out = [None; 3];
        let mut n = 0;
        let mut push = |r: Reg| {
            if !r.is_zero() {
                out[n] = Some(r);
                n += 1;
            }
        };
        match self {
            Inst::Alu { rs1, src2, .. } => {
                push(rs1);
                if let Src2::Reg(r) = src2 {
                    push(r);
                }
            }
            Inst::Load { base, .. } => push(base),
            Inst::Store { src, base, .. } => {
                push(base);
                push(src);
            }
            Inst::Branch { rs1, rs2, .. } => {
                push(rs1);
                push(rs2);
            }
            Inst::JmpInd { base } | Inst::CallInd { base } => push(base),
            Inst::Ret => push(crate::reg::RA),
            Inst::ClFlush { base, .. } => push(base),
            _ => {}
        }
        SrcIter { regs: out, pos: 0 }
    }

    /// Execution latency on a functional unit, excluding any memory time.
    pub fn exec_latency(self) -> u64 {
        match self {
            Inst::Alu { op, .. } => op.latency(),
            // Address generation for memory ops; cache time is added by the
            // memory system.
            _ => 1,
        }
    }

    /// Statically-known control-flow target (instruction index), if any:
    /// the `target` of a direct branch, jump or call.
    pub fn direct_target(self) -> Option<usize> {
        match self {
            Inst::Branch { target, .. } | Inst::Jmp { target } | Inst::Call { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// `true` if execution can continue at `pc + 1` after this instruction:
    /// everything except unconditional transfers (`Jmp`, `JmpInd`, `Call`,
    /// `CallInd`, `Ret`) and `Halt`. A conditional branch falls through on
    /// its not-taken arm.
    pub fn falls_through(self) -> bool {
        !matches!(
            self,
            Inst::Jmp { .. }
                | Inst::JmpInd { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret
                | Inst::Halt
        )
    }

    /// `true` if this instruction can raise an architectural fault
    /// (privileged memory access or non-permitted MSR read) and so has an
    /// implicit edge to the program's fault handler.
    pub fn may_fault(self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::RdMsr { .. }
        )
    }
}

/// Iterator over an instruction's source registers.
///
/// Produced by [`Inst::srcs`].
#[derive(Debug, Clone)]
pub struct SrcIter {
    regs: [Option<Reg>; 3],
    pos: usize,
}

impl Iterator for SrcIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.pos < 3 {
            let r = self.regs[self.pos];
            self.pos += 1;
            if r.is_some() {
                return r;
            }
        }
        None
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Inst::Alu { op, rd, rs1, src2 } => match src2 {
                Src2::Reg(r) => write!(f, "{op:?} {rd}, {rs1}, {r}").map(|_| ()),
                Src2::Imm(i) => write!(f, "{op:?} {rd}, {rs1}, {i:#x}"),
            },
            Inst::Load {
                rd,
                base,
                off,
                size,
            } => {
                write!(f, "ld{} {rd}, {off}({base})", size.bytes())
            }
            Inst::Store {
                src,
                base,
                off,
                size,
            } => {
                write!(f, "st{} {src}, {off}({base})", size.bytes())
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{:?} {rs1}, {rs2}, @{target}", cond)
            }
            Inst::Jmp { target } => write!(f, "jmp @{target}"),
            Inst::JmpInd { base } => write!(f, "jmpind {base}"),
            Inst::Call { target } => write!(f, "call @{target}"),
            Inst::CallInd { base } => write!(f, "callind {base}"),
            Inst::Ret => write!(f, "ret"),
            Inst::RdCycle { rd } => write!(f, "rdcycle {rd}"),
            Inst::RdMsr { rd, idx } => write!(f, "rdmsr {rd}, {idx}"),
            Inst::ClFlush { base, off } => write!(f, "clflush {off}({base})"),
            Inst::Fence => write!(f, "fence"),
            Inst::SpecOff => write!(f, "specoff"),
            Inst::SpecOn => write!(f, "specon"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RA;

    #[test]
    fn classification_matches_paper_table() {
        assert_eq!(
            Inst::Load {
                rd: Reg::X2,
                base: Reg::X3,
                off: 0,
                size: MemSize::B8
            }
            .class(),
            UopClass::Load
        );
        assert_eq!(
            Inst::RdMsr {
                rd: Reg::X2,
                idx: 0
            }
            .class(),
            UopClass::LoadLike
        );
        assert!(Inst::RdMsr {
            rd: Reg::X2,
            idx: 0
        }
        .is_load_like());
        assert_eq!(
            Inst::Store {
                src: Reg::X2,
                base: Reg::X3,
                off: 0,
                size: MemSize::B8
            }
            .class(),
            UopClass::Store
        );
        assert_eq!(Inst::Ret.class(), UopClass::Branch);
        assert_eq!(Inst::Fence.class(), UopClass::Serializing);
        assert_eq!(
            Inst::ClFlush {
                base: Reg::X2,
                off: 0
            }
            .class(),
            UopClass::Arith
        );
    }

    #[test]
    fn dest_of_call_is_link_register() {
        assert_eq!(Inst::Call { target: 0 }.dest(), Some(RA));
        assert_eq!(Inst::CallInd { base: Reg::X5 }.dest(), Some(RA));
        assert_eq!(Inst::Ret.dest(), None);
    }

    #[test]
    fn dest_to_x0_is_discarded() {
        assert_eq!(
            Inst::Li {
                rd: Reg::X0,
                imm: 7
            }
            .dest(),
            None
        );
    }

    #[test]
    fn srcs_skip_x0() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::X2,
            rs1: Reg::X0,
            src2: Src2::Reg(Reg::X3),
        };
        let s: Vec<Reg> = i.srcs().collect();
        assert_eq!(s, vec![Reg::X3]);
    }

    #[test]
    fn store_reads_base_and_data() {
        let i = Inst::Store {
            src: Reg::X4,
            base: Reg::X5,
            off: 8,
            size: MemSize::B4,
        };
        let s: Vec<Reg> = i.srcs().collect();
        assert_eq!(s, vec![Reg::X5, Reg::X4]);
    }

    #[test]
    fn ret_reads_link_register() {
        let s: Vec<Reg> = Inst::Ret.srcs().collect();
        assert_eq!(s, vec![RA]);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(1, 2), u64::MAX);
        assert_eq!(AluOp::Shl.apply(1, 9), 512);
        assert_eq!(AluOp::Shl.apply(1, 64), 1, "shift amount is masked");
        assert_eq!(AluOp::Sar.apply(u64::MAX, 5), u64::MAX);
        assert_eq!(AluOp::Div.apply(7, 0), u64::MAX);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Lt.eval(u64::MAX, 0));
        assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
        assert!(BranchCond::Geu.eval(5, 5));
        assert!(BranchCond::Ne.eval(1, 2));
    }

    #[test]
    fn latencies() {
        assert_eq!(AluOp::Add.latency(), 1);
        assert_eq!(AluOp::Mul.latency(), 3);
        assert_eq!(AluOp::Div.latency(), 24);
    }

    #[test]
    fn display_is_nonempty_for_all() {
        let insts = [
            Inst::Nop,
            Inst::Halt,
            Inst::Fence,
            Inst::Ret,
            Inst::Li {
                rd: Reg::X2,
                imm: 1,
            },
            Inst::Jmp { target: 3 },
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
