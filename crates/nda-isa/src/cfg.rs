//! Control-flow graph over assembled [`Program`]s.
//!
//! Basic blocks, branch/jump/call/return edges and entry reachability —
//! the substrate the `nda-analyze` crate runs its taint fixpoint and
//! speculation-window search on, exported here so any tool working on
//! SpecRISC programs can reuse it.
//!
//! Two kinds of edges need static approximation:
//!
//! * **Indirect jumps/calls** (`JmpInd`, `CallInd`) read an instruction
//!   index from a register. [`indirect_target_candidates`] recovers the
//!   function-pointer constants a program stores into memory (the
//!   `li_label` + `st8` idiom of the attack suite's target tables); an
//!   indirect transfer is given an edge to every candidate. Pointers that
//!   only ever enter memory through the data segment are *not* recovered —
//!   a documented under-approximation (see DESIGN.md §11).
//! * **Returns** (`Ret`) jump wherever the link register points, and — on
//!   the speculative side — wherever the return-address stack predicts.
//!   A `Ret` is given an edge to every [`return_sites`] entry (each
//!   `call`/`call_ind` site plus one) and to every indirect candidate
//!   (covering return addresses smashed through memory, the `ret2spec`
//!   idiom).
//!
//! Both approximations are *supersets* of the architectural successors on
//! the programs this repo analyzes, which is the safe direction for taint
//! reachability.

use crate::inst::Inst;
use crate::program::Program;

/// A maximal straight-line run of instructions `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor *block* ids (deduplicated, sorted).
    pub succs: Vec<usize>,
    /// `true` if the block is reachable from the program entry (including
    /// through indirect/return/fault edges).
    pub reachable: bool,
}

/// The control-flow graph of one [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    block_of: Vec<usize>,
    indirect_targets: Vec<usize>,
    return_sites: Vec<usize>,
}

/// Constant instruction indices the program stores to memory — the static
/// candidates for indirect jump/call targets.
///
/// Recovers the `li rX, <index>` … `st8 rX, …` idiom (including
/// [`crate::Asm::li_label`]) with a linear scan: a `Li` whose immediate is
/// a valid instruction index marks its register as holding a potential
/// code pointer until the register is redefined; an 8-byte store of such
/// a register yields a candidate.
pub fn indirect_target_candidates(p: &Program) -> Vec<usize> {
    let mut last_li: [Option<u64>; crate::reg::NUM_REGS] = [None; crate::reg::NUM_REGS];
    let mut out = Vec::new();
    for inst in &p.insts {
        match *inst {
            Inst::Li { rd, imm } => last_li[rd.index()] = Some(imm),
            Inst::Store {
                src,
                size: crate::inst::MemSize::B8,
                ..
            } => {
                if let Some(v) = last_li[src.index()] {
                    if (v as usize) < p.insts.len() {
                        out.push(v as usize);
                    }
                }
            }
            _ => {
                if let Some(rd) = inst.dest() {
                    last_li[rd.index()] = None;
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Every `call`/`call_ind` continuation (`site + 1`) — the set of
/// addresses a return-address-stack prediction can resume at.
pub fn return_sites(p: &Program) -> Vec<usize> {
    let mut out = Vec::new();
    for (pc, inst) in p.insts.iter().enumerate() {
        if matches!(inst, Inst::Call { .. } | Inst::CallInd { .. }) && pc + 1 < p.insts.len() {
            out.push(pc + 1);
        }
    }
    out
}

/// Static successors of the instruction at `pc`, using the given indirect
/// and return approximations. Out-of-range targets (e.g. a branch to the
/// end of the program, which halts) are dropped. The implicit
/// fault-handler edge of faulting instructions is *not* included here —
/// [`Cfg::build`] adds it at block level.
pub fn inst_successors(
    p: &Program,
    pc: usize,
    indirect_targets: &[usize],
    return_sites: &[usize],
) -> Vec<usize> {
    let Some(inst) = p.fetch(pc) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let Some(t) = inst.direct_target() {
        out.push(t);
    }
    match inst {
        Inst::JmpInd { .. } | Inst::CallInd { .. } => out.extend_from_slice(indirect_targets),
        Inst::Ret => {
            out.extend_from_slice(return_sites);
            out.extend_from_slice(indirect_targets);
        }
        _ => {}
    }
    if inst.falls_through() {
        out.push(pc + 1);
    }
    out.retain(|&t| t < p.insts.len());
    out.sort_unstable();
    out.dedup();
    out
}

impl Cfg {
    /// Build the CFG of `p`, computing indirect-target candidates and
    /// return sites from the program itself.
    pub fn build(p: &Program) -> Cfg {
        let indirect_targets = indirect_target_candidates(p);
        let rets = return_sites(p);
        let n = p.insts.len();

        // Leaders: entry, every successor of a control transfer, the
        // instruction after any non-fall-through point, and the fault
        // handler.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[p.entry.min(n - 1)] = true;
        }
        if let Some(h) = p.fault_handler {
            if h < n {
                leader[h] = true;
            }
        }
        for pc in 0..n {
            let inst = p.insts[pc];
            if inst.is_control() || !inst.falls_through() {
                for t in inst_successors(p, pc, &indirect_targets, &rets) {
                    leader[t] = true;
                }
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for (pc, &is_leader) in leader.iter().enumerate() {
            if pc > start && is_leader {
                blocks.push(BasicBlock {
                    start,
                    end: pc,
                    succs: Vec::new(),
                    reachable: false,
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock {
                start,
                end: n,
                succs: Vec::new(),
                reachable: false,
            });
        }
        for (id, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(id);
        }

        // Block-level edges: the terminator's successors, plus a
        // fault-handler edge if any instruction in the block may fault.
        for b in blocks.iter_mut() {
            let mut succs: Vec<usize> = inst_successors(p, b.end - 1, &indirect_targets, &rets)
                .into_iter()
                .map(|t| block_of[t])
                .collect();
            if let Some(h) = p.fault_handler {
                if h < n && (b.start..b.end).any(|pc| p.insts[pc].may_fault()) {
                    succs.push(block_of[h]);
                }
            }
            succs.sort_unstable();
            succs.dedup();
            b.succs = succs;
        }

        // Entry reachability.
        if n > 0 {
            let mut work = vec![block_of[p.entry.min(n - 1)]];
            while let Some(id) = work.pop() {
                if blocks[id].reachable {
                    continue;
                }
                blocks[id].reachable = true;
                work.extend(blocks[id].succs.iter().copied());
            }
        }

        Cfg {
            blocks,
            block_of,
            indirect_targets,
            return_sites: rets,
        }
    }

    /// The basic blocks, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Id of the block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// The indirect-target candidates used for `JmpInd`/`CallInd`/`Ret`
    /// edges.
    pub fn indirect_targets(&self) -> &[usize] {
        &self.indirect_targets
    }

    /// The `call`-site continuations used for `Ret` edges.
    pub fn return_sites(&self) -> &[usize] {
        &self.return_sites
    }

    /// `true` if the instruction at `pc` is reachable from the entry.
    pub fn is_reachable(&self, pc: usize) -> bool {
        self.blocks[self.block_of[pc]].reachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Reg;

    #[test]
    fn straight_line_is_one_block() {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 1).addi(Reg::X2, Reg::X2, 1).halt();
        let p = asm.assemble().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].reachable);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks_and_joins() {
        let mut asm = Asm::new();
        let else_ = asm.new_label();
        let join = asm.new_label();
        asm.beq(Reg::X2, Reg::X0, else_); // block 0
        asm.li(Reg::X3, 1).jmp(join); // block 1
        asm.bind(else_);
        asm.li(Reg::X3, 2); // block 2
        asm.bind(join);
        asm.halt(); // block 3
        let p = asm.assemble().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 4);
        assert_eq!(cfg.blocks()[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks()[1].succs, vec![3]);
        assert_eq!(cfg.blocks()[2].succs, vec![3]);
        assert!(cfg.blocks().iter().all(|b| b.reachable));
    }

    #[test]
    fn code_after_unconditional_jump_is_unreachable() {
        let mut asm = Asm::new();
        let end = asm.new_label();
        asm.jmp(end);
        asm.li(Reg::X9, 9); // dead
        asm.bind(end);
        asm.halt();
        let p = asm.assemble().unwrap();
        let cfg = Cfg::build(&p);
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(0));
        assert!(cfg.is_reachable(2));
    }

    #[test]
    fn stored_li_targets_become_indirect_candidates() {
        let mut asm = Asm::new();
        let f = asm.new_label();
        asm.li_label(Reg::X2, f);
        asm.li(Reg::X3, 0x1000);
        asm.st8(Reg::X2, Reg::X3, 0);
        asm.ld8(Reg::X4, Reg::X3, 0);
        asm.call_ind(Reg::X4);
        asm.halt();
        asm.bind(f);
        asm.ret();
        let p = asm.assemble().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.indirect_targets(), &[6]);
        // The callee and (through the ret edge) the call continuation are
        // both reachable.
        assert!(cfg.is_reachable(6));
        assert!(cfg.is_reachable(5));
    }

    #[test]
    fn unstored_loop_bound_li_is_not_a_candidate() {
        let mut asm = Asm::new();
        let top = asm.here_label();
        asm.li(Reg::X2, 3); // small immediate, never stored
        asm.subi(Reg::X2, Reg::X2, 1);
        asm.bne(Reg::X2, Reg::X0, top);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert!(indirect_target_candidates(&p).is_empty());
    }

    #[test]
    fn branch_to_end_of_program_has_no_edge() {
        let mut asm = Asm::new();
        let end = asm.new_label();
        asm.beq(Reg::X2, Reg::X0, end);
        asm.nop();
        asm.bind(end); // bound at index == len
        let p = asm.assemble().unwrap();
        assert_eq!(p.insts[0].direct_target(), Some(2));
        let cfg = Cfg::build(&p);
        // Only the fall-through edge survives; index 2 is past the end.
        assert_eq!(inst_successors(&p, 0, &[], &[]), vec![1]);
        assert_eq!(cfg.blocks().len(), 2);
    }

    #[test]
    fn fault_handler_gets_block_edge_from_faulting_blocks() {
        let mut asm = Asm::new();
        let h = asm.new_label();
        asm.fault_handler(h);
        asm.li(Reg::X2, 0x1000);
        asm.ld8(Reg::X3, Reg::X2, 0); // may fault -> handler edge
        asm.halt();
        asm.bind(h);
        asm.halt();
        let p = asm.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let b0 = cfg.block_of(0);
        let hb = cfg.block_of(3);
        assert!(cfg.blocks()[b0].succs.contains(&hb));
        assert!(cfg.is_reachable(3));
    }
}
