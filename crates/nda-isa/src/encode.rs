//! Binary encoding of SpecRISC instructions and programs.
//!
//! A compact variable-length wire format: one opcode byte, then operands.
//! Register fields are one byte; immediates/offsets/targets are LEB128-
//! style varints. [`encode_program`]/[`decode_program`] serialize a whole
//! [`Program`] including data initializers, the fault handler and the MSR
//! file, so attack PoCs and generated workloads can be stored and shipped.
//!
//! ```
//! use nda_isa::{Asm, Reg};
//! use nda_isa::encode::{decode_program, encode_program};
//!
//! let mut asm = Asm::new();
//! asm.li(Reg::X2, 42).halt();
//! let prog = asm.assemble()?;
//! let bytes = encode_program(&prog);
//! let back = decode_program(&bytes)?;
//! assert_eq!(prog, back);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::inst::{AluOp, BranchCond, Inst, MemSize, Src2};
use crate::program::{DataInit, Program};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Magic bytes identifying an encoded program.
pub const MAGIC: [u8; 4] = *b"SRS1";

/// Errors from [`decode`]/[`decode_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside an instruction or header.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Register byte out of range.
    BadRegister(u8),
    /// Sub-opcode (ALU op, condition, size) out of range.
    BadSubcode(u8),
    /// Program header magic mismatch.
    BadMagic,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "register {b} out of range"),
            DecodeError::BadSubcode(b) => write!(f, "sub-opcode {b} out of range"),
            DecodeError::BadMagic => write!(f, "bad program magic"),
        }
    }
}

impl Error for DecodeError {}

// Opcode space.
const OP_LI: u8 = 0x01;
const OP_ALU_RR: u8 = 0x02;
const OP_ALU_RI: u8 = 0x03;
const OP_LOAD: u8 = 0x04;
const OP_STORE: u8 = 0x05;
const OP_BRANCH: u8 = 0x06;
const OP_JMP: u8 = 0x07;
const OP_JMP_IND: u8 = 0x08;
const OP_CALL: u8 = 0x09;
const OP_CALL_IND: u8 = 0x0A;
const OP_RET: u8 = 0x0B;
const OP_RDCYCLE: u8 = 0x0C;
const OP_RDMSR: u8 = 0x0D;
const OP_CLFLUSH: u8 = 0x0E;
const OP_FENCE: u8 = 0x0F;
const OP_NOP: u8 = 0x10;
const OP_HALT: u8 = 0x11;
const OP_SPEC_OFF: u8 = 0x12;
const OP_SPEC_ON: u8 = 0x13;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(DecodeError::Truncated);
        }
    }
}

/// ZigZag for signed offsets.
fn put_svarint(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn get_svarint(buf: &[u8], pos: &mut usize) -> Result<i64, DecodeError> {
    let z = get_varint(buf, pos)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

fn put_reg(out: &mut Vec<u8>, r: Reg) {
    out.push(r.index() as u8);
}

fn get_reg(buf: &[u8], pos: &mut usize) -> Result<Reg, DecodeError> {
    let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    if (b as usize) < crate::reg::NUM_REGS {
        Ok(Reg::from_index(b as usize))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Sar => 7,
        AluOp::Mul => 8,
        AluOp::Div => 9,
        AluOp::Rem => 10,
        AluOp::Slt => 11,
        AluOp::Sltu => 12,
    }
}

fn alu_from(code: u8) -> Result<AluOp, DecodeError> {
    Ok(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Sar,
        8 => AluOp::Mul,
        9 => AluOp::Div,
        10 => AluOp::Rem,
        11 => AluOp::Slt,
        12 => AluOp::Sltu,
        other => return Err(DecodeError::BadSubcode(other)),
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_from(code: u8) -> Result<BranchCond, DecodeError> {
    Ok(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        other => return Err(DecodeError::BadSubcode(other)),
    })
}

fn size_code(s: MemSize) -> u8 {
    match s {
        MemSize::B1 => 0,
        MemSize::B2 => 1,
        MemSize::B4 => 2,
        MemSize::B8 => 3,
    }
}

fn size_from(code: u8) -> Result<MemSize, DecodeError> {
    Ok(match code {
        0 => MemSize::B1,
        1 => MemSize::B2,
        2 => MemSize::B4,
        3 => MemSize::B8,
        other => return Err(DecodeError::BadSubcode(other)),
    })
}

/// Append the encoding of one instruction.
pub fn encode(inst: Inst, out: &mut Vec<u8>) {
    match inst {
        Inst::Li { rd, imm } => {
            out.push(OP_LI);
            put_reg(out, rd);
            put_varint(out, imm);
        }
        Inst::Alu { op, rd, rs1, src2 } => match src2 {
            Src2::Reg(rs2) => {
                out.push(OP_ALU_RR);
                out.push(alu_code(op));
                put_reg(out, rd);
                put_reg(out, rs1);
                put_reg(out, rs2);
            }
            Src2::Imm(imm) => {
                out.push(OP_ALU_RI);
                out.push(alu_code(op));
                put_reg(out, rd);
                put_reg(out, rs1);
                put_varint(out, imm);
            }
        },
        Inst::Load {
            rd,
            base,
            off,
            size,
        } => {
            out.push(OP_LOAD);
            out.push(size_code(size));
            put_reg(out, rd);
            put_reg(out, base);
            put_svarint(out, off);
        }
        Inst::Store {
            src,
            base,
            off,
            size,
        } => {
            out.push(OP_STORE);
            out.push(size_code(size));
            put_reg(out, src);
            put_reg(out, base);
            put_svarint(out, off);
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            out.push(OP_BRANCH);
            out.push(cond_code(cond));
            put_reg(out, rs1);
            put_reg(out, rs2);
            put_varint(out, target as u64);
        }
        Inst::Jmp { target } => {
            out.push(OP_JMP);
            put_varint(out, target as u64);
        }
        Inst::JmpInd { base } => {
            out.push(OP_JMP_IND);
            put_reg(out, base);
        }
        Inst::Call { target } => {
            out.push(OP_CALL);
            put_varint(out, target as u64);
        }
        Inst::CallInd { base } => {
            out.push(OP_CALL_IND);
            put_reg(out, base);
        }
        Inst::Ret => out.push(OP_RET),
        Inst::RdCycle { rd } => {
            out.push(OP_RDCYCLE);
            put_reg(out, rd);
        }
        Inst::RdMsr { rd, idx } => {
            out.push(OP_RDMSR);
            put_reg(out, rd);
            put_varint(out, idx as u64);
        }
        Inst::ClFlush { base, off } => {
            out.push(OP_CLFLUSH);
            put_reg(out, base);
            put_svarint(out, off);
        }
        Inst::Fence => out.push(OP_FENCE),
        Inst::Nop => out.push(OP_NOP),
        Inst::Halt => out.push(OP_HALT),
        Inst::SpecOff => out.push(OP_SPEC_OFF),
        Inst::SpecOn => out.push(OP_SPEC_ON),
    }
}

/// Decode one instruction starting at `pos`, advancing it.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Inst, DecodeError> {
    let op = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    let sub = |pos: &mut usize| -> Result<u8, DecodeError> {
        let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        Ok(b)
    };
    Ok(match op {
        OP_LI => Inst::Li {
            rd: get_reg(buf, pos)?,
            imm: get_varint(buf, pos)?,
        },
        OP_ALU_RR => {
            let o = alu_from(sub(pos)?)?;
            Inst::Alu {
                op: o,
                rd: get_reg(buf, pos)?,
                rs1: get_reg(buf, pos)?,
                src2: Src2::Reg(get_reg(buf, pos)?),
            }
        }
        OP_ALU_RI => {
            let o = alu_from(sub(pos)?)?;
            Inst::Alu {
                op: o,
                rd: get_reg(buf, pos)?,
                rs1: get_reg(buf, pos)?,
                src2: Src2::Imm(get_varint(buf, pos)?),
            }
        }
        OP_LOAD => {
            let size = size_from(sub(pos)?)?;
            Inst::Load {
                rd: get_reg(buf, pos)?,
                base: get_reg(buf, pos)?,
                off: get_svarint(buf, pos)?,
                size,
            }
        }
        OP_STORE => {
            let size = size_from(sub(pos)?)?;
            Inst::Store {
                src: get_reg(buf, pos)?,
                base: get_reg(buf, pos)?,
                off: get_svarint(buf, pos)?,
                size,
            }
        }
        OP_BRANCH => {
            let cond = cond_from(sub(pos)?)?;
            Inst::Branch {
                cond,
                rs1: get_reg(buf, pos)?,
                rs2: get_reg(buf, pos)?,
                target: get_varint(buf, pos)? as usize,
            }
        }
        OP_JMP => Inst::Jmp {
            target: get_varint(buf, pos)? as usize,
        },
        OP_JMP_IND => Inst::JmpInd {
            base: get_reg(buf, pos)?,
        },
        OP_CALL => Inst::Call {
            target: get_varint(buf, pos)? as usize,
        },
        OP_CALL_IND => Inst::CallInd {
            base: get_reg(buf, pos)?,
        },
        OP_RET => Inst::Ret,
        OP_RDCYCLE => Inst::RdCycle {
            rd: get_reg(buf, pos)?,
        },
        OP_RDMSR => Inst::RdMsr {
            rd: get_reg(buf, pos)?,
            idx: get_varint(buf, pos)? as u16,
        },
        OP_CLFLUSH => Inst::ClFlush {
            base: get_reg(buf, pos)?,
            off: get_svarint(buf, pos)?,
        },
        OP_FENCE => Inst::Fence,
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        OP_SPEC_OFF => Inst::SpecOff,
        OP_SPEC_ON => Inst::SpecOn,
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

/// Serialize a whole program (header, text, data, environment).
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    put_varint(&mut out, p.entry as u64);
    put_varint(&mut out, p.text_base);
    match p.fault_handler {
        Some(h) => {
            out.push(1);
            put_varint(&mut out, h as u64);
        }
        None => out.push(0),
    }
    put_varint(&mut out, p.insts.len() as u64);
    for &i in &p.insts {
        encode(i, &mut out);
    }
    put_varint(&mut out, p.data.len() as u64);
    for d in &p.data {
        put_varint(&mut out, d.addr);
        put_varint(&mut out, d.bytes.len() as u64);
        out.extend_from_slice(&d.bytes);
    }
    put_varint(&mut out, p.msr_values.len() as u64);
    for &(idx, v) in &p.msr_values {
        put_varint(&mut out, idx as u64);
        put_varint(&mut out, v);
    }
    put_varint(&mut out, p.msr_user_ok.len() as u64);
    for &idx in &p.msr_user_ok {
        put_varint(&mut out, idx as u64);
    }
    // Code-pointer provenance section (delta-encoded, strictly
    // increasing): which `Li` immediates are instruction indices.
    put_varint(&mut out, p.code_ptr_lis.len() as u64);
    let mut prev = 0u64;
    for &pc in &p.code_ptr_lis {
        put_varint(&mut out, pc as u64 - prev);
        prev = pc as u64;
    }
    // Data-segment code-pointer provenance (delta-encoded, strictly
    // increasing byte addresses): which 8-byte data words hold
    // instruction indices. Trailing section — absent in files written by
    // older encoders, which the decoder treats as empty.
    put_varint(&mut out, p.code_ptr_words.len() as u64);
    let mut prev = 0u64;
    for &addr in &p.code_ptr_words {
        put_varint(&mut out, addr - prev);
        prev = addr;
    }
    out
}

/// Deserialize a program produced by [`encode_program`].
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode_program(buf: &[u8]) -> Result<Program, DecodeError> {
    if buf.len() < 4 || buf[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut pos = 4;
    let entry = get_varint(buf, &mut pos)? as usize;
    let text_base = get_varint(buf, &mut pos)?;
    let has_handler = *buf.get(pos).ok_or(DecodeError::Truncated)?;
    pos += 1;
    let fault_handler = if has_handler != 0 {
        Some(get_varint(buf, &mut pos)? as usize)
    } else {
        None
    };
    let n = get_varint(buf, &mut pos)? as usize;
    let mut insts = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        insts.push(decode(buf, &mut pos)?);
    }
    let nd = get_varint(buf, &mut pos)? as usize;
    let mut data = Vec::with_capacity(nd.min(1 << 16));
    for _ in 0..nd {
        let addr = get_varint(buf, &mut pos)?;
        let len = get_varint(buf, &mut pos)? as usize;
        let bytes = buf
            .get(pos..pos + len)
            .ok_or(DecodeError::Truncated)?
            .to_vec();
        pos += len;
        data.push(DataInit { addr, bytes });
    }
    let nm = get_varint(buf, &mut pos)? as usize;
    let mut msr_values = Vec::with_capacity(nm.min(1 << 16));
    for _ in 0..nm {
        let idx = get_varint(buf, &mut pos)? as u16;
        let v = get_varint(buf, &mut pos)?;
        msr_values.push((idx, v));
    }
    let no = get_varint(buf, &mut pos)? as usize;
    let mut msr_user_ok = Vec::with_capacity(no.min(1 << 16));
    for _ in 0..no {
        msr_user_ok.push(get_varint(buf, &mut pos)? as u16);
    }
    let nc = get_varint(buf, &mut pos)? as usize;
    let mut code_ptr_lis = Vec::with_capacity(nc.min(1 << 16));
    let mut prev = 0u64;
    for _ in 0..nc {
        prev += get_varint(buf, &mut pos)?;
        code_ptr_lis.push(prev as usize);
    }
    // Trailing section added after the first format revision: files
    // written by older encoders simply end here.
    let mut code_ptr_words = Vec::new();
    if pos < buf.len() {
        let nw = get_varint(buf, &mut pos)? as usize;
        code_ptr_words.reserve(nw.min(1 << 16));
        let mut prev = 0u64;
        for _ in 0..nw {
            prev += get_varint(buf, &mut pos)?;
            code_ptr_words.push(prev);
        }
    }
    Ok(Program {
        insts,
        entry,
        data,
        fault_handler,
        msr_values,
        msr_user_ok,
        text_base,
        code_ptr_lis,
        code_ptr_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::{generate, GenConfig};

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn svarint_roundtrip_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            put_svarint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_svarint(&out, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn every_opcode_roundtrips() {
        use crate::Reg::*;
        let insts = vec![
            Inst::Li {
                rd: X2,
                imm: u64::MAX,
            },
            Inst::Alu {
                op: AluOp::Mul,
                rd: X3,
                rs1: X4,
                src2: Src2::Reg(X5),
            },
            Inst::Alu {
                op: AluOp::Sar,
                rd: X3,
                rs1: X4,
                src2: Src2::Imm(63),
            },
            Inst::Load {
                rd: X6,
                base: X7,
                off: -8,
                size: MemSize::B2,
            },
            Inst::Store {
                src: X8,
                base: X9,
                off: 1 << 40,
                size: MemSize::B8,
            },
            Inst::Branch {
                cond: BranchCond::Ltu,
                rs1: X10,
                rs2: X11,
                target: 12345,
            },
            Inst::Jmp { target: 7 },
            Inst::JmpInd { base: X12 },
            Inst::Call { target: 0 },
            Inst::CallInd { base: X13 },
            Inst::Ret,
            Inst::RdCycle { rd: X14 },
            Inst::RdMsr {
                rd: X15,
                idx: u16::MAX,
            },
            Inst::ClFlush {
                base: X16,
                off: -4096,
            },
            Inst::Fence,
            Inst::Nop,
            Inst::Halt,
            Inst::SpecOff,
            Inst::SpecOn,
        ];
        let mut buf = Vec::new();
        for &i in &insts {
            encode(i, &mut buf);
        }
        let mut pos = 0;
        for &want in &insts {
            assert_eq!(decode(&buf, &mut pos).unwrap(), want);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn generated_programs_roundtrip() {
        for seed in 0..6 {
            let p = generate(seed, GenConfig::default());
            let bytes = encode_program(&p);
            let back = decode_program(&bytes).unwrap();
            assert_eq!(p, back, "seed {seed}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_program(b"nope"), Err(DecodeError::BadMagic));
        assert_eq!(decode_program(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected_not_panicking() {
        let p = generate(3, GenConfig::default());
        let bytes = encode_program(&p);
        // Any prefix must fail cleanly, never panic.
        for cut in [4usize, 5, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_program(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut pos = 0;
        assert_eq!(decode(&[0xEE], &mut pos), Err(DecodeError::BadOpcode(0xEE)));
    }

    #[test]
    fn bad_register_rejected() {
        // OP_RDCYCLE then register 200.
        let mut pos = 0;
        assert_eq!(
            decode(&[OP_RDCYCLE, 200], &mut pos),
            Err(DecodeError::BadRegister(200))
        );
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeError::Truncated,
            DecodeError::BadOpcode(1),
            DecodeError::BadRegister(99),
            DecodeError::BadSubcode(77),
            DecodeError::BadMagic,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
