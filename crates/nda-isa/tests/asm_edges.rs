//! Assembler edge cases the CFG builder depends on: labels bound at the
//! very end of the program, duplicate bindings, degenerate self-loops and
//! unreachable blocks.

use nda_isa::{Asm, AsmError, Cfg, Interp, InterpError, Reg};

#[test]
fn branch_to_label_bound_at_end_of_program_is_pc_out_of_range() {
    // The taken target is index == len: the assembler accepts it, and the
    // interpreter reports the fetch past the end rather than panicking.
    let mut asm = Asm::new();
    let end = asm.new_label();
    asm.li(Reg::X2, 1);
    asm.beq(Reg::X2, Reg::X2, end); // always taken
    asm.li(Reg::X3, 99); // skipped
    asm.bind(end);
    let p = asm.assemble().unwrap();
    assert_eq!(p.insts[1].direct_target(), Some(3), "target == len");

    let mut interp = Interp::new(&p);
    let err = interp.run(100).unwrap_err();
    assert!(matches!(err, InterpError::PcOutOfRange { pc: 3 }));
    assert_eq!(interp.regs()[3], 0, "skipped write must not execute");

    // The CFG drops the out-of-range edge instead of panicking.
    let cfg = Cfg::build(&p);
    assert!(cfg.is_reachable(0));
}

#[test]
fn final_instruction_branch_to_itself_assembles() {
    // A backward branch bound to the final instruction: `target == pc` on
    // the last slot, the tightest legal loop.
    let mut asm = Asm::new();
    asm.nop();
    let top = asm.here_label();
    asm.beq(Reg::X0, Reg::X0, top);
    let p = asm.assemble().unwrap();
    assert_eq!(p.insts[1].direct_target(), Some(1), "self-loop target");

    // It spins forever: the step budget runs out without a halt.
    let mut interp = Interp::new(&p);
    let err = interp.run(50).unwrap_err();
    assert!(matches!(err, InterpError::StepLimit));
    assert!(!interp.halted());

    // The CFG gives the loop block a self-edge and keeps it reachable.
    let cfg = Cfg::build(&p);
    let b = cfg.block_of(1);
    assert!(cfg.blocks()[b].succs.contains(&b));
    assert!(cfg.is_reachable(1));
}

#[test]
fn duplicate_label_binding_is_reported_not_silently_resolved() {
    let mut asm = Asm::new();
    let l = asm.new_label();
    asm.bind(l);
    asm.li(Reg::X2, 1);
    asm.bind(l); // rebound
    asm.beq(Reg::X2, Reg::X2, l);
    asm.halt();
    assert!(matches!(asm.assemble(), Err(AsmError::Rebound(_))));
}

#[test]
fn rebinding_does_not_leak_a_position_through_label_position() {
    let mut asm = Asm::new();
    let l = asm.new_label();
    assert_eq!(asm.label_position(l), None);
    asm.nop();
    asm.bind(l);
    assert_eq!(asm.label_position(l), Some(1));
    asm.nop();
    asm.bind(l);
    assert_eq!(asm.label_position(l), None, "rebound label has no position");
}

#[test]
fn unreachable_block_is_assembled_but_flagged_by_the_cfg() {
    let mut asm = Asm::new();
    let live = asm.new_label();
    asm.jmp(live);
    // Dead block: valid code, never reached architecturally.
    asm.li(Reg::X5, 5);
    asm.halt();
    asm.bind(live);
    asm.li(Reg::X6, 6);
    asm.halt();
    let p = asm.assemble().unwrap();

    let mut interp = Interp::new(&p);
    let exit = interp.run(100).unwrap();
    assert!(exit.halted);
    assert_eq!(interp.regs()[5], 0);
    assert_eq!(interp.regs()[6], 6);

    let cfg = Cfg::build(&p);
    assert!(!cfg.is_reachable(1));
    assert!(!cfg.is_reachable(2));
    assert!(cfg.is_reachable(3));
}
