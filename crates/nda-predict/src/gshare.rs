//! Gshare direction predictor.

/// Geometry of the [`Gshare`] predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GshareConfig {
    /// Number of 2-bit counters (power of two).
    pub entries: usize,
    /// Bits of global history XORed into the index.
    pub history_bits: u32,
}

impl Default for GshareConfig {
    fn default() -> GshareConfig {
        GshareConfig {
            entries: 4096,
            history_bits: 12,
        }
    }
}

/// A gshare predictor: 2-bit saturating counters indexed by
/// `pc XOR global-history`.
///
/// The global history register (GHR) is updated *speculatively* at predict
/// time; callers snapshot it per branch ([`Gshare::ghr`]) and restore on a
/// squash ([`Gshare::restore_ghr`]) — the standard recovery gem5 also
/// implements. Counters train at branch resolution using the GHR value the
/// prediction was made with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gshare {
    cfg: GshareConfig,
    table: Vec<u8>,
    ghr: u64,
    predictions: u64,
    correct: u64,
}

impl Gshare {
    /// A predictor with all counters weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(cfg: GshareConfig) -> Gshare {
        assert!(
            cfg.entries.is_power_of_two(),
            "gshare entries must be a power of two"
        );
        Gshare {
            table: vec![1; cfg.entries],
            cfg,
            ghr: 0,
            predictions: 0,
            correct: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64, ghr: u64) -> usize {
        let mask = (self.cfg.entries - 1) as u64;
        let hist_mask = (1u64 << self.cfg.history_bits) - 1;
        ((pc ^ (ghr & hist_mask)) & mask) as usize
    }

    /// Current global history (snapshot before predicting so a squash can
    /// restore it).
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Restore the global history after a squash.
    pub fn restore_ghr(&mut self, ghr: u64) {
        self.ghr = ghr;
    }

    /// Predict the direction of the branch at `pc` and speculatively shift
    /// the prediction into the history.
    pub fn predict(&mut self, pc: u64) -> bool {
        let taken = self.table[self.index(pc, self.ghr)] >= 2;
        self.ghr = (self.ghr << 1) | taken as u64;
        self.predictions += 1;
        taken
    }

    /// Peek at the prediction without touching history (used by tests and
    /// by the trace renderer).
    pub fn peek(&self, pc: u64) -> bool {
        self.table[self.index(pc, self.ghr)] >= 2
    }

    /// Peek at the prediction the table would give under a specific
    /// history value (tournament training).
    pub fn peek_at(&self, pc: u64, ghr: u64) -> bool {
        self.table[self.index(pc, ghr)] >= 2
    }

    /// Train at resolution: `ghr_at_predict` is the history snapshot taken
    /// just before [`Gshare::predict`] ran for this branch.
    pub fn train(&mut self, pc: u64, ghr_at_predict: u64, taken: bool, predicted: bool) {
        let idx = self.index(pc, ghr_at_predict);
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        if taken == predicted {
            self.correct += 1;
        }
    }

    /// After a misprediction squash the speculative history is wrong:
    /// restore the snapshot, then shift in the actual outcome.
    pub fn recover(&mut self, ghr_at_predict: u64, taken: bool) {
        self.ghr = (ghr_at_predict << 1) | taken as u64;
    }

    /// (predictions made, predictions that trained correct).
    pub fn accuracy_counts(&self) -> (u64, u64) {
        (self.predictions, self.correct)
    }

    /// Functional (non-speculative, commit-order) update for sampled
    /// simulation's fast-forward warming: predict, train with the known
    /// outcome, and leave the history as if the branch resolved
    /// immediately — the predict/train/recover sequence the detailed core
    /// performs, collapsed to one call because the functional path never
    /// runs ahead of resolution.
    pub fn functional_update(&mut self, pc: u64, taken: bool) {
        let ghr = self.ghr();
        let predicted = self.predict(pc);
        self.train(pc, ghr, taken, predicted);
        self.recover(ghr, taken);
    }

    /// Snapshot the full predictor state — counters, history *and* the
    /// accuracy counters, which participate in equality (warm-restored
    /// predictors must compare equal to their cold-run twins). See
    /// [`GshareState`].
    pub fn dump_state(&self) -> GshareState {
        GshareState {
            table: self.table.clone(),
            ghr: self.ghr,
            predictions: self.predictions,
            correct: self.correct,
        }
    }

    /// Rebuild a predictor from a [`Gshare::dump_state`] snapshot. Returns
    /// `None` when the snapshot's table size does not match `cfg`.
    pub fn from_state(cfg: GshareConfig, state: &GshareState) -> Option<Gshare> {
        if !cfg.entries.is_power_of_two() || state.table.len() != cfg.entries {
            return None;
        }
        Some(Gshare {
            cfg,
            table: state.table.clone(),
            ghr: state.ghr,
            predictions: state.predictions,
            correct: state.correct,
        })
    }
}

/// Exact snapshot of a [`Gshare`] predictor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GshareState {
    /// The 2-bit saturating counters.
    pub table: Vec<u8>,
    /// Global history register.
    pub ghr: u64,
    /// Predictions made.
    pub predictions: u64,
    /// Predictions that trained correct.
    pub correct: u64,
}

impl Default for Gshare {
    fn default() -> Gshare {
        Gshare::new(GshareConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_toward_taken() {
        let mut g = Gshare::default();
        let pc = 0x40;
        // Weakly-not-taken initially.
        assert!(!g.peek(pc));
        // Repeated taken outcomes: once the 12-bit history saturates to
        // all-ones the index stabilises and the counter trains up.
        for _ in 0..16 {
            let ghr = g.ghr();
            let p = g.predict(pc);
            g.train(pc, ghr, true, p);
            g.recover(ghr, true);
        }
        assert!(g.peek(pc), "repeated taken outcomes must flip the counter");
    }

    #[test]
    fn mis_training_transfers_to_future_predictions() {
        // The Spectre-v1 primitive: train taken with valid inputs, then the
        // out-of-bounds invocation is still predicted taken.
        let mut g = Gshare::default();
        let pc = 0x88;
        for _ in 0..20 {
            let ghr = g.ghr();
            let p = g.predict(pc);
            g.train(pc, ghr, true, p);
            g.recover(ghr, true);
        }
        assert!(g.predict(pc), "attacker mis-training succeeded");
    }

    #[test]
    fn history_affects_index() {
        let cfg = GshareConfig {
            entries: 16,
            history_bits: 4,
        };
        let g = Gshare::new(cfg);
        // Same PC, different history must (for this geometry) hit different
        // counters for at least one history pair.
        let i0 = g.index(0b1010, 0b0000);
        let i1 = g.index(0b1010, 0b0101);
        assert_ne!(i0, i1);
    }

    #[test]
    fn ghr_snapshot_restore() {
        let mut g = Gshare::default();
        g.recover(0b10, true); // ghr = 0b101
        let before = g.ghr();
        g.recover(before, false);
        g.recover(g.ghr(), true);
        assert_ne!(g.ghr(), before);
        g.restore_ghr(before);
        assert_eq!(g.ghr(), before);
    }

    #[test]
    fn recover_inserts_actual_outcome() {
        let mut g = Gshare::default();
        g.recover(0b101, true);
        assert_eq!(g.ghr(), 0b1011);
        g.recover(0b101, false);
        assert_eq!(g.ghr(), 0b1010);
    }

    #[test]
    fn counter_saturates() {
        let mut g = Gshare::new(GshareConfig {
            entries: 4,
            history_bits: 2,
        });
        for _ in 0..10 {
            g.train(0, 0, true, false);
        }
        for _ in 0..3 {
            g.train(0, 0, false, false);
        }
        // 3 -> 0 after three not-taken: prediction flips back.
        assert!(!g.peek(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_panics() {
        Gshare::new(GshareConfig {
            entries: 3,
            history_bits: 2,
        });
    }
}
