//! Return address stack.

/// Number of RAS entries (paper Table 3: 16).
pub const RAS_ENTRIES: usize = 16;

/// Copyable snapshot of the [`Ras`], stored per in-flight branch for
/// squash recovery (ret2spec-style corruption would otherwise persist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasSnapshot {
    stack: [usize; RAS_ENTRIES],
    top: usize,
    depth: usize,
}

/// A fixed-depth circular return-address stack.
///
/// `call` pushes the fall-through PC at fetch; `ret` pops the prediction.
/// Overflow wraps (oldest entries are silently overwritten), underflow
/// predicts nothing — both behaviours mirror hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ras {
    stack: [usize; RAS_ENTRIES],
    /// Index one past the most recent push (mod RAS_ENTRIES).
    top: usize,
    /// Live entries, saturating at RAS_ENTRIES.
    depth: usize,
}

impl Ras {
    /// An empty stack.
    pub fn new() -> Ras {
        Ras {
            stack: [0; RAS_ENTRIES],
            top: 0,
            depth: 0,
        }
    }

    /// Push a predicted return address (on fetching a `call`).
    pub fn push(&mut self, ret_addr: usize) {
        self.stack[self.top] = ret_addr;
        self.top = (self.top + 1) % RAS_ENTRIES;
        self.depth = (self.depth + 1).min(RAS_ENTRIES);
    }

    /// Pop the predicted return address (on fetching a `ret`), or `None`
    /// if the stack is empty.
    pub fn pop(&mut self) -> Option<usize> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + RAS_ENTRIES - 1) % RAS_ENTRIES;
        self.depth -= 1;
        Some(self.stack[self.top])
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Snapshot for squash recovery.
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot {
            stack: self.stack,
            top: self.top,
            depth: self.depth,
        }
    }

    /// Restore a snapshot taken before the squashed region was fetched.
    pub fn restore(&mut self, snap: RasSnapshot) {
        self.stack = snap.stack;
        self.top = snap.top;
        self.depth = snap.depth;
    }

    /// Snapshot with public fields for external serialization (the
    /// persistent checkpoint store); [`RasSnapshot`] keeps its fields
    /// private because it is a squash-recovery token, not an interchange
    /// format. See [`RasState`].
    pub fn dump_state(&self) -> RasState {
        RasState {
            stack: self.stack,
            top: self.top,
            depth: self.depth,
        }
    }

    /// Rebuild a stack from a [`Ras::dump_state`] snapshot. Returns `None`
    /// when the snapshot's indices are out of range for [`RAS_ENTRIES`]
    /// (a corrupt or foreign encoding).
    pub fn from_state(state: &RasState) -> Option<Ras> {
        if state.top >= RAS_ENTRIES || state.depth > RAS_ENTRIES {
            return None;
        }
        Some(Ras {
            stack: state.stack,
            top: state.top,
            depth: state.depth,
        })
    }
}

/// Exact snapshot of a [`Ras`] with public fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasState {
    /// The circular buffer contents.
    pub stack: [usize; RAS_ENTRIES],
    /// Index one past the most recent push.
    pub top: usize,
    /// Live entries.
    pub depth: usize,
}

impl Default for Ras {
    fn default() -> Ras {
        Ras::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new();
        r.push(10);
        r.push(20);
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_keeping_newest() {
        let mut r = Ras::new();
        for i in 0..RAS_ENTRIES + 4 {
            r.push(i);
        }
        assert_eq!(r.depth(), RAS_ENTRIES);
        // The newest RAS_ENTRIES survive.
        for i in (4..RAS_ENTRIES + 4).rev() {
            assert_eq!(r.pop(), Some(i));
        }
        // Older entries were overwritten; pops past depth return None.
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn snapshot_restores_across_speculative_pops() {
        let mut r = Ras::new();
        r.push(1);
        r.push(2);
        let snap = r.snapshot();
        // Wrong-path: pops and pushes corrupt the stack.
        r.pop();
        r.push(99);
        r.push(98);
        r.restore(snap);
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
    }

    #[test]
    fn empty_pop_is_none_and_depth_zero() {
        let mut r = Ras::new();
        assert_eq!(r.pop(), None);
        assert_eq!(r.depth(), 0);
    }
}
