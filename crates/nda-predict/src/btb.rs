//! Branch target buffer.
//!
//! The BTB maps branch PCs to predicted target PCs. Two properties matter
//! for the paper:
//!
//! 1. Entries from different branch *values* at the same call site collide
//!    (same index+tag), so an indirect `call` through a register leaves the
//!    most recent target behind — Listing 3's transmitter.
//! 2. Updates performed during wrong-path execution are **not** reverted on
//!    squash ([`BtbConfig::speculative_update`], default `true`), making
//!    the BTB a covert channel. The ablation benches flip this off to show
//!    the channel closing (and the performance cost of doing so naively is
//!    zero here because update *timing* is unchanged — the point of the
//!    paper is that one must close *every* such structure).

/// Geometry and update policy of the [`Btb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of direct-mapped entries (power of two). Table 3: 4096.
    pub entries: usize,
    /// Update the BTB as soon as an indirect branch *executes* (possibly on
    /// the wrong path). `false` defers updates to commit.
    pub speculative_update: bool,
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig {
            entries: 4096,
            speculative_update: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u64,
    target: usize,
    valid: bool,
}

/// A direct-mapped, tagged branch target buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btb {
    cfg: BtbConfig,
    entries: Vec<Entry>,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// An empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(cfg: BtbConfig) -> Btb {
        assert!(
            cfg.entries.is_power_of_two(),
            "btb entries must be a power of two"
        );
        Btb {
            entries: vec![
                Entry {
                    tag: 0,
                    target: 0,
                    valid: false
                };
                cfg.entries
            ],
            cfg,
            lookups: 0,
            hits: 0,
        }
    }

    /// The configuration this BTB was built with.
    pub fn config(&self) -> BtbConfig {
        self.cfg
    }

    #[inline]
    fn split(&self, pc: u64) -> (usize, u64) {
        let idx = (pc as usize) & (self.cfg.entries - 1);
        (idx, pc >> self.cfg.entries.trailing_zeros())
    }

    /// Predicted target for the branch at `pc`, if one is cached.
    pub fn lookup(&mut self, pc: u64) -> Option<usize> {
        self.lookups += 1;
        let (idx, tag) = self.split(pc);
        let e = self.entries[idx];
        if e.valid && e.tag == tag {
            self.hits += 1;
            Some(e.target)
        } else {
            None
        }
    }

    /// Tag-check without stats (used by the trace renderer).
    pub fn peek(&self, pc: u64) -> Option<usize> {
        let (idx, tag) = self.split(pc);
        let e = self.entries[idx];
        (e.valid && e.tag == tag).then_some(e.target)
    }

    /// Install/overwrite the mapping `pc -> target`.
    pub fn update(&mut self, pc: u64, target: usize) {
        let (idx, tag) = self.split(pc);
        self.entries[idx] = Entry {
            tag,
            target,
            valid: true,
        };
    }

    /// `(lookups, hits)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Snapshot the full BTB state, including the lookup/hit counters
    /// (they participate in equality). See [`BtbState`].
    pub fn dump_state(&self) -> BtbState {
        BtbState {
            entries: self
                .entries
                .iter()
                .map(|e| BtbEntryState {
                    tag: e.tag,
                    target: e.target,
                    valid: e.valid,
                })
                .collect(),
            lookups: self.lookups,
            hits: self.hits,
        }
    }

    /// Rebuild a BTB from a [`Btb::dump_state`] snapshot. Returns `None`
    /// when the snapshot's entry count does not match `cfg`.
    pub fn from_state(cfg: BtbConfig, state: &BtbState) -> Option<Btb> {
        if !cfg.entries.is_power_of_two() || state.entries.len() != cfg.entries {
            return None;
        }
        Some(Btb {
            cfg,
            entries: state
                .entries
                .iter()
                .map(|e| Entry {
                    tag: e.tag,
                    target: e.target,
                    valid: e.valid,
                })
                .collect(),
            lookups: state.lookups,
            hits: state.hits,
        })
    }
}

/// Exact snapshot of one [`Btb`] entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbEntryState {
    /// Entry tag (upper PC bits).
    pub tag: u64,
    /// Cached target (instruction index).
    pub target: usize,
    /// Whether the entry is populated.
    pub valid: bool,
}

/// Exact snapshot of a [`Btb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BtbState {
    /// All entries in index order.
    pub entries: Vec<BtbEntryState>,
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
}

impl Default for Btb {
    fn default() -> Btb {
        Btb::new(BtbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = Btb::default();
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 55);
        assert_eq!(b.lookup(0x100), Some(55));
        assert_eq!(b.stats(), (2, 1));
    }

    #[test]
    fn same_site_different_targets_conflict() {
        // Listing 3: all indirect calls from one site share one entry, so
        // the last speculative target wins — that's the covert channel.
        let mut b = Btb::default();
        b.update(0x200, 10);
        b.update(0x200, 99);
        assert_eq!(b.lookup(0x200), Some(99));
    }

    #[test]
    fn tag_prevents_aliased_hit() {
        let mut b = Btb::new(BtbConfig {
            entries: 16,
            speculative_update: true,
        });
        b.update(0x5, 7);
        // 0x5 + 16 maps to the same index but a different tag.
        assert_eq!(b.lookup(0x5 + 16), None);
        assert_eq!(b.lookup(0x5), Some(7));
    }

    #[test]
    fn peek_does_not_count() {
        let mut b = Btb::default();
        b.update(0x1, 2);
        let before = b.stats();
        assert_eq!(b.peek(0x1), Some(2));
        assert_eq!(b.stats(), before);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        Btb::new(BtbConfig {
            entries: 5,
            speculative_update: true,
        });
    }
}
