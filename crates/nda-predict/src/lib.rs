//! # Branch prediction structures for the NDA reproduction
//!
//! The front end of the out-of-order core predicts through three
//! structures, all of which the paper's threat model treats as attacker
//! influencable:
//!
//! * [`Gshare`] — a global-history XOR direction predictor with speculative
//!   history update and squash recovery. Mis-training it is the steering
//!   primitive of Spectre v1 (paper Listing 1).
//! * [`Btb`] — the branch target buffer. It is updated *speculatively* and
//!   the update is **not** reverted on squash, which is exactly what makes
//!   it a covert channel (paper §3, Fig 5, Listing 3). The update point is
//!   configurable so the ablation benches can show the channel closing.
//! * [`Ras`] — the return address stack, the steering surface of
//!   ret2spec-style attacks.

#![forbid(unsafe_code)]

pub mod btb;
pub mod gshare;
pub mod ras;
pub mod tournament;

pub use btb::{Btb, BtbConfig, BtbEntryState, BtbState};
pub use gshare::{Gshare, GshareConfig, GshareState};
pub use ras::{Ras, RasSnapshot, RasState};
pub use tournament::{
    Bimodal, DirPredictor, DirPredictorState, PredictorKind, Tournament, TournamentState,
};
