//! Bimodal and tournament direction predictors, and the [`DirPredictor`]
//! dispatch enum the front end is generic over.
//!
//! gem5's O3 defaults to a tournament predictor (local + global with a
//! chooser); the reproduction's baseline is gshare for simplicity, but the
//! predictor-quality ablation runs all three — NDA's control-steering
//! overhead is a function of how long branches stay unresolved *and* how
//! often they mispredict, so predictor quality shifts the Table 2 numbers.

use crate::gshare::{Gshare, GshareConfig, GshareState};

/// A per-PC 2-bit bimodal predictor (no global history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    table: Vec<u8>,
}

impl Bimodal {
    /// `entries` counters, all weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Bimodal {
        assert!(
            entries.is_power_of_two(),
            "bimodal entries must be a power of two"
        );
        Bimodal {
            table: vec![1; entries],
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.table.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    /// Train with the resolved outcome.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let idx = self.idx(pc);
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Snapshot the counter table.
    pub fn dump_state(&self) -> Vec<u8> {
        self.table.clone()
    }

    /// Rebuild from a [`Bimodal::dump_state`] snapshot of `entries` size.
    pub fn from_state(entries: usize, table: &[u8]) -> Option<Bimodal> {
        if !entries.is_power_of_two() || table.len() != entries {
            return None;
        }
        Some(Bimodal {
            table: table.to_vec(),
        })
    }
}

/// A tournament predictor: gshare + bimodal with a per-PC chooser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tournament {
    gshare: Gshare,
    bimodal: Bimodal,
    /// 2-bit chooser per PC: >= 2 selects gshare.
    chooser: Vec<u8>,
}

impl Tournament {
    /// Build with the given gshare geometry; the bimodal and chooser
    /// tables match its entry count.
    pub fn new(cfg: GshareConfig) -> Tournament {
        Tournament {
            bimodal: Bimodal::new(cfg.entries),
            chooser: vec![2; cfg.entries],
            gshare: Gshare::new(cfg),
        }
    }

    #[inline]
    fn choose_idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.chooser.len() - 1)
    }

    /// Current global history.
    pub fn ghr(&self) -> u64 {
        self.gshare.ghr()
    }

    /// Restore global history (squash recovery).
    pub fn restore_ghr(&mut self, g: u64) {
        self.gshare.restore_ghr(g);
    }

    /// Predict and speculatively update history.
    pub fn predict(&mut self, pc: u64) -> bool {
        let g = self.gshare.peek(pc);
        let b = self.bimodal.predict(pc);
        let use_gshare = self.chooser[self.choose_idx(pc)] >= 2;
        let taken = if use_gshare { g } else { b };
        // Shift the *final* prediction into the shared history.
        self.gshare
            .restore_ghr((self.gshare.ghr() << 1) | taken as u64);
        taken
    }

    /// Train both components and the chooser with the resolved outcome.
    pub fn train(&mut self, pc: u64, ghr_at_predict: u64, taken: bool, predicted: bool) {
        let g_correct = self.gshare.peek_at(pc, ghr_at_predict) == taken;
        let b_correct = self.bimodal.predict(pc) == taken;
        let cidx = self.choose_idx(pc);
        let c = &mut self.chooser[cidx];
        match (g_correct, b_correct) {
            (true, false) => *c = (*c + 1).min(3),
            (false, true) => *c = c.saturating_sub(1),
            _ => {}
        }
        self.gshare.train(pc, ghr_at_predict, taken, predicted);
        self.bimodal.train(pc, taken);
    }

    /// Fix the history after a misprediction.
    pub fn recover(&mut self, ghr_at_predict: u64, taken: bool) {
        self.gshare.recover(ghr_at_predict, taken);
    }

    /// Functional commit-order update (sampled-simulation warming): the
    /// predict/train/recover sequence collapsed to one call. See
    /// [`Gshare::functional_update`].
    pub fn functional_update(&mut self, pc: u64, taken: bool) {
        let ghr = self.ghr();
        let predicted = self.predict(pc);
        self.train(pc, ghr, taken, predicted);
        self.recover(ghr, taken);
    }

    /// Snapshot all three component states. See [`TournamentState`].
    pub fn dump_state(&self) -> TournamentState {
        TournamentState {
            gshare: self.gshare.dump_state(),
            bimodal: self.bimodal.dump_state(),
            chooser: self.chooser.clone(),
        }
    }

    /// Rebuild from a [`Tournament::dump_state`] snapshot. Returns `None`
    /// when any component's table size does not match `cfg`.
    pub fn from_state(cfg: GshareConfig, state: &TournamentState) -> Option<Tournament> {
        if state.chooser.len() != cfg.entries {
            return None;
        }
        Some(Tournament {
            gshare: Gshare::from_state(cfg, &state.gshare)?,
            bimodal: Bimodal::from_state(cfg.entries, &state.bimodal)?,
            chooser: state.chooser.clone(),
        })
    }
}

/// Exact snapshot of a [`Tournament`] predictor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TournamentState {
    /// The gshare component.
    pub gshare: GshareState,
    /// The bimodal component's counter table.
    pub bimodal: Vec<u8>,
    /// The chooser table.
    pub chooser: Vec<u8>,
}

/// Which direction predictor the front end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Global-history XOR (the reproduction's baseline).
    Gshare,
    /// Per-PC 2-bit counters only.
    Bimodal,
    /// gshare + bimodal with a chooser (gem5's default style).
    Tournament,
}

/// Runtime-selected direction predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirPredictor {
    /// See [`Gshare`].
    Gshare(Gshare),
    /// See [`Bimodal`].
    Bimodal(Bimodal),
    /// See [`Tournament`].
    Tournament(Tournament),
}

impl DirPredictor {
    /// Build the selected predictor over a common geometry.
    pub fn new(kind: PredictorKind, cfg: GshareConfig) -> DirPredictor {
        match kind {
            PredictorKind::Gshare => DirPredictor::Gshare(Gshare::new(cfg)),
            PredictorKind::Bimodal => DirPredictor::Bimodal(Bimodal::new(cfg.entries)),
            PredictorKind::Tournament => DirPredictor::Tournament(Tournament::new(cfg)),
        }
    }

    /// Current global history (0 for bimodal).
    pub fn ghr(&self) -> u64 {
        match self {
            DirPredictor::Gshare(g) => g.ghr(),
            DirPredictor::Bimodal(_) => 0,
            DirPredictor::Tournament(t) => t.ghr(),
        }
    }

    /// Restore history after a squash.
    pub fn restore_ghr(&mut self, ghr: u64) {
        match self {
            DirPredictor::Gshare(g) => g.restore_ghr(ghr),
            DirPredictor::Bimodal(_) => {}
            DirPredictor::Tournament(t) => t.restore_ghr(ghr),
        }
    }

    /// Predict the branch at `pc` (speculatively updating history).
    pub fn predict(&mut self, pc: u64) -> bool {
        match self {
            DirPredictor::Gshare(g) => g.predict(pc),
            DirPredictor::Bimodal(b) => b.predict(pc),
            DirPredictor::Tournament(t) => t.predict(pc),
        }
    }

    /// Train with the resolved outcome.
    pub fn train(&mut self, pc: u64, ghr_at_predict: u64, taken: bool, predicted: bool) {
        match self {
            DirPredictor::Gshare(g) => g.train(pc, ghr_at_predict, taken, predicted),
            DirPredictor::Bimodal(b) => b.train(pc, taken),
            DirPredictor::Tournament(t) => t.train(pc, ghr_at_predict, taken, predicted),
        }
    }

    /// Fix history after a misprediction.
    pub fn recover(&mut self, ghr_at_predict: u64, taken: bool) {
        match self {
            DirPredictor::Gshare(g) => g.recover(ghr_at_predict, taken),
            DirPredictor::Bimodal(_) => {}
            DirPredictor::Tournament(t) => t.recover(ghr_at_predict, taken),
        }
    }

    /// Functional commit-order update (sampled-simulation warming): train
    /// the predictor with a resolved branch outcome, leaving history as if
    /// the branch resolved immediately. See [`Gshare::functional_update`].
    pub fn functional_update(&mut self, pc: u64, taken: bool) {
        match self {
            DirPredictor::Gshare(g) => g.functional_update(pc, taken),
            DirPredictor::Bimodal(b) => b.train(pc, taken),
            DirPredictor::Tournament(t) => t.functional_update(pc, taken),
        }
    }

    /// The [`PredictorKind`] of this predictor.
    pub fn kind(&self) -> PredictorKind {
        match self {
            DirPredictor::Gshare(_) => PredictorKind::Gshare,
            DirPredictor::Bimodal(_) => PredictorKind::Bimodal,
            DirPredictor::Tournament(_) => PredictorKind::Tournament,
        }
    }

    /// Snapshot the active predictor's state. See [`DirPredictorState`].
    pub fn dump_state(&self) -> DirPredictorState {
        match self {
            DirPredictor::Gshare(g) => DirPredictorState::Gshare(g.dump_state()),
            DirPredictor::Bimodal(b) => DirPredictorState::Bimodal(b.dump_state()),
            DirPredictor::Tournament(t) => DirPredictorState::Tournament(t.dump_state()),
        }
    }

    /// Rebuild from a [`DirPredictor::dump_state`] snapshot. Returns `None`
    /// when the snapshot's variant does not match `kind` or its table
    /// sizes do not match `cfg` — the checkpoint store refuses such
    /// entries rather than restoring a predictor of the wrong shape.
    pub fn from_state(
        kind: PredictorKind,
        cfg: GshareConfig,
        state: &DirPredictorState,
    ) -> Option<DirPredictor> {
        match (kind, state) {
            (PredictorKind::Gshare, DirPredictorState::Gshare(s)) => {
                Some(DirPredictor::Gshare(Gshare::from_state(cfg, s)?))
            }
            (PredictorKind::Bimodal, DirPredictorState::Bimodal(s)) => {
                Some(DirPredictor::Bimodal(Bimodal::from_state(cfg.entries, s)?))
            }
            (PredictorKind::Tournament, DirPredictorState::Tournament(s)) => {
                Some(DirPredictor::Tournament(Tournament::from_state(cfg, s)?))
            }
            _ => None,
        }
    }
}

/// Exact snapshot of a [`DirPredictor`], tagged by kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirPredictorState {
    /// Snapshot of a [`Gshare`] predictor.
    Gshare(GshareState),
    /// Snapshot of a [`Bimodal`] predictor (its counter table).
    Bimodal(Vec<u8>),
    /// Snapshot of a [`Tournament`] predictor.
    Tournament(TournamentState),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_trains_per_pc() {
        let mut b = Bimodal::new(16);
        assert!(!b.predict(3));
        b.train(3, true);
        b.train(3, true);
        assert!(b.predict(3));
        assert!(!b.predict(4), "other PCs unaffected");
    }

    #[test]
    fn tournament_chooser_migrates_to_the_better_component() {
        let mut t = Tournament::new(GshareConfig {
            entries: 64,
            history_bits: 4,
        });
        // A strongly-biased branch: bimodal handles it perfectly; with a
        // wandering history gshare splits its counters. Train both and the
        // chooser must not end up worse than either alone.
        for i in 0..64u64 {
            let ghr = t.ghr();
            let pred = t.predict(0x10);
            let taken = true;
            t.train(0x10, ghr, taken, pred);
            t.recover(ghr, taken ^ (i % 7 == 0)); // jitter the history
        }
        assert!(t.predict(0x10), "biased-taken branch must predict taken");
    }

    #[test]
    fn dir_predictor_dispatch_is_uniform() {
        for kind in [
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Tournament,
        ] {
            let mut p = DirPredictor::new(
                kind,
                GshareConfig {
                    entries: 64,
                    history_bits: 6,
                },
            );
            let ghr = p.ghr();
            let pred = p.predict(0x44);
            p.train(0x44, ghr, true, pred);
            p.recover(ghr, true);
            p.restore_ghr(ghr);
            // Train to taken and verify it sticks.
            for _ in 0..24 {
                let ghr = p.ghr();
                let pred = p.predict(0x44);
                p.train(0x44, ghr, true, pred);
                p.recover(ghr, true);
            }
            assert!(
                p.predict(0x44),
                "{kind:?} failed to learn a constant branch"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bimodal_non_pow2_panics() {
        Bimodal::new(10);
    }

    #[test]
    fn functional_update_matches_resolved_sequence() {
        // The collapsed call must leave the predictor in exactly the state
        // the explicit snapshot/predict/train/recover dance produces.
        for kind in [
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Tournament,
        ] {
            let cfg = GshareConfig {
                entries: 64,
                history_bits: 6,
            };
            let mut functional = DirPredictor::new(kind, cfg);
            let mut explicit = DirPredictor::new(kind, cfg);
            let outcomes = [true, true, false, true, false, false, true, true];
            for (i, &taken) in outcomes.iter().enumerate() {
                let pc = 0x40 + (i as u64 % 3) * 8;
                functional.functional_update(pc, taken);
                let ghr = explicit.ghr();
                let pred = explicit.predict(pc);
                explicit.train(pc, ghr, taken, pred);
                explicit.recover(ghr, taken);
            }
            assert_eq!(functional, explicit, "{kind:?} state diverged");
        }
    }
}
