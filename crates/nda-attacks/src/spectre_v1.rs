//! Spectre v1 with the d-cache covert channel — the paper's Listing 1.
//!
//! The victim bounds-checks an index before using it; the attacker
//! mis-trains the direction predictor with in-bounds calls (using the
//! branchless input selector so branch history is identical), flushes
//! `array_size` to widen the speculation window, then calls with an
//! out-of-bounds index that reaches the secret. The wrong path loads the
//! secret and touches `probe[secret * 512]`; the recover loop times every
//! probe slot.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Training+attack rounds (7 training calls, then 1 malicious, repeated).
const ROUNDS: u64 = 32;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let victim = asm.new_label();
    let main = asm.new_label();
    asm.jmp(main);

    // --- victim(x in X2): Listing 1 lines 5-9 -------------------------
    asm.bind(victim);
    let vout = asm.new_label();
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.ld8(Reg::X4, Reg::X3, 0); // slow when flushed: the window
    asm.bgeu(Reg::X2, Reg::X4, vout); // bounds check (the steered branch)
    asm.li(Reg::X5, ARRAY_BASE);
    asm.add(Reg::X5, Reg::X5, Reg::X2);
    asm.ld1(Reg::X6, Reg::X5, 0); // phase 1: access array[x]
    asm.shli(Reg::X6, Reg::X6, 9); // pre-process: *512
    asm.li(Reg::X7, PROBE_BASE);
    asm.add(Reg::X7, Reg::X7, Reg::X6);
    asm.ld1(Reg::X8, Reg::X7, 0); // phase 2: transmit via d-cache
    asm.bind(vout);
    asm.ret();

    // --- main ----------------------------------------------------------
    asm.bind(main);
    util::emit_probe_flush(&mut asm);
    // Warm the secret's line so the wrong-path dependence chain fits in
    // the speculation window (PoCs arrange this via repetition; one
    // explicit warm-up keeps the program deterministic).
    asm.li(Reg::X2, SECRET_ADDR);
    asm.ld1(Reg::X3, Reg::X2, 0);
    asm.fence();

    // Attack loop: rounds of 7 training calls + 1 malicious call.
    let atk = asm.new_label();
    asm.li(Reg::X9, 0);
    asm.bind(atk);
    // Serialise each round so every earlier training has committed (and
    // trained the direction predictor) before the next bounds check is
    // fetched — keeps the mis-training deterministic across core models.
    asm.fence();
    util::emit_select_input(&mut asm, Reg::X9, MAL_INDEX, Reg::X2);
    // Flush array_size so the bounds check resolves late.
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.clflush(Reg::X3, 0);
    asm.call(victim);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, ROUNDS);
    asm.bltu(Reg::X9, Reg::X26, atk);

    // Phase 3: recover.
    util::emit_recover(&mut asm);
    asm.halt();

    let mut p = asm.assemble().expect("spectre v1 assembles");
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_SIZE_ADDR,
        bytes: ARRAY_LEN.to_le_bytes().to_vec(),
    });
    // In-bounds array contents: a constant decoy value distinct from any
    // secret the tests use.
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_BASE,
        bytes: vec![200u8; ARRAY_LEN as usize],
    });
    p.data.push(nda_isa::DataInit {
        addr: SECRET_ADDR,
        bytes: vec![secret],
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn architectural_execution_never_reads_the_secret() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(10_000_000).expect("halts with no fault");
        assert!(exit.halted);
        assert_eq!(exit.faults, 0);
        // Architecturally the malicious calls take the out-of-bounds exit;
        // nothing derived from the secret reaches registers. X6 holds the
        // last in-bounds (decoy) preprocessed value or the warmup residue.
        assert_ne!(
            i.reg(Reg::X6),
            (42u64) << 9,
            "secret must not leak architecturally"
        );
    }
}
