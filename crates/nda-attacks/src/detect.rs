//! Leak analysis of recovered timing vectors.

/// Result of running one attack on one core variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Per-guess recovery timings (256 entries, the Fig 4 / Fig 8 series).
    pub timings: Vec<u64>,
    /// The guess the attacker would pick: fastest recovery time.
    pub recovered: Option<u8>,
    /// The actual secret the program tried to exfiltrate.
    pub secret: u8,
    /// Median timing over all guesses (the miss baseline).
    pub median: u64,
    /// `median - timings[recovered]`: the signal the attacker sees.
    pub separation: u64,
    /// `true` if the secret is recoverable: the fastest guess *is* the
    /// secret and it is separated from the crowd by the channel margin.
    pub leaked: bool,
}

/// Classify a timing vector.
///
/// `margin` is the minimum hit/miss separation (in cycles) the covert
/// channel produces; `polluted` lists guesses the attack is known to
/// perturb for reasons other than the secret (excluded from the argmin).
///
/// # Panics
///
/// Panics if `timings` does not have 256 entries.
pub fn analyze(timings: &[u64], secret: u8, margin: u64, polluted: &[u8]) -> AttackOutcome {
    assert_eq!(timings.len(), 256, "one timing per byte value");
    let mut best: Option<(u8, u64)> = None;
    for (g, &t) in timings.iter().enumerate() {
        if polluted.contains(&(g as u8)) {
            continue;
        }
        if best.map(|(_, bt)| t < bt).unwrap_or(true) {
            best = Some((g as u8, t));
        }
    }
    let mut sorted: Vec<u64> = timings
        .iter()
        .enumerate()
        .filter(|(g, _)| !polluted.contains(&(*g as u8)))
        .map(|(_, &t)| t)
        .collect();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let (recovered, rec_t) = match best {
        Some((g, t)) => (Some(g), t),
        None => (None, 0),
    };
    let separation = median.saturating_sub(rec_t);
    let leaked = recovered == Some(secret) && separation >= margin;
    AttackOutcome {
        timings: timings.to_vec(),
        recovered,
        secret,
        median,
        separation,
        leaked,
    }
}

/// Classify a *bit-wise* timing vector (NetSpectre/SMoTher-style channels:
/// one measurement per secret bit). `fast_is_one` gives the channel's
/// polarity: the FPU power channel is fast when the bit is set (the unit
/// was woken), the port-contention channel is *slow* when the bit is set
/// (the divider is still draining).
///
/// # Panics
///
/// Panics if `timings` does not have 8 entries.
pub fn analyze_bits(timings: &[u64], secret: u8, margin: u64, fast_is_one: bool) -> AttackOutcome {
    assert_eq!(timings.len(), 8, "one timing per bit");
    let min = *timings.iter().min().expect("nonempty");
    let max = *timings.iter().max().expect("nonempty");
    let spread = max - min;
    let threshold = min + spread / 2;
    let mut byte = 0u8;
    for (bit, &t) in timings.iter().enumerate() {
        if (t <= threshold) == fast_is_one {
            byte |= 1 << bit;
        }
    }
    let signal = spread >= margin;
    AttackOutcome {
        timings: timings.to_vec(),
        recovered: signal.then_some(byte),
        secret,
        median: max,
        separation: spread,
        leaked: signal && byte == secret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: u64) -> Vec<u64> {
        vec![v; 256]
    }

    #[test]
    fn bitwise_recovers_mixed_byte() {
        // secret 0b00101010: bits 1,3,5 fast.
        let t = [30u64, 8, 30, 8, 30, 8, 30, 30];
        let o = analyze_bits(&t, 0b0010_1010, 8, true);
        assert!(o.leaked);
        assert_eq!(o.recovered, Some(0b0010_1010));
        // Inverted polarity (slow = 1) recovers the complement pattern.
        let o = analyze_bits(&t, 0b1101_0101, 8, false);
        assert!(o.leaked);
        assert_eq!(o.recovered, Some(0b1101_0101));
    }

    #[test]
    fn bitwise_flat_is_not_a_leak() {
        let o = analyze_bits(&[20; 8], 0b0010_1010, 8, true);
        assert!(!o.leaked);
        assert_eq!(o.recovered, None);
    }

    #[test]
    fn bitwise_wrong_byte_is_not_a_leak() {
        let t = [30u64, 8, 30, 30, 30, 8, 30, 30];
        let o = analyze_bits(&t, 0b0010_1010, 8, true);
        assert!(!o.leaked);
        assert_eq!(o.recovered, Some(0b0010_0010));
    }

    #[test]
    #[should_panic(expected = "one timing per bit")]
    fn bitwise_wrong_length_panics() {
        analyze_bits(&[1, 2], 0, 8, true);
    }

    #[test]
    fn clean_signal_is_a_leak() {
        let mut t = flat(150);
        t[42] = 8;
        let o = analyze(&t, 42, 40, &[]);
        assert!(o.leaked);
        assert_eq!(o.recovered, Some(42));
        assert!(o.separation >= 140);
    }

    #[test]
    fn wrong_byte_fastest_is_not_a_leak() {
        let mut t = flat(150);
        t[7] = 8;
        let o = analyze(&t, 42, 40, &[]);
        assert!(!o.leaked);
        assert_eq!(o.recovered, Some(7));
    }

    #[test]
    fn flat_timings_are_not_a_leak() {
        let o = analyze(&flat(150), 42, 40, &[]);
        assert!(
            !o.leaked,
            "no separation, even if argmin accidentally matches"
        );
    }

    #[test]
    fn small_separation_below_margin_is_not_a_leak() {
        let mut t = flat(150);
        t[42] = 140;
        let o = analyze(&t, 42, 40, &[]);
        assert!(!o.leaked);
        assert_eq!(o.separation, 10);
    }

    #[test]
    fn polluted_guesses_are_ignored() {
        let mut t = flat(150);
        t[0] = 4; // attack artifact
        t[42] = 8; // real signal
        let o = analyze(&t, 42, 40, &[0]);
        assert!(o.leaked);
        assert_eq!(o.recovered, Some(42));
    }

    #[test]
    #[should_panic(expected = "one timing per byte")]
    fn wrong_length_panics() {
        analyze(&[1, 2, 3], 0, 10, &[]);
    }
}
