//! ret2spec-style attack: steering through the return address stack.
//!
//! A helper performs a longjmp-style non-standard return (its return
//! address is loaded from memory, pointing at a cleanup path). The RAS
//! still predicts the conventional return site — which the attacker has
//! arranged to be a GPR-transmit gadget. Because the loaded return
//! address is slow (flushed), the `ret` stays unresolved for a full miss
//! latency while the gadget runs on the wrong path with the victim's
//! GPR secret live.
//!
//! No mis-training is required: the misprediction is structural, exactly
//! the RSB under/overflow behaviour of ret2spec [35, 38].

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// The longjmp buffer holding the *actual* return target.
pub const JMP_BUF: u64 = 0x0075_0000;
/// The victim's GPR secret source.
pub const GPR_SECRET_CELL: u64 = 0x0076_0000;

/// Attack repetitions.
const ROUNDS: u64 = 8;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let ra = nda_isa::reg::RA;
    let main = asm.new_label();
    let victim = asm.new_label();
    let helper = asm.new_label();
    let cleanup = asm.new_label();
    asm.jmp(main);

    // helper: longjmp-style return — RA comes from memory (slow), so the
    // RAS prediction (the call site's fall-through = the gadget) stands
    // for a full miss latency.
    asm.bind(helper);
    asm.li(Reg::X6, JMP_BUF);
    asm.ld8(ra, Reg::X6, 0); // actual target: cleanup (flushed -> slow)
    asm.ret(); // predicted: gadget; actual: cleanup

    // victim: loads its secret, calls the helper; the code *after* the
    // call is the attacker-chosen gadget, architecturally unreachable.
    asm.bind(victim);
    asm.st8(ra, Reg::X19, 0);
    asm.subi(Reg::X19, Reg::X19, 8);
    asm.li(Reg::X4, GPR_SECRET_CELL);
    asm.ld8(Reg::X15, Reg::X4, 0); // secret into a GPR (legitimate)
    asm.call(helper);
    // ---- wrong-path gadget (RAS predicts a return to here) ----
    asm.shli(Reg::X8, Reg::X15, 9);
    asm.li(Reg::X9, PROBE_BASE);
    asm.add(Reg::X8, Reg::X8, Reg::X9);
    asm.ld1(Reg::X10, Reg::X8, 0); // transmit
                                   // ---- end gadget (never commits) ----
    asm.bind(cleanup);
    asm.li(Reg::X15, 0); // scrub
    asm.addi(Reg::X19, Reg::X19, 8);
    asm.ld8(ra, Reg::X19, 0);
    asm.ret();

    // --- main -----------------------------------------------------------
    asm.bind(main);
    asm.li(Reg::X19, 0x00E0_0000);
    asm.li(Reg::X18, JMP_BUF);
    asm.li_label(Reg::X28, cleanup);
    asm.st8(Reg::X28, Reg::X18, 0);
    util::emit_probe_flush(&mut asm);
    asm.li(Reg::X2, GPR_SECRET_CELL);
    asm.ld8(Reg::X3, Reg::X2, 0); // warm the secret cell
    asm.fence();

    let atk = asm.new_label();
    asm.li(Reg::X9, 0);
    asm.bind(atk);
    asm.fence();
    asm.li(Reg::X5, JMP_BUF);
    asm.clflush(Reg::X5, 0); // widen the ret-resolution window
    asm.call(victim);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, ROUNDS);
    asm.bltu(Reg::X9, Reg::X26, atk);

    util::emit_recover(&mut asm);
    asm.halt();

    let mut p = asm.assemble().expect("ret2spec assembles");
    p.data.push(nda_isa::DataInit {
        addr: GPR_SECRET_CELL,
        bytes: (secret as u64).to_le_bytes().to_vec(),
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn gadget_is_architecturally_dead_code() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(20_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, 0);
        // X15 is scrubbed by cleanup (the recover loop reuses it as a
        // timer register later); it must never still hold the secret.
        assert_ne!(i.reg(Reg::X15), 42);
        // The gadget never runs architecturally: X10 is written only by
        // the gadget's probe load, so it must still be zero.
        assert_eq!(i.reg(Reg::X10), 0);
    }
}
