//! Meltdown — the paper's Listing 2 (chosen-code, d-cache channel).
//!
//! A load from kernel memory will fault at commit, but in flawed
//! implementations its value forwards to dependents as soon as it
//! executes. A slow "blocker" load ahead of it keeps the faulting load
//! away from the ROB head, widening the window in which the dependent
//! probe access transmits the secret. The architectural fault is absorbed
//! by a handler that retries a few times (the first wrong-path access
//! warms the kernel line) and then runs the recover phase.
//!
//! NDA's load restriction (paper §5.3) makes the faulting load wake its
//! dependents only if it retires — and it never retires, it faults.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Wrong-path attempts before recovery (first warms the kernel line).
const ATTEMPTS: u64 = 3;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let handler = asm.new_label();
    let attempt = asm.new_label();
    let recover = asm.new_label();
    asm.fault_handler(handler);

    util::emit_probe_flush(&mut asm);
    asm.li(Reg::X9, 0); // attempt counter (committed before each fault)

    asm.bind(attempt);
    asm.addi(Reg::X9, Reg::X9, 1);
    // Blocker: a cold load that parks at the ROB head for ~144 cycles,
    // delaying fault delivery while the transmit chain runs.
    asm.li(Reg::X10, BLOCKER_ADDR);
    asm.clflush(Reg::X10, 0);
    asm.ld8(Reg::X11, Reg::X10, 0);
    // Phase 1: the illegal access (Listing 2 line 2).
    asm.li(Reg::X3, KERNEL_SECRET_ADDR);
    asm.ld1(Reg::X6, Reg::X3, 0); // faults at commit; data forwards now
                                  // Phase 2: transmit before the fault fires (Listing 2 line 6).
    asm.shli(Reg::X6, Reg::X6, 9);
    asm.li(Reg::X7, PROBE_BASE);
    asm.add(Reg::X7, Reg::X7, Reg::X6);
    asm.ld1(Reg::X8, Reg::X7, 0);
    // Unreachable: the faulting load always transfers to the handler.
    asm.jmp(recover);

    asm.bind(handler);
    asm.li(Reg::X26, ATTEMPTS);
    asm.bltu(Reg::X9, Reg::X26, attempt);

    asm.bind(recover);
    util::emit_recover(&mut asm);
    asm.halt();

    let mut p = asm.assemble().expect("meltdown assembles");
    p.data.push(nda_isa::DataInit {
        addr: KERNEL_SECRET_ADDR,
        bytes: vec![secret],
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn faults_are_architecturally_absorbed() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(10_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, ATTEMPTS, "one fault per attempt");
        assert_eq!(i.reg(Reg::X6), 0, "kernel data never reaches registers");
    }
}
