//! Spectre v2 against a GPR-resident secret (paper §4.2's hypothetical
//! threat model, steered via branch-target injection).
//!
//! The victim legitimately loads a per-caller value into a register, then
//! dispatches through an indirect call. Training calls select a benign
//! input whose handler *is* the transmit gadget, priming the shared BTB
//! entry; the attack call selects the secret-loading input whose handler
//! is benign — but the BTB predicts the gadget, which runs on the wrong
//! path with the secret live in the GPR.
//!
//! This is the attack class that separates strict from permissive
//! propagation (Table 2): permissive marks only *loads* unsafe, and the
//! gadget's `shl`/`add` chain on a GPR is pure arithmetic, so permissive
//! (and load restriction) leak here while strict blocks.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Where the victim's per-caller values live: `[0]` = secret, `[1]` =
/// the benign decoy (200).
pub const GPR_SECRETS: u64 = 0x0074_0000;

/// Rounds of 7 trainings + 1 attack call.
const ROUNDS: u64 = 32;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    build(secret, false)
}

/// Build the attack against a *hardened* victim that wraps its
/// secret-in-GPR window in `SpecOff`/`SpecOn` — the paper's Listing 4
/// (`stop_speculative_exec()` / `resume_speculative_exec()`). With
/// speculation disabled inside the window, the indirect call resolves
/// before anything younger dispatches, so the BTB-injected gadget never
/// executes — on *any* core, even insecure OoO.
pub fn hardened_program(secret: u8) -> Program {
    build(secret, true)
}

fn build(secret: u8, hardened: bool) -> Program {
    let mut asm = Asm::new();
    let ra = nda_isa::reg::RA;
    let main = asm.new_label();
    let victim = asm.new_label();
    let handler_a = asm.new_label();
    let handler_b = asm.new_label();
    asm.jmp(main);

    // Benign handler (dispatched for sel = 0, the secret-bearing caller).
    asm.bind(handler_a);
    asm.nop();
    asm.ret();

    // The transmit gadget (a *legitimate* handler for sel = 1): leaks
    // whatever is in X15 through the probe array. Runs architecturally
    // during training, so it must not clobber the caller's loop registers
    // (X9 is the round counter).
    asm.bind(handler_b);
    asm.shli(Reg::X8, Reg::X15, 9);
    asm.li(Reg::X24, PROBE_BASE);
    asm.add(Reg::X8, Reg::X8, Reg::X24);
    asm.ld1(Reg::X10, Reg::X8, 0);
    asm.ret();

    // victim(sel in X2): load the caller's value into a GPR, dispatch.
    asm.bind(victim);
    asm.st8(ra, Reg::X19, 0);
    asm.subi(Reg::X19, Reg::X19, 8);
    if hardened {
        asm.spec_off(); // Listing 4 line 1: stop_speculative_exec()
    }
    asm.shli(Reg::X3, Reg::X2, 3);
    asm.li(Reg::X4, GPR_SECRETS);
    asm.add(Reg::X4, Reg::X4, Reg::X3);
    asm.ld8(Reg::X15, Reg::X4, 0); // GPR-resident secret (architectural!)
    asm.shli(Reg::X6, Reg::X2, 3);
    asm.li(Reg::X18, TARGET_TABLE);
    asm.add(Reg::X6, Reg::X6, Reg::X18);
    asm.ld8(Reg::X7, Reg::X6, 0); // handler pointer (flushed -> slow)
    asm.call_ind(Reg::X7); // the steering point
    asm.li(Reg::X15, 0); // scrub the GPR (Listing 4 line 4)
    if hardened {
        asm.spec_on(); // Listing 4 line 5: resume_speculative_exec()
    }
    asm.addi(Reg::X19, Reg::X19, 8);
    asm.ld8(ra, Reg::X19, 0);
    asm.ret();

    // --- main -----------------------------------------------------------
    asm.bind(main);
    asm.li(Reg::X19, 0x00E0_0000); // software stack
                                   // handler table: [0] = A (benign), [1] = B (gadget).
    asm.li(Reg::X18, TARGET_TABLE);
    asm.li_label(Reg::X28, handler_a);
    asm.st8(Reg::X28, Reg::X18, 0);
    asm.li_label(Reg::X28, handler_b);
    asm.st8(Reg::X28, Reg::X18, 8);
    util::emit_probe_flush(&mut asm);
    // Warm the secret/decoy table.
    asm.li(Reg::X2, GPR_SECRETS);
    asm.ld8(Reg::X3, Reg::X2, 0);
    asm.fence();

    let atk = asm.new_label();
    asm.li(Reg::X9, 0);
    asm.bind(atk);
    asm.fence();
    // sel = 1 (decoy -> gadget handler trains the BTB) on rounds 0-6,
    // sel = 0 (secret -> benign handler, BTB mispredicts to the gadget)
    // on round 7. Branchless, so history stays aligned.
    asm.andi(Reg::X26, Reg::X9, 7);
    asm.alui(nda_isa::AluOp::Sltu, Reg::X2, Reg::X26, 7);
    // Widen the steering window: the handler-pointer load must resolve
    // slowly.
    asm.li(Reg::X3, TARGET_TABLE);
    asm.clflush(Reg::X3, 0);
    asm.call(victim);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, ROUNDS);
    asm.bltu(Reg::X9, Reg::X26, atk);

    util::emit_recover(&mut asm);
    asm.halt();

    let mut p = asm.assemble().expect("spectre v2 gpr assembles");
    p.data.push(nda_isa::DataInit {
        addr: GPR_SECRETS,
        bytes: (secret as u64).to_le_bytes().to_vec(),
    });
    p.data.push(nda_isa::DataInit {
        addr: GPR_SECRETS + 8,
        bytes: 200u64.to_le_bytes().to_vec(),
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn architecturally_clean_and_scrubbed() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(20_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, 0);
        // X15 is scrubbed by the victim and later reused by the recover
        // loop's timer; it must never still hold the secret.
        assert_ne!(i.reg(Reg::X15), 42);
    }

    #[test]
    fn training_handler_is_the_gadget() {
        // The gadget must be a legitimate target (sel = 1), otherwise the
        // single tagged BTB entry could never be primed with it.
        let p = program(9);
        let mut i = Interp::new(&p);
        i.run(20_000_000).unwrap();
        // The decoy (200) was architecturally transmitted by training.
        // Its probe slot is the only attack-touched one.
        let decoy_slot = PROBE_BASE + 200 * 512;
        let _ = decoy_slot; // timing state is not visible to the interp
    }
}
