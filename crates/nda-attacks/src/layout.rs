//! Shared memory layout of the attack programs.
//!
//! Regions are spaced so no two structures share cache lines and none
//! collides with the text segment at `nda_isa::TEXT_BASE` (0x40_0000).

/// The probe array: 256 slots at 512-byte stride (Listing 1's
/// `probeArray[guess*512]`).
pub const PROBE_BASE: u64 = 0x0200_0000;
/// Stride between probe slots, two cache lines so adjacent guesses never
/// share a line.
pub const PROBE_STRIDE: u64 = 512;

/// Per-guess recovered timings: 256 u64 slots written by the recover
/// phase and read back by the host.
pub const RESULTS_BASE: u64 = 0x0030_0000;

/// The victim's bounds-checked array (Listing 1's `array`).
pub const ARRAY_BASE: u64 = 0x0050_0000;
/// Architectural length of the victim array.
pub const ARRAY_LEN: u64 = 16;
/// The victim's `array_size` variable (flushed to widen the speculation
/// window).
pub const ARRAY_SIZE_ADDR: u64 = 0x0051_0000;

/// Where the in-process "secret" byte lives for control-steering attacks:
/// inside the victim's address space, out of bounds for `array`.
pub const SECRET_ADDR: u64 = 0x0052_0000;
/// The malicious index: `array[MAL_INDEX]` aliases `SECRET_ADDR`.
pub const MAL_INDEX: u64 = SECRET_ADDR - ARRAY_BASE;

// The malicious index must be out of bounds, or the "attack" would be an
// ordinary in-bounds read.
const _: () = assert!(MAL_INDEX >= ARRAY_LEN);

/// Kernel-space secret address for Meltdown.
pub const KERNEL_SECRET_ADDR: u64 = nda_isa::KERNEL_BASE + 0x1000;

/// Privileged MSR number holding the LazyFP-style secret.
pub const SECRET_MSR: u16 = 0x10;

/// Function-pointer table of the BTB attack (256 u64 instruction
/// indices).
pub const TARGET_TABLE: u64 = 0x0060_0000;

/// SSB: the pointer cell holding the address the victim stores through.
pub const SSB_PTR_ADDR: u64 = 0x0070_0000;
/// SSB: the cell holding the stale secret that the bypassing load reads.
pub const SSB_DATA_ADDR: u64 = 0x0071_0000;

/// Scratch cell used to park a slow (cold-miss) blocker load.
pub const BLOCKER_ADDR: u64 = 0x0072_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap_probe_array() {
        // The probe array spans [PROBE_BASE, PROBE_BASE + 256*512).
        let probe_end = PROBE_BASE + 256 * PROBE_STRIDE;
        for &a in &[
            RESULTS_BASE,
            ARRAY_BASE,
            ARRAY_SIZE_ADDR,
            SECRET_ADDR,
            TARGET_TABLE,
        ] {
            assert!(
                a < PROBE_BASE || a >= probe_end,
                "{a:#x} inside probe array"
            );
        }
    }

    #[test]
    fn mal_index_reaches_secret() {
        assert_eq!(ARRAY_BASE + MAL_INDEX, SECRET_ADDR);
    }

    #[test]
    fn kernel_secret_is_privileged() {
        assert!(nda_isa::PrivilegeMap.is_privileged(KERNEL_SECRET_ADDR));
        assert!(!nda_isa::PrivilegeMap.is_privileged(SECRET_ADDR));
    }
}
