//! Shared code-generation helpers for the attack programs.

use crate::layout::{PROBE_BASE, PROBE_STRIDE, RESULTS_BASE};
use nda_isa::{AluOp, Asm, Reg};

/// Register the recover loop leaves the current guess in.
pub const GUESS: Reg = Reg::X12;

/// Emit the init-phase probe flush: evict all 256 probe slots
/// (Listing 1 lines 1-2).
pub fn emit_probe_flush(asm: &mut Asm) {
    let top = asm.new_label();
    asm.li(Reg::X12, 0);
    asm.li(Reg::X13, PROBE_BASE);
    asm.bind(top);
    asm.clflush(Reg::X13, 0);
    asm.addi(Reg::X13, Reg::X13, PROBE_STRIDE);
    asm.addi(Reg::X12, Reg::X12, 1);
    asm.li(Reg::X16, 256);
    asm.bltu(Reg::X12, Reg::X16, top);
    // Drain before the attack so flush timing cannot alias into it.
    asm.fence();
}

/// Emit the cache-channel recover phase (Listing 1 lines 13-20): for every
/// guess, time one probe access with serialising `rdcycle`s, store the
/// delta to the results array, and `fence` so the next iteration's probe
/// cannot issue early and pre-warm its own line.
pub fn emit_recover(asm: &mut Asm) {
    // An lfence-style barrier: without it, the recover loop's first probe
    // issues speculatively *inside the attack's own wrong-path window* and
    // pre-warms probe[0], polluting the readout.
    asm.fence();
    let top = asm.new_label();
    asm.li(Reg::X12, 0);
    asm.bind(top);
    asm.shli(Reg::X13, Reg::X12, 9); // guess * 512
    asm.li(Reg::X18, PROBE_BASE);
    asm.add(Reg::X13, Reg::X13, Reg::X18);
    asm.rdcycle(Reg::X14);
    asm.ld1(Reg::X16, Reg::X13, 0);
    asm.rdcycle(Reg::X15);
    asm.sub(Reg::X16, Reg::X15, Reg::X14);
    asm.shli(Reg::X17, Reg::X12, 3);
    asm.li(Reg::X18, RESULTS_BASE);
    asm.add(Reg::X17, Reg::X17, Reg::X18);
    asm.st8(Reg::X16, Reg::X17, 0);
    asm.fence();
    asm.addi(Reg::X12, Reg::X12, 1);
    asm.li(Reg::X18, 256);
    asm.bltu(Reg::X12, Reg::X18, top);
}

/// Emit the branchless training/malicious selector of real Spectre PoCs:
/// given a round counter in `j`, produce in `out` either a valid index
/// (`j & 7`, rounds 0-6) or `mal` (round 7) *without a branch*, so the
/// victim's bounds check sees an identical history either way.
pub fn emit_select_input(asm: &mut Asm, j: Reg, mal: u64, out: Reg) {
    asm.andi(Reg::X26, j, 7);
    // X27 = 1 while training (t < 7), 0 on the malicious round.
    asm.alui(AluOp::Sltu, Reg::X27, Reg::X26, 7);
    // mask = training ? 0 : ~0
    asm.subi(Reg::X27, Reg::X27, 1);
    // out = t ^ ((t ^ mal) & mask)
    asm.li(Reg::X25, mal);
    asm.alu(AluOp::Xor, Reg::X24, Reg::X26, Reg::X25);
    asm.alu(AluOp::And, Reg::X24, Reg::X24, Reg::X27);
    asm.alu(AluOp::Xor, out, Reg::X26, Reg::X24);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn select_input_is_branchless_and_correct() {
        for j in 0..16u64 {
            let mut asm = Asm::new();
            asm.li(Reg::X9, j);
            emit_select_input(&mut asm, Reg::X9, 0xABCD, Reg::X2);
            asm.halt();
            let p = asm.assemble().unwrap();
            assert!(
                !p.insts.iter().any(|i| i.is_branch()),
                "selector must not branch"
            );
            let mut i = Interp::new(&p);
            i.run(100).unwrap();
            let expect = if j & 7 == 7 { 0xABCD } else { j & 7 };
            assert_eq!(i.reg(Reg::X2), expect, "j={j}");
        }
    }

    #[test]
    fn recover_writes_all_256_results() {
        let mut asm = Asm::new();
        emit_recover(&mut asm);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        i.run(100_000).unwrap();
        // The interpreter's rdcycle returns retired counts; deltas are
        // constant and nonzero-width writes happen for every guess slot.
        for g in 0..256u64 {
            let t = i.mem.read(RESULTS_BASE + 8 * g, 8);
            assert!(t > 0, "guess {g} never measured");
        }
    }

    #[test]
    fn probe_flush_terminates() {
        let mut asm = Asm::new();
        emit_probe_flush(&mut asm);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut i = Interp::new(&p);
        let exit = i.run(100_000).unwrap();
        assert!(exit.halted);
    }
}
