//! SMoTherSpectre-style attack via execution-port contention (paper §1,
//! §3, Table 1 — Bhattacharyya et al.).
//!
//! The transmitter is *divider occupancy*: the divider is not pipelined,
//! and an in-flight division keeps draining even after the squash. The
//! wrong path executes a chain of divisions iff the secret bit is set; the
//! receiver times its own division right after the squash — it stalls on
//! the still-busy divider when the bit was 1.
//!
//! Unlike the cache PoCs this needs a *short* speculation window (the
//! occupancy signal only lasts tens of cycles), so the bounds check feeds
//! from a warm load through a dependent multiply chain instead of a
//! flushed line.
//!
//! Like the FPU channel, port contention defeats every cache-centric
//! defense; NDA blocks it because the secret never reaches the bit test.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Training+attack rounds per bit (7 training + 1 malicious).
const ROUNDS_PER_BIT: u64 = 8;
/// Wrong-path division chain length (occupancy = 12 cycles each).
const DIV_CHAIN: usize = 4;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let main = asm.new_label();
    let victim = asm.new_label();
    asm.jmp(main);

    // victim(x in X2, bit index in X11).
    asm.bind(victim);
    let vout = asm.new_label();
    let do_div = asm.new_label();
    let after = asm.new_label();
    // A ~20-cycle speculation window: warm load + dependent multiplies.
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.ld8(Reg::X4, Reg::X3, 0); // warm: 4 cycles
    asm.mul(Reg::X4, Reg::X4, Reg::X4); // 16 -> 256
    asm.mul(Reg::X4, Reg::X4, Reg::X4); // 65536
    asm.mul(Reg::X4, Reg::X4, Reg::X4);
    asm.mul(Reg::X4, Reg::X4, Reg::X4);
    asm.mul(Reg::X4, Reg::X4, Reg::X4);
    asm.andi(Reg::X4, Reg::X4, 0xFF); // back to 0 ^ ...
    asm.alui(nda_isa::AluOp::Or, Reg::X4, Reg::X4, ARRAY_LEN); // = ARRAY_LEN
    asm.bgeu(Reg::X2, Reg::X4, vout); // bounds check, ~22 cycles unresolved
    asm.li(Reg::X5, ARRAY_BASE);
    asm.add(Reg::X5, Reg::X5, Reg::X2);
    asm.ld1(Reg::X6, Reg::X5, 0); // access secret byte (warm)
    asm.alu(nda_isa::AluOp::Shr, Reg::X6, Reg::X6, Reg::X11);
    asm.andi(Reg::X6, Reg::X6, 1);
    asm.bne(Reg::X6, Reg::X0, do_div); // trained not-taken by the trainings
    asm.jmp(after);
    asm.bind(do_div);
    asm.li(Reg::X7, 0xFFFF_FFFF);
    for _ in 0..DIV_CHAIN {
        // Serial, non-pipelined: occupies the divider ~12 cycles each.
        asm.alui(nda_isa::AluOp::Div, Reg::X7, Reg::X7, 3);
    }
    asm.bind(after);
    asm.nop();
    asm.bind(vout);
    asm.ret();

    // --- main -----------------------------------------------------------
    asm.bind(main);
    asm.li(Reg::X2, SECRET_ADDR);
    asm.ld1(Reg::X3, Reg::X2, 0); // warm the secret line
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.ld8(Reg::X4, Reg::X3, 0); // warm the bounds line
    asm.fence();

    let bit_loop = asm.new_label();
    let round_loop = asm.new_label();
    asm.li(Reg::X12, 0); // bit index
    asm.bind(bit_loop);
    asm.mov(Reg::X11, Reg::X12);

    // Mis-train and transmit with aligned history; the malicious call is
    // the last round, so the divider is still draining when we measure.
    asm.li(Reg::X9, 0);
    asm.bind(round_loop);
    asm.fence();
    util::emit_select_input(&mut asm, Reg::X9, MAL_INDEX, Reg::X2);
    asm.call(victim);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, ROUNDS_PER_BIT);
    asm.bltu(Reg::X9, Reg::X26, round_loop);

    // Receive. The fence keeps the *wrong-path copy* of the timed division
    // (fetched down the predicted loop exit) from issuing inside the
    // window and occupying the divider itself — it may only issue once
    // everything older retired, a couple of cycles after the squash,
    // while the gadget's division is still draining.
    asm.fence();
    asm.rdcycle(Reg::X14);
    asm.li(Reg::X7, 999);
    asm.alui(nda_isa::AluOp::Div, Reg::X8, Reg::X7, 7);
    asm.rdcycle(Reg::X15);
    asm.sub(Reg::X16, Reg::X15, Reg::X14);
    asm.shli(Reg::X17, Reg::X12, 3);
    asm.li(Reg::X18, RESULTS_BASE);
    asm.add(Reg::X17, Reg::X17, Reg::X18);
    asm.st8(Reg::X16, Reg::X17, 0);
    asm.fence();

    asm.addi(Reg::X12, Reg::X12, 1);
    asm.li(Reg::X26, 8);
    asm.bltu(Reg::X12, Reg::X26, bit_loop);
    asm.halt();

    let mut p = asm.assemble().expect("smother assembles");
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_SIZE_ADDR,
        bytes: ARRAY_LEN.to_le_bytes().to_vec(),
    });
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_BASE,
        bytes: vec![0u8; ARRAY_LEN as usize],
    });
    p.data.push(nda_isa::DataInit {
        addr: SECRET_ADDR,
        bytes: vec![secret],
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn architecturally_clean() {
        let p = program(0b0101_0101);
        let mut i = Interp::new(&p);
        let exit = i.run(20_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, 0);
        for b in 0..8u64 {
            assert!(
                i.mem.read(RESULTS_BASE + 8 * b, 8) > 0,
                "bit {b} never measured"
            );
        }
    }

    #[test]
    fn window_bound_is_architecturally_array_len() {
        // The multiply-chain obfuscation of the bound must still evaluate
        // to ARRAY_LEN, or training calls would fault or mis-steer.
        let p = program(1);
        let mut i = Interp::new(&p);
        i.run(20_000_000).unwrap();
        // If the bound were wrong the in-bounds loads would have read the
        // secret architecturally; X6 is clobbered later, so just assert
        // termination without faults (above) and bounded behaviour here.
        assert!(i.halted());
    }
}
